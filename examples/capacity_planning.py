#!/usr/bin/env python
"""Capacity planning with the queueing package (Eq. 1, Insight 3).

Before deploying anything, an operator can answer three sizing questions
analytically:

1. how many replicas does a latency target need at a given load?
   (Erlang-C / M/M/s)
2. how deep should each replica's pipeline be for the expected
   burstiness?  (the paper's extended G/G/S model - S grows like sqrt(CV))
3. how many micro-batches amortise the pipeline bubble?  (GPipe bound)

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.queueing import (
    GG1Station,
    GGSModel,
    bubble_fraction,
    erlang_c,
    microbatches_for_bubble,
    mms_mean_wait,
    mms_wait_quantile,
    optimal_stage_count,
    pipeline_delay,
    servers_for_wait,
)


def replica_sizing() -> None:
    print("=== 1. replica count for a 200 ms queueing budget ===")
    service_rate = 2.5  # batches/s one replica sustains
    for qps in (5.0, 10.0, 20.0, 40.0):
        n = servers_for_wait(qps, service_rate, target_wait=0.2)
        wait = mms_mean_wait(qps, service_rate, n)
        p_wait = erlang_c(qps, service_rate, n)
        p99 = mms_wait_quantile(qps, service_rate, n, 0.99)
        print(
            f"  {qps:5.0f} req/s -> {n:2d} replicas  "
            f"(mean wait {wait * 1e3:5.1f} ms, P(wait) {p_wait:.0%}, "
            f"P99 wait {p99 * 1e3:6.1f} ms)"
        )


def pipeline_depth() -> None:
    print("\n=== 2. pipeline depth vs burstiness (Insight 3) ===")
    stage_counts = (4, 8, 16, 32)
    hop = 0.030  # per-hop register/communication delay (s)
    for cv in (0.5, 1.0, 2.0, 4.0, 8.0):
        best = optimal_stage_count(cv, candidates=stage_counts)
        # The paper's trade-off, term by term: Eq. 1's burst (queue) term
        # shrinks with depth because each finer stage serves faster, while
        # the deterministic register chain grows by one hop per stage.
        delays = {}
        for s in stage_counts:
            mu = 24.0 * s / 4  # finer stage -> higher per-stage service rate
            burst = GGSModel(
                arrival_rate=20.0,
                cv_arrival=cv,
                stage_service_rates=tuple([mu] * s),
                cv_service=0.5,
            ).queue_latency()
            delays[s] = burst + pipeline_delay(s, 1.0 / mu, hop)
        winner = min(delays, key=delays.get)
        ranked = " ".join(f"S={s}:{d:.2f}s" for s, d in delays.items())
        print(f"  CV={cv:>4}: rule S={best:<3} model winner S={winner:<3} ({ranked})")
    print("  -> the optimum deepens roughly like sqrt(CV), the paper's rule.")


def per_stage_station() -> None:
    print("\n=== 3. one stage as a G/G/1 station ===")
    for cv in (1.0, 2.0, 4.0):
        station = GG1Station(
            arrival_rate=18.0, service_time=0.04, cv_arrival=cv, cv_service=0.5
        )
        print(
            f"  CV={cv}: rho={station.utilization:.0%}, "
            f"mean wait {station.mean_wait() * 1e3:.1f} ms, "
            f"queue {station.mean_queue_length():.1f} requests"
        )


def bubble_budget() -> None:
    print("\n=== 4. micro-batches to amortise the pipeline bubble ===")
    for stages in (4, 8, 16, 32):
        m = microbatches_for_bubble(stages, max_bubble=0.10)
        print(
            f"  S={stages:>2}: {m:>3} micro-batches keep the bubble at "
            f"{bubble_fraction(stages, m):.1%}"
        )


def eq1_sanity() -> None:
    print("\n=== 5. Eq. 1 evaluated directly ===")
    for stages in (4, 16):
        model = GGSModel(
            arrival_rate=20.0,
            cv_arrival=4.0,
            stage_service_rates=tuple([30.0 * stages / 4] * stages),
            cv_service=0.5,
        )
        print(f"  S={stages:>2}: T_total = {model.total_delay():.3f}s")


def main() -> None:
    replica_sizing()
    pipeline_depth()
    per_stage_station()
    bubble_budget()
    eq1_sanity()


if __name__ == "__main__":
    main()
