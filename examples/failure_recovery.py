#!/usr/bin/env python
"""Surviving serverless GPU reclamation (§7's environment, stress-tested).

Serverless platforms reclaim GPUs from scaled-down (and sometimes live)
instances.  This example serves steady traffic with FlexPipe while a
reclamation process repeatedly drains replicas off serving GPUs, and
measures how fast the control loop restores capacity — the behaviour the
production rollout of §9.6 relies on.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import (
    FlexPipeSystem,
    LLAMA2_7B,
    PoissonArrivals,
    RandomStreams,
    RequestSampler,
    ServingContext,
    Simulator,
    make_paper_cluster,
)
from repro.cluster.failures import (
    FailureInjector,
    ReclamationPolicy,
    RecoveryTracker,
    VictimChoice,
)
from repro.cluster.fragmentation import FragmentationModel
from repro.simulation.processes import PeriodicProcess
from repro.workloads.generator import WorkloadGenerator

SETTLE = 120.0
SERVE = 400.0
DRAIN = 60.0


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=5)
    cluster = make_paper_cluster(sim)
    FragmentationModel(sim, cluster, streams).warm_up()

    ctx = ServingContext.create(sim, cluster, streams)
    system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=2)
    system.start()
    sim.run(until=SETTLE)

    # Steady traffic keeps the autoscaler honest about lost capacity.
    WorkloadGenerator(
        sim,
        PoissonArrivals(10.0, streams.stream("arrivals")),
        RequestSampler(LLAMA2_7B.name, streams.stream("requests"), slo_latency=10.0),
        system.submit,
        duration=SERVE,
    )

    # Adversarial reclamation: one event a minute, biased to serving GPUs.
    tracker = RecoveryTracker(sim)
    injector = FailureInjector(
        sim,
        cluster,
        streams.stream("failures"),
        system,
        ReclamationPolicy(
            mtbf=60.0, downtime_mean=45.0, choice=VictimChoice.SERVING_BIASED
        ),
        tracker=tracker,
    )
    injector.start()
    poller = PeriodicProcess(sim, 0.5, tracker.poll, start_delay=0.5)

    sim.run(until=SETTLE + SERVE + DRAIN)
    injector.stop()
    poller.stop()
    system.shutdown()

    stats = injector.summary()
    summary = system.summarize(SERVE + DRAIN)
    print(f"--- {stats['events']} reclamation events over {SERVE:.0f}s ---")
    print(f"events hitting live replicas : {stats['events_hitting_replicas']}")
    print(f"replicas drained             : {stats['replicas_hit']}")
    print(f"capacity recoveries measured : {stats['recovered']}")
    if stats["mean_recovery_s"] is not None:
        print(f"mean capacity-recovery time  : {stats['mean_recovery_s']:.1f}s")
        print(f"max capacity-recovery time   : {stats['max_recovery_s']:.1f}s")
    print("\n--- service through the chaos ---")
    print(f"completed    : {summary.completed}/{summary.offered}")
    print(f"goodput      : {summary.goodput_rate:.1%} within 10s SLO")
    print(f"mean latency : {summary.mean_latency:.2f}s, "
          f"P99 {summary.latency_percentiles[99]:.2f}s")
    print(f"scale-outs   : {summary.scale_out_count} "
          f"(the control loop replacing reclaimed capacity)")


if __name__ == "__main__":
    main()
