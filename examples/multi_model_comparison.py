#!/usr/bin/env python
"""Head-to-head: all five systems on the same multi-tenant bursty workload.

Replays an identical seeded workload (OPT-66B primary + BERT-21B background
tenant, CV=4 sustained bursts) against FlexPipe and the four baselines,
then prints the Fig. 8/12-style comparison.

Run:  python examples/multi_model_comparison.py        (~1 minute)
"""

from __future__ import annotations

from repro.experiments.common import ExperimentConfig, run_system
from repro.experiments.systems import SYSTEM_FACTORIES
from repro.metrics.report import format_table


def main() -> None:
    cfg = ExperimentConfig(
        cv=4.0,
        duration=180.0,
        background_model="BERT-21B",
        settle_time=150.0,
        warmup_time=40.0,
        drain_time=30.0,
    )
    rows = []
    for name, factory in SYSTEM_FACTORIES.items():
        summary, _ = run_system(factory, cfg)
        rows.append(
            [
                name,
                f"{summary.goodput_rate:.1%}",
                f"{summary.mean_latency:.2f}",
                f"{summary.breakdown.queue:.2f}",
                f"{summary.breakdown.communication:.2f}",
                f"{summary.latency_percentiles[99]:.1f}",
                f"{summary.gpu_utilization:.0%}",
                summary.gpus_used,
                summary.refactor_count,
            ]
        )
    print(
        format_table(
            ["system", "goodput", "mean RT", "queue s", "comm s", "P99", "util", "GPUs", "refactors"],
            rows,
            title=f"Five systems, {cfg.model} + {cfg.background_model}, CV={cfg.cv} bursts",
        )
    )


if __name__ == "__main__":
    main()
