#!/usr/bin/env python
"""Replay an Azure-Functions-style trace through FlexPipe (Fig. 1 workload).

The paper drives its evaluation with Azure Functions traces whose CV
changes 7x with the measurement window.  This example synthesises a
trace bundle with that structure, verifies the multi-window CV mismatch,
then replays the busiest app's traffic through FlexPipe and reports how
many inflight refactors the shifting burstiness triggered.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FlexPipeSystem,
    LLAMA2_7B,
    RandomStreams,
    ServingContext,
    Simulator,
    make_paper_cluster,
)
from repro.cluster.fragmentation import FragmentationModel
from repro.metrics.ascii_plot import sparkline
from repro.workloads.azure import (
    AzureSynthConfig,
    TraceReplayArrivals,
    multi_window_cv,
    synthesize_azure_like,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.splitwise import MixedCorpusSampler

REPLAY_SECONDS = 240.0


def main() -> None:
    rng = np.random.default_rng(11)

    # 1. Synthesise a trace bundle with the Azure dataset's structure.
    bundle = synthesize_azure_like(
        rng,
        AzureSynthConfig(
            n_apps=30,
            days=2.0,
            mean_total_rate=25.0,
            burst_probability=0.01,
            burst_scale=40.0,
        ),
    )
    top1 = bundle.top_apps(1)[0]
    print(f"bundle: {len(bundle)} functions, {bundle.duration / 3600:.0f} h")
    print(f"top app {top1.app}: {top1.total_invocations} invocations")

    # 2. The Fig. 1 phenomenon: CV depends strongly on the window.
    cvs = multi_window_cv(bundle.total_trace())
    print("\nFig. 1 check - CV of the total trace by window:")
    for window, cv in cvs.items():
        label = f"{window / 3600:.1f}h" if window >= 3600 else f"{window:.0f}s"
        print(f"  {label:>6}: CV = {cv:.2f}")
    spread = max(cvs.values()) / max(min(cvs.values()), 1e-9)
    print(f"  spread: {spread:.1f}x across windows")
    print("  rate  : " + sparkline(top1.rate_series().tolist(), width=72))

    # 3. Replay the top app's first minutes through FlexPipe at 12 req/s.
    sim = Simulator()
    streams = RandomStreams(seed=11)
    cluster = make_paper_cluster(sim)
    FragmentationModel(sim, cluster, streams).warm_up()
    ctx = ServingContext.create(sim, cluster, streams)
    # The controller's capacity model must know the corpus shape: a mixed
    # coding/conversation stream averages ~1800 prompt / ~60 output tokens.
    system = FlexPipeSystem(
        ctx,
        [LLAMA2_7B],
        initial_replicas=2,
        prompt_tokens=1800,
        output_tokens=60,
        slo_deadline=15.0,
    )
    system.start()
    sim.run(until=120.0)  # initial loads

    arrivals = TraceReplayArrivals(
        top1, streams.stream("replay"), target_mean_rate=6.0
    )
    sampler = MixedCorpusSampler(
        LLAMA2_7B.name,
        streams.stream("requests"),
        weights={"coding": 0.8, "conversation": 0.2},
        slo_latency=15.0,
    )
    WorkloadGenerator(sim, arrivals, sampler, system.submit, duration=REPLAY_SECONDS)
    sim.run(until=120.0 + REPLAY_SECONDS + 60.0)
    system.shutdown()

    # 4. Report.
    summary = system.summarize(REPLAY_SECONDS + 60.0)
    print(f"\n--- replayed {summary.offered} requests from {top1.app} ---")
    print(f"inter-arrival CV of replayed stream: {arrivals.cv():.2f}")
    print(f"completed    : {summary.completed}/{summary.offered}")
    print(f"goodput      : {summary.goodput_rate:.1%} within 15s SLO")
    print(f"mean latency : {summary.mean_latency:.2f}s")
    print(f"adaptation   : {summary.refactor_count} inflight refactors, "
          f"{summary.scale_out_count} scale-outs")


if __name__ == "__main__":
    main()
