#!/usr/bin/env python
"""Fragmentation-aware scaling: fine stages fit where whole pipelines don't.

Fragments the cluster far beyond the paper's baseline, then asks the
allocator how many placements exist for coarse (whole-pipeline) versus
fine-grained scale-out units, and demonstrates warm starts via the
host-memory parameter cache and Eq. 13 affinity scheduling.

Run:  python examples/fragmented_scaling.py
"""

from __future__ import annotations

from repro import (
    OPT_66B,
    RandomStreams,
    ServingContext,
    Simulator,
    make_paper_cluster,
)
from repro.cluster.fragmentation import FragmentationConfig, FragmentationModel
from repro.scaling.affinity import AffinityScheduler
from repro.scaling.warm_cache import HostParamCache
from repro.transfer.links import GB


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=2)
    cluster = make_paper_cluster(sim)
    config = FragmentationConfig(target_subscription=2.4, mem_log_mean=2.85)
    FragmentationModel(sim, cluster, streams, config).warm_up()
    ctx = ServingContext.create(sim, cluster, streams)

    print(f"subscription {cluster.subscription_rate():.0%}, "
          f"P(GPU >=85% free) = {cluster.free_gpu_probability():.1%}, "
          f"P(4 co-located) = {cluster.colocated_probability(4):.2%}\n")

    # How many GPUs can host each scale-out unit size right now?
    ladder = ctx.ladder(OPT_66B, (2, 4, 8, 16, 32))
    print(f"{'stages':>7} {'stage size':>11} {'GPUs that fit':>14} {'cold load':>10}")
    for k in ladder.stage_counts:
        plan = ladder.plan(k)
        need = plan.memory_per_stage(16, OPT_66B.kv_bytes_per_request)[0]
        fits = len(ctx.allocator.candidates(need))
        load = ctx.cost_model.cold_load_time(plan.stages[0].param_bytes)
        print(f"{k:>7} {need / GB:>9.1f}GB {fits:>14} {load:>9.1f}s")

    # Warm starts: cache a stage's parameters on a server, then compare the
    # affinity-ranked placement and the load times.
    cache = HostParamCache()
    affinity = AffinityScheduler()
    plan = ladder.plan(16)
    stage = plan.stages[0]
    warm_server = cluster.servers[0]
    cache.put(warm_server, OPT_66B.name, stage.start, stage.end,
              stage.param_bytes, now=sim.now)
    affinity.record_placement(OPT_66B.name, warm_server, now=sim.now)

    ranked = affinity.rank(OPT_66B.name, cluster.servers, now=sim.now + 5.0)
    covered = cache.coverage(ranked[0], ctx.profile(OPT_66B), stage.start, stage.end)
    cold = ctx.cost_model.cold_load_time(stage.param_bytes)
    warm = ctx.cost_model.warm_load_time(stage.param_bytes)
    print(f"\naffinity ranks {ranked[0].sid} first "
          f"(warm coverage {covered / stage.param_bytes:.0%})")
    print(f"stage load there: {warm:.2f}s warm vs {cold:.2f}s cold "
          f"({cold / warm:.0f}x faster — the §7 'cold starts become warm starts')")


if __name__ == "__main__":
    main()
