#!/usr/bin/env python
"""Quickstart: serve LLAMA2-7B with FlexPipe on a simulated cluster.

Builds the paper's 42-server / 82-GPU fragmented cluster, deploys FlexPipe,
replays two minutes of Poisson traffic, and prints the serving report.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FlexPipeSystem,
    LLAMA2_7B,
    PoissonArrivals,
    RandomStreams,
    RequestSampler,
    ServingContext,
    Simulator,
    WorkloadGenerator,
    make_paper_cluster,
)
from repro.cluster.fragmentation import FragmentationModel


def main() -> None:
    # 1. The simulated environment: event engine, cluster, background load.
    sim = Simulator()
    streams = RandomStreams(seed=0)
    cluster = make_paper_cluster(sim)
    fragmentation = FragmentationModel(sim, cluster, streams)
    fragmentation.warm_up()  # pre-fragment like a long-running fleet
    print(
        f"cluster: {len(cluster.servers)} servers / {cluster.gpu_count} GPUs, "
        f"subscription {cluster.subscription_rate():.0%}, "
        f"P(GPU >=85% free) = {cluster.free_gpu_probability():.1%}"
    )

    # 2. The serving system.
    ctx = ServingContext.create(sim, cluster, streams)
    system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=1)
    system.start()
    sim.run(until=60.0)  # let the initial replica load its stages

    # 3. Traffic: 15 req/s Poisson for two minutes.
    sampler = RequestSampler(LLAMA2_7B.name, streams.stream("requests"))
    WorkloadGenerator(
        sim,
        PoissonArrivals(15.0, streams.stream("arrivals")),
        sampler,
        system.submit,
        duration=120.0,
    )
    sim.run(until=60.0 + 120.0 + 30.0)  # serve + drain
    system.shutdown()
    fragmentation.stop()

    # 4. The report.
    summary = system.summarize(150.0)
    print(f"\n--- {summary.system} served {summary.completed}/{summary.offered} requests ---")
    print(f"goodput      : {summary.goodput_rate:.1%} within the {sampler.slo_latency:.0f}s SLO")
    print(f"mean latency : {summary.mean_latency:.2f}s  ({summary.breakdown})")
    print(f"P99 latency  : {summary.latency_percentiles[99]:.2f}s")
    print(f"GPU holding  : {summary.gpus_used} GPUs at {summary.gpu_utilization:.0%} utilization")
    print(f"operations   : {summary.scale_out_count} scale-outs, {summary.refactor_count} inflight refactors")


if __name__ == "__main__":
    main()
