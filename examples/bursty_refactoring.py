#!/usr/bin/env python
"""Inflight refactoring under a traffic-regime change.

The workload switches from calm Poisson traffic to sustained MMPP bursts
(CV≈4) halfway through.  The script logs FlexPipe's granularity decisions:
watch the controller detect the CV shift and refactor the OPT-66B pipeline
to a deeper configuration without dropping a single request.

Run:  python examples/bursty_refactoring.py
"""

from __future__ import annotations

from repro import (
    FlexPipeSystem,
    MMPPArrivals,
    OPT_66B,
    PoissonArrivals,
    RandomStreams,
    RequestSampler,
    ServingContext,
    Simulator,
    WorkloadGenerator,
    make_paper_cluster,
)
from repro.cluster.fragmentation import FragmentationModel

CALM = 120.0
BURSTY = 180.0


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=1)
    cluster = make_paper_cluster(sim)
    FragmentationModel(sim, cluster, streams).warm_up()
    ctx = ServingContext.create(sim, cluster, streams)
    system = FlexPipeSystem(
        ctx, [OPT_66B], initial_replicas=3, batch_cap=32,
        prompt_tokens=128, output_tokens=8, slo_deadline=10.0,
    )
    system.start()
    sim.run(until=150.0)
    t0 = sim.now

    sampler = RequestSampler(
        OPT_66B.name, streams.stream("requests"), slo_latency=10.0
    )
    # Phase 1: calm.
    WorkloadGenerator(
        sim, PoissonArrivals(10.0, streams.stream("a1")), sampler,
        system.submit, duration=CALM,
    )
    # Phase 2: sustained bursts, scheduled to begin when phase 1 ends.
    sim.schedule(
        CALM,
        lambda: WorkloadGenerator(
            sim,
            MMPPArrivals.with_cv(10.0, 4.0, streams.stream("a2")),
            sampler,
            system.submit,
            duration=BURSTY,
        ),
    )

    # Narrate the controller's decisions once per 20 s.
    def report():
        monitor = system.monitors[OPT_66B.name]
        router = system.routers[OPT_66B.name]
        print(
            f"t={sim.now - t0:6.0f}s  cv={monitor.cv(sim.now):4.2f}  "
            f"granularity={system.current_granularity(OPT_66B.name):2d} stages  "
            f"replicas={len(router.active_replicas)}  queue={router.total_queue}"
        )
        if sim.now - t0 < CALM + BURSTY:
            sim.schedule(20.0, report)

    sim.schedule(1.0, report)
    sim.run(until=t0 + CALM + BURSTY + 40.0)
    system.shutdown()

    summary = system.summarize(CALM + BURSTY + 40.0)
    print(f"\ncompleted {summary.completed}/{summary.offered} "
          f"(goodput {summary.goodput_rate:.1%}) — zero requests dropped")
    print(f"inflight refactors: {summary.refactor_count}; "
          f"scale-outs: {summary.scale_out_count} "
          f"(warm-start rate {summary.warm_start_rate:.0%})")
    for event in system.metrics.events:
        if event.kind == "refactor":
            print(f"  refactor @ t={event.time - t0:6.1f}s  {event.detail}")


if __name__ == "__main__":
    main()
