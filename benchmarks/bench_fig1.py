"""Fig. 1 — request-distribution CV depends strongly on the window size.

Paper: CVs computed at 180s / 3h / 12h windows differ by up to 7x on the
Alibaba and Azure traces — the mismatch motivating runtime adaptation.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_fig1_cv_window_mismatch(benchmark):
    rows = benchmark.pedantic(figures.fig1_rows, rounds=1, iterations=1)
    emit(
        "fig1",
        format_table(
            ["window", "count CV"],
            [[r["window"], f"{r['cv']:.2f}"] for r in rows],
            title="Fig. 1 - CV of request counts vs measurement window (synthetic diurnal trace)",
        ),
    )
    spread = rows[-1]["cv"]
    assert spread >= 3.0, "window-size CV mismatch should be several-fold"
    values = {r["window"]: r["cv"] for r in rows[:-1]}
    assert len(values) == 3
