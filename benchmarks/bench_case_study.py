"""§9.6 — production case study: reservation, wait time, init latency.

Paper: always-on GPU reservation cut from 75% to 30% of peak *without
compromising service quality*; allocation wait −85%; instance
initialization −72%.  The reservation shares are provisioning policy
(reproduced by construction); the measured claims are service parity at
the reduced reservation and the elastic-init speedup over cold
whole-pipeline deployment.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_case_study_reservation_reduction(benchmark, runner):
    stats = benchmark.pedantic(figures.case_study_rows, kwargs={'runner': runner}, rounds=1, iterations=1)
    rows = [
        ["Always-on reservation (FlexPipe)", f"{stats['flex_reserved_frac']:.0%} of peak (paper: 30%)"],
        ["Always-on reservation (static)", f"{stats['static_reserved_frac']:.0%} of peak (paper: 75%)"],
        ["GPUs held (FlexPipe)", f"{stats['flex_gpus']}"],
        ["GPUs held (static baseline)", f"{stats['static_gpus']}"],
        ["FlexPipe goodput", f"{stats['flex_goodput']:.2f}"],
        ["Static goodput", f"{stats['static_goodput']:.2f}"],
        ["FlexPipe mean alloc wait (s)", f"{stats['flex_alloc_wait']:.2f}"],
        ["Static mean alloc wait (s)", f"{stats['static_alloc_wait']:.2f}"],
        ["Elastic scale-out init (s)", f"{stats['flex_init']:.2f}"],
        ["Cold whole-pipeline init (s)", f"{stats['cold_init']:.2f}"],
        ["Init reduction", f"{stats['init_reduction']:.0%} (paper: 72%)"],
        ["FlexPipe warm-start rate", f"{stats['flex_warm_rate']:.2f}"],
    ]
    emit(
        "case_study",
        format_table(["metric", "value"], rows, title="§9.6 - production case study (CV=4)"),
    )
    # Service quality holds at 30% always-on vs 75% (the headline claim).
    assert stats["flex_goodput"] >= 0.6 * stats["static_goodput"]
    # Elastic fine-grained scale-outs initialise far faster than a cold
    # whole-pipeline deployment (paper: -72%).
    assert stats["init_reduction"] > 0.4
    # Topology-aware allocation keeps FlexPipe's allocation waits at or
    # below the static baseline's.
    assert stats["flex_alloc_wait"] <= stats["static_alloc_wait"] + 1.0
