"""Fig. 8 — end-to-end latency breakdown across systems and CVs.

Paper shape: FlexPipe holds goodput near 100% across CVs and trades a
larger communication share for much smaller queue share; MuxServe and
Tetris degrade sharply as CV grows.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table

PAPER_RT = {
    1.0: {"FlexPipe": 0.83, "AlpaServe": 1.34, "MuxServe": 1.35, "ServerlessLLM": 1.34, "Tetris": 4.31},
    2.0: {"FlexPipe": 1.00, "AlpaServe": 1.58, "MuxServe": 2.35, "ServerlessLLM": 1.87, "Tetris": 5.06},
    4.0: {"FlexPipe": 1.45, "AlpaServe": 2.19, "MuxServe": 4.85, "ServerlessLLM": 4.29, "Tetris": 6.22},
}


def test_fig8_latency_breakdown(benchmark, cv_sweep):
    rows = benchmark.pedantic(figures.fig8_rows, args=(cv_sweep,), rounds=1, iterations=1)
    emit(
        "fig8",
        format_table(
            ["CV", "system", "RT s (paper)", "queue s", "exec s", "comm s", "goodput %"],
            [
                [
                    r["cv"],
                    r["system"],
                    f"{r['response_s']:.2f} ({PAPER_RT[r['cv']][r['system']]})",
                    f"{r['queue_s']:.2f}",
                    f"{r['exec_s']:.2f}",
                    f"{r['comm_s']:.2f}",
                    f"{r['goodput_pct']:.0f}",
                ]
                for r in rows
            ],
            title="Fig. 8 - E2E latency breakdown (OPT-66B + BERT-21B, 20+6 QPS)",
        ),
    )
    get = {(r["cv"], r["system"]): r for r in rows}
    for cv in (2.0, 4.0):
        # Multiplexing interference makes MuxServe the high-CV casualty.
        assert get[(cv, "MuxServe")]["goodput_pct"] < get[(cv, "FlexPipe")]["goodput_pct"]
        assert get[(cv, "MuxServe")]["response_s"] > get[(cv, "FlexPipe")]["response_s"]
    # FlexPipe pays more communication than the static coarse systems...
    assert get[(4.0, "FlexPipe")]["comm_s"] > get[(4.0, "Tetris")]["comm_s"]
    # ...and holds goodput within the top tier at every CV.
    for cv in (1.0, 2.0, 4.0):
        best = max(r["goodput_pct"] for (c, _), r in get.items() if c == cv)
        assert get[(cv, "FlexPipe")]["goodput_pct"] >= 0.75 * best
