"""Fig. 12 — resource efficiency: goodput vs GPU utilization.

Paper: FlexPipe reaches maximum goodput at 33-43% utilization; Tetris
burns 85% utilization for a fraction of the goodput at CV=4 (8.5x
efficiency gap).  High utilization in static systems is contention, not
useful work.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_fig12_resource_efficiency(benchmark, cv_sweep):
    rows = benchmark.pedantic(
        figures.fig12_rows, args=(cv_sweep,), rounds=1, iterations=1
    )
    emit(
        "fig12",
        format_table(
            ["CV", "system", "GPU util %", "goodput req/s", "req/s per util-%"],
            [
                [
                    r["cv"],
                    r["system"],
                    f"{r['gpu_util_pct']:.0f}",
                    f"{r['goodput_rps']:.1f}",
                    f"{r['efficiency']:.2f}",
                ]
                for r in rows
            ],
            title="Fig. 12 - goodput vs GPU utilization across CVs",
        ),
    )
    get = {(r["cv"], r["system"]): r for r in rows}
    for cv in (2.0, 4.0):
        flex = get[(cv, "FlexPipe")]
        mux = get[(cv, "MuxServe")]
        # The headline: FlexPipe converts utilization to goodput far more
        # efficiently than the multiplexing baseline under bursty load.
        assert flex["efficiency"] > 1.5 * mux["efficiency"]
        # High utilization != high goodput for the sharing systems.
        assert mux["gpu_util_pct"] > flex["gpu_util_pct"]
