"""§8 ablation — hierarchical transfer vs NCCL for refactoring migration.

The implementation section's claim: using NCCL for post-refactoring KV
migration would pay *seconds* of connection establishment, so FlexPipe
uses RDMA with a sendfile fallback.  This bench builds the migration
workload of a representative 8→16 split (8 fresh parameter shards + KV
shards for 64 in-flight requests) and schedules it three ways:

* hierarchy (RDMA/sendfile/local, the §8 design);
* sendfile-only (no RDMA NICs anywhere);
* forced NCCL (the ablation).

Shape target: NCCL's makespan is dominated by per-stream setup and sits
an order of magnitude above the hierarchy; the KV portion finishes in
milliseconds under the hierarchy (the "us-level inflight reconstruction"
of Fig. 6 depends on this).
"""

from __future__ import annotations

from conftest import emit

from repro.metrics.report import format_table
from repro.transfer.datamover import DataMover, TransferCosts
from repro.transfer.links import GB
from repro.transfer.migration import (
    Endpoint,
    ItemKind,
    MigrationItem,
    MigrationPlanner,
)

N_FRESH_STAGES = 8  # an 8->16 split loads 8 complement shards
STAGE_BYTES = 120 * GB / 16  # OPT-66B spread over 16 stages
N_INFLIGHT = 64  # requests with live KV during the transition
KV_BYTES = 96e6  # ~660-token context per request, per §4 calibration


def build_items(rdma: bool) -> list[MigrationItem]:
    items = []
    for k in range(N_FRESH_STAGES):
        src = Endpoint(f"server{k % 4}", f"g{k}", rdma=rdma)
        dst = Endpoint(f"server{4 + k % 8}", f"g{k}", rdma=rdma)
        items.append(
            MigrationItem(ItemKind.PARAMS, STAGE_BYTES, src, dst, tag=f"stage{k}")
        )
    for r in range(N_INFLIGHT):
        src = Endpoint(f"server{r % 4}", f"g{r % 2}", rdma=rdma)
        dst = Endpoint(f"server{4 + r % 8}", f"g{r % 2}", rdma=rdma)
        items.append(MigrationItem(ItemKind.KV, KV_BYTES, src, dst, tag=f"req{r}"))
    return items


def run_variants() -> dict[str, dict]:
    variants = {
        "hierarchy (RDMA)": (MigrationPlanner(), True),
        "sendfile fallback": (MigrationPlanner(), False),
        "forced NCCL": (MigrationPlanner(force_nccl=True), True),
    }
    out = {}
    for name, (planner, rdma) in variants.items():
        schedule = planner.schedule(build_items(rdma))
        out[name] = {
            "makespan": schedule.makespan,
            "kv_makespan": schedule.kv_makespan(),
            "serial": schedule.serial_time,
            "bytes": schedule.total_bytes,
            "methods": {
                m.value: b / GB for m, b in schedule.bytes_by_method().items()
            },
        }
    return out


def test_migration_hierarchy_vs_nccl(benchmark):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{r['makespan']:.3f}",
            f"{r['kv_makespan'] * 1e3:.1f}",
            f"{r['serial']:.3f}",
            ", ".join(f"{m}:{g:.1f}GB" for m, g in sorted(r["methods"].items())),
        ]
        for name, r in results.items()
    ]
    emit(
        "migration",
        format_table(
            ["variant", "makespan (s)", "KV done (ms)", "serial bound (s)", "bytes by method"],
            rows,
            title="§8 ablation - migration transfer hierarchy (8->16 split, 64 inflight)",
        ),
    )
    hierarchy = results["hierarchy (RDMA)"]
    sendfile = results["sendfile fallback"]
    nccl = results["forced NCCL"]
    # The §8 claim: NCCL connection setup dominates - an order of magnitude
    # slower than the hierarchical mechanism for the same bytes.
    assert nccl["makespan"] > 5 * hierarchy["makespan"]
    # The sendfile fallback degrades gracefully (no setup blow-up).
    assert sendfile["makespan"] < 2.5 * hierarchy["makespan"]
    # KV consistency work (the switchover-critical part) finishes fast
    # under the hierarchy even while parameter loads continue.
    assert hierarchy["kv_makespan"] < 0.5 * hierarchy["makespan"]
    # Every variant moves identical bytes.
    assert hierarchy["bytes"] == nccl["bytes"] == sendfile["bytes"]


def test_nccl_setup_dominates_small_kv(benchmark):
    """Per-stream view: for MB-scale KV deltas NCCL is pure overhead."""

    def single_stream():
        mover = DataMover(TransferCosts())
        fast = mover.plan(64e6, same_server=False, src_rdma=True, dst_rdma=True)
        slow = mover.plan(
            64e6, same_server=False, src_rdma=True, dst_rdma=True, force_nccl=True
        )
        return fast.duration, slow.duration

    fast, slow = benchmark.pedantic(single_stream, rounds=1, iterations=1)
    emit(
        "migration_single",
        format_table(
            ["method", "64 MB KV shard (ms)"],
            [["RDMA", f"{fast * 1e3:.2f}"], ["NCCL", f"{slow * 1e3:.1f}"]],
            title="Single-stream KV migration: RDMA vs NCCL",
        ),
    )
    assert slow > 50 * fast
