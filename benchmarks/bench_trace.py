"""Tracing-overhead benchmark: traced vs untraced scenario wall clock.

Runs the same scenario (identical spec, system, seed — hence identical
traffic and schedule) once with ``trace=False`` and once with
``trace=True``, and records the wall-clock overhead ratio in
``BENCH_perf.json`` at the repo root. The ratio is hardware-independent,
so the CI gate holds on runners faster or slower than the machine that
recorded it.

Usage::

    python benchmarks/bench_trace.py             # measure + record
    python benchmarks/bench_trace.py --check     # CI: fail if overhead blows up
    python benchmarks/bench_trace.py --scenario qos-priority

The ``--check`` gate is an absolute ceiling on the overhead ratio rather
than a relative comparison: causal tracing is bookkeeping on the request
path, and the contract is that it stays cheap (well under CEILING x the
untraced run), not that it stays at any particular recorded value.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_FILE = REPO_ROOT / "BENCH_perf.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

# Traced runs may cost at most this multiple of the untraced wall clock.
CEILING = 1.5


def measure(scenario: str, repeats: int = 3) -> dict:
    from repro.scenarios import SCENARIOS, ScenarioCase, run_scenario_case

    spec = SCENARIOS[scenario].quick()
    # Warm-up: the first run in a process pays import/JIT costs that
    # would otherwise land entirely on the untraced leg.
    run_scenario_case(ScenarioCase(spec, "FlexPipe", 0))
    out: dict = {"scenario": scenario}
    for label, traced in (("untraced", False), ("traced", True)):
        best = float("inf")
        completed = 0
        for _ in range(repeats):
            case = ScenarioCase(spec, "FlexPipe", 0, trace=traced)
            start = time.perf_counter()
            report = run_scenario_case(case)
            best = min(best, time.perf_counter() - start)
            completed = report.completed
        out[label] = {"wall_s": round(best, 4), "completed": completed}
    out["spans"] = sum(
        len(t.spans)
        for t in run_scenario_case(
            ScenarioCase(spec, "FlexPipe", 0, trace=True)
        ).traces
    )
    out["overhead"] = round(
        out["traced"]["wall_s"] / out["untraced"]["wall_s"], 3
    )
    return out


def load_perf() -> dict:
    if PERF_FILE.exists():
        return json.loads(PERF_FILE.read_text())
    return {}


def save_perf(perf: dict) -> None:
    PERF_FILE.write_text(json.dumps(perf, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="coldstart-economy",
                        help="scenario to drive (default coldstart-economy)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="gate on the overhead ceiling instead of recording")
    args = parser.parse_args(argv)

    result = measure(args.scenario, args.repeats)
    print(f"scenario:  {result['scenario']} (quick)")
    print(f"untraced:  {result['untraced']['wall_s']:.3f}s "
          f"({result['untraced']['completed']} completed)")
    print(f"traced:    {result['traced']['wall_s']:.3f}s "
          f"({result['spans']} spans emitted)")
    print(f"overhead:  {result['overhead']:.2f}x")

    if result["untraced"]["completed"] != result["traced"]["completed"]:
        print("FAIL: traced and untraced runs completed different request "
              "counts (tracing perturbed the simulation!)")
        return 1

    if args.check:
        if result["overhead"] > CEILING:
            print(f"FAIL: tracing overhead {result['overhead']:.2f}x exceeds "
                  f"the {CEILING:.2f}x ceiling")
            return 1
        print(f"OK: tracing overhead within the {CEILING:.2f}x ceiling")
        return 0

    perf = load_perf()
    perf["trace_overhead"] = result
    save_perf(perf)
    print(f"recorded in {PERF_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
