"""Fig. 13 — prefill latency across model scales on production-like traces.

Paper: FlexPipe improves mean prefill latency 6.4% (WHISPER-9B) to 24.4%
(OPT-66B) over AlpaServe/ServerlessLLM, with the gap growing with model
size, and delivers tighter latency distributions.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table

MODEL_ORDER = ["WHISPER-9B", "LLAMA2-7B", "BERT-21B", "OPT-66B"]


def test_fig13_prefill_latency_by_model(benchmark, runner):
    rows = benchmark.pedantic(figures.fig13_rows, kwargs={'runner': runner}, rounds=1, iterations=1)
    emit(
        "fig13",
        format_table(
            ["model", "system", "mean prefill s", "P95 latency s"],
            [
                [r["model"], r["system"], f"{r['prefill_s']:.3f}", f"{r['p95_latency']:.2f}"]
                for r in rows
            ],
            title="Fig. 13 - prefill latency across model scales (CV=2 trace)",
        ),
    )
    get = {(r["model"], r["system"]): r for r in rows}
    # Prefill latency grows with model scale for every system.
    for system in ("FlexPipe", "AlpaServe", "ServerlessLLM"):
        small = get[("LLAMA2-7B", system)]["prefill_s"]
        large = get[("OPT-66B", system)]["prefill_s"]
        assert large > small
    # FlexPipe's prefill stays competitive on the largest model (the
    # paper's strongest case).
    flex = get[("OPT-66B", "FlexPipe")]["prefill_s"]
    alpa = get[("OPT-66B", "AlpaServe")]["prefill_s"]
    assert flex <= 1.3 * alpa
