"""Events/sec benchmark for sharded scenario execution.

Runs one multi-model fleet scenario (four tenants on the paper cluster)
through the shard partitioner at ``--shards 1/2/4``, asserts the three
reports are byte-identical (the shard-count-invariance contract), and
records events/sec per worker count in ``BENCH_perf.json``.

Usage::

    python benchmarks/bench_shards.py            # measure + record
    python benchmarks/bench_shards.py --check    # CI: determinism + speedup gate

``--check`` always gates determinism; the parallel-speedup floor
(>= 3x events/sec at 4 workers vs 1) applies only on hardware with at
least 4 cores — on a core-starved runner extra worker processes cannot
speed anything up, so only the determinism half of the contract is
testable there.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_FILE = REPO_ROOT / "BENCH_perf.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios.driver import ScenarioCase, run_scenario_case  # noqa: E402
from repro.scenarios.sharding import partition_scenario  # noqa: E402
from repro.scenarios.spec import (  # noqa: E402
    ArrivalSegment,
    ModelScript,
    ScenarioSpec,
)

WORKER_COUNTS = (1, 2, 4)
# Acceptance floor for the parallel leg: >= 3x events/sec at 4 workers,
# gated only on hardware that can actually host 4 busy processes.
SPEEDUP_FLOOR = 3.0
MIN_CORES_FOR_GATE = 4


def fleet_spec(duration: float) -> ScenarioSpec:
    """Four tenants with comparable event volume (balanced shards).

    Rates are tuned so each tenant group processes a similar number of
    simulator events: the heavier models produce more events per request
    (more stages, longer occupancy), so they offer fewer requests.
    """

    def tenant(model: str, qps: float) -> ModelScript:
        return ModelScript(
            model=model,
            segments=(
                ArrivalSegment(
                    kind="steady", start=0.0, duration=duration, qps=qps
                ),
            ),
        )

    return ScenarioSpec(
        name="bench-shard-fleet",
        models=(
            tenant("LLAMA2-7B", 14.0),
            tenant("WHISPER-9B", 12.0),
            tenant("BERT-21B", 10.0),
            tenant("OPT-66B", 6.0),
        ),
        cluster="paper",
        settle=90.0,
        drain=20.0,
        description="shard-bench fleet: four balanced tenants",
    )


def canonical(report) -> str:
    return json.dumps(
        dataclasses.asdict(report), sort_keys=True, default=repr
    )


def measure(duration: float, repeats: int) -> tuple[dict, bool]:
    """Best-of-N events/sec per worker count; returns (record, identical)."""
    spec = fleet_spec(duration)
    plan = partition_scenario(spec, seed=0)
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1

    # Warm the process (imports, numpy init, profile caches) so the first
    # timed leg is not charged the interpreter's cold start.
    run_scenario_case(ScenarioCase(fleet_spec(20.0), "FlexPipe", 0, 1))

    blobs: dict[int, str] = {}
    eps: dict[str, float] = {}
    events = 0
    for workers in WORKER_COUNTS:
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            report = run_scenario_case(
                ScenarioCase(spec, "FlexPipe", 0, workers)
            )
            elapsed = time.perf_counter() - start
            events = report.engine_events
            best = max(best, events / elapsed)
        blobs[workers] = canonical(report)
        eps[str(workers)] = round(best)
        print(
            f"--shards {workers}: {eps[str(workers)]:>10,.0f} events/s "
            f"({events:,} events, {len(plan.groups)} shard groups)"
        )

    identical = len(set(blobs.values())) == 1
    record = {
        "groups": len(plan.groups),
        "events": events,
        "events_per_sec": eps,
        "speedup_4": round(eps["4"] / eps["1"], 2) if eps["1"] else 0.0,
        "cores": cores,
        "core_starved": cores < MIN_CORES_FOR_GATE,
    }
    return record, identical


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--duration", type=float, default=120.0,
        help="traffic window in simulated seconds (default 120)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="take the best of N runs per worker count (default 1)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate determinism (always) and the 4-worker speedup floor "
        "(on >= 4-core hardware) instead of recording",
    )
    args = parser.parse_args(argv)

    record, identical = measure(args.duration, args.repeats)
    print(
        f"speedup at 4 workers: {record['speedup_4']:.2f}x "
        f"({record['cores']} core(s) available)"
    )

    if not identical:
        print(
            "FAIL: reports differ across worker counts "
            "(shard-count invariance broken!)"
        )
        return 1
    print("determinism: reports byte-identical at --shards 1/2/4")

    if args.check:
        if record["core_starved"]:
            print(
                f"note: only {record['cores']} core(s) — the "
                f">= {SPEEDUP_FLOOR:.0f}x parallel floor needs "
                f"{MIN_CORES_FOR_GATE}+ cores, skipping that half of the gate"
            )
            return 0
        if record["speedup_4"] < SPEEDUP_FLOOR:
            print(
                f"FAIL: {record['speedup_4']:.2f}x at 4 workers is below "
                f"the {SPEEDUP_FLOOR:.1f}x floor"
            )
            return 1
        print(f"OK: parallel speedup above the {SPEEDUP_FLOOR:.1f}x floor")
        return 0

    perf = json.loads(PERF_FILE.read_text()) if PERF_FILE.exists() else {}
    perf["shards"] = record
    PERF_FILE.write_text(json.dumps(perf, indent=2, sort_keys=True) + "\n")
    print(f"recorded in {PERF_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
