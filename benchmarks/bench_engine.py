"""Events/sec microbenchmark for the discrete-event engine.

Drives a serving-shaped workload — job chains, batcher-style timer
arm/cancel churn, long watchdog timers that almost always cancel, and a
4 Hz ``pending_count`` monitor (the ``ServingSystem._sample`` cadence) —
through both the current engine and the vendored seed engine
(``benchmarks/_seed_engine.py``), and records events/sec in
``BENCH_perf.json`` at the repo root.

Usage::

    python benchmarks/bench_engine.py            # measure + record
    python benchmarks/bench_engine.py --check    # CI: fail on >30% regression
    python benchmarks/bench_engine.py --horizon 100   # quicker run

``--check`` compares the measured *speedup over the seed engine* against
the recorded one: the ratio is hardware-independent, so the gate holds on
CI runners that are faster or slower than the machine that recorded it.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_FILE = REPO_ROOT / "BENCH_perf.json"
SEED_ENGINE = pathlib.Path(__file__).parent / "_seed_engine.py"

sys.path.insert(0, str(REPO_ROOT / "src"))

# A regression gate at 30%: measured speedup may not fall below 70% of the
# recorded speedup (the ISSUE's perf-trajectory contract).
REGRESSION_TOLERANCE = 0.30


def _load_seed_engine():
    spec = importlib.util.spec_from_file_location("repro_seed_engine", SEED_ENGINE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def drive(sim_cls, horizon: float = 400.0, chains: int = 32) -> tuple[int, float]:
    """Run the scenario; returns (events_processed, wall_seconds)."""
    sim = sim_cls()

    def noop() -> None:
        return None

    def job(period: float) -> None:
        # Batcher pattern: arm a short max-wait timer, cancel on dispatch.
        short_timer = sim.schedule(0.3, noop)
        # Watchdog pattern: a long idle timer that almost always cancels —
        # exactly the population heap compaction exists for.
        watchdog = sim.schedule(30.0, noop)
        sim.schedule(period, job, period)
        short_timer.cancel()
        watchdog.cancel()

    sink = {"pending": 0}

    def monitor() -> None:
        sink["pending"] += sim.pending_count()
        sim.schedule(0.25, monitor)

    for c in range(chains):
        sim.schedule(0.01 * (c + 1), job, 0.05 + 0.002 * c)
    sim.schedule(0.25, monitor)

    start = time.perf_counter()
    sim.run(until=horizon)
    return sim.events_processed, time.perf_counter() - start


def measure(horizon: float, repeats: int = 3) -> dict:
    """Best-of-N events/sec for both engines on the identical scenario."""
    import repro.simulation.engine as current_engine

    seed_engine = _load_seed_engine()
    out: dict = {}
    for label, module in (("seed", seed_engine), ("current", current_engine)):
        best_rate, events = 0.0, 0
        for _ in range(repeats):
            events, elapsed = drive(module.Simulator, horizon=horizon)
            best_rate = max(best_rate, events / elapsed)
        out[label] = {"events": events, "events_per_sec": round(best_rate)}
    out["speedup"] = round(
        out["current"]["events_per_sec"] / out["seed"]["events_per_sec"], 3
    )
    return out


def load_perf() -> dict:
    if PERF_FILE.exists():
        return json.loads(PERF_FILE.read_text())
    return {}


def save_perf(perf: dict) -> None:
    PERF_FILE.write_text(json.dumps(perf, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=float, default=400.0,
                        help="simulated seconds to drive (default 400)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="compare against BENCH_perf.json instead of recording")
    args = parser.parse_args(argv)

    result = measure(args.horizon, args.repeats)
    print(
        f"seed engine:    {result['seed']['events_per_sec']:>10,} events/s "
        f"({result['seed']['events']} events)"
    )
    print(
        f"current engine: {result['current']['events_per_sec']:>10,} events/s "
        f"({result['current']['events']} events)"
    )
    print(f"speedup over seed: {result['speedup']:.2f}x")

    if result["seed"]["events"] != result["current"]["events"]:
        print("FAIL: engines processed different event counts (determinism!)")
        return 1

    if args.check:
        recorded = load_perf().get("engine")
        if not recorded:
            print("no recorded engine numbers in BENCH_perf.json; run without --check first")
            return 1
        floor = recorded["speedup"] * (1.0 - REGRESSION_TOLERANCE)
        print(f"recorded speedup {recorded['speedup']:.2f}x -> floor {floor:.2f}x")
        if result["speedup"] < floor:
            print(f"FAIL: engine speedup regressed below {floor:.2f}x")
            return 1
        print("OK: engine performance within tolerance")
        return 0

    perf = load_perf()
    perf["engine"] = result
    save_perf(perf)
    print(f"recorded in {PERF_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
