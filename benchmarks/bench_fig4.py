"""Fig. 4 — latency of 4/8/16-stage pipelines across request CVs.

Paper: fine-grained (16-stage) pipelines lose at low CV (2.7x the
response time of 4-stage) but win ~3x at CV=4 through distributed
buffering.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_fig4_granularity_vs_cv(benchmark, runner):
    rows = benchmark.pedantic(figures.fig4_rows, kwargs={'runner': runner}, rounds=1, iterations=1)
    emit(
        "fig4",
        format_table(
            ["CV", "stages", "mean latency s", "P95 s"],
            [
                [r["cv"], r["stages"], f"{r['mean_latency']:.2f}", f"{r['p95']:.2f}"]
                for r in rows
            ],
            title="Fig. 4 - latency by pipeline granularity and CV (OPT-66B)",
        ),
    )
    get = {(r["cv"], r["stages"]): r for r in rows}
    # At low CV, the 16-stage pipeline pays a communication premium over
    # the 4-stage configuration.
    assert get[(0.1, 16)]["mean_latency"] > get[(0.1, 4)]["mean_latency"]
    # The fine-grain premium shrinks (or flips) as burstiness grows —
    # the crossover that motivates dynamic granularity.
    low_ratio = get[(0.1, 16)]["mean_latency"] / get[(0.1, 4)]["mean_latency"]
    high_ratio = get[(4.0, 16)]["p95"] / get[(4.0, 4)]["p95"]
    assert high_ratio < low_ratio
