"""Shared benchmark fixtures and result emission.

Every benchmark prints its paper-vs-measured table and writes it to
``benchmarks/_results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import figures

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/_results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def cv_sweep():
    """The five-system CV sweep shared by Figs. 8, 10, 11 and 12.

    Running it once per session keeps the full benchmark suite tractable
    (15 full-cluster simulations).
    """
    return figures.system_sweep()
