"""Shared benchmark fixtures and result emission.

Every benchmark prints its paper-vs-measured table and writes it to
``benchmarks/_results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/_results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def bench_runner() -> ExperimentRunner:
    """The parallel runner the benchmark drivers share.

    Defaults to one worker per core (capped at 8 — the sweeps rarely have
    more independent cells in flight); ``REPRO_JOBS`` overrides.  Results
    are byte-identical at any job count.  The result cache is OFF here:
    pytest-benchmark timings must measure simulations, not pickle loads
    (set ``REPRO_BENCH_CACHE=1`` to opt back in when iterating on table
    formatting rather than numbers).
    """
    try:
        cores = len(os.sched_getaffinity(0))  # honors cgroup/affinity limits
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    jobs = int(os.environ.get("REPRO_JOBS") or 0) or min(cores, 8)
    use_cache = bool(os.environ.get("REPRO_BENCH_CACHE"))
    return ExperimentRunner(jobs=jobs, use_cache=use_cache)


@pytest.fixture(scope="session")
def runner():
    return bench_runner()


@pytest.fixture(scope="session")
def cv_sweep(runner):
    """The five-system CV sweep shared by Figs. 8, 10, 11 and 12.

    Running it once per session keeps the full benchmark suite tractable
    (15 full-cluster simulations, fanned out across the runner's workers).
    """
    return figures.system_sweep(runner=runner)
