"""Eq. 1 validation — the G/G/S model vs the simulated pipeline.

Checks the two analytic claims of §3.3: queueing delay grows with CV for a
fixed pipeline, and at high CV deeper pipelines (S ∝ sqrt(CV)) reduce
total delay.
"""

from __future__ import annotations

from conftest import emit

from repro.metrics.report import format_table
from repro.queueing.ggs import GGSModel, optimal_stage_count


def _sweep():
    rows = []
    for cv in (0.5, 1.0, 2.0, 4.0, 8.0):
        for stages in (4, 8, 16, 32):
            model = GGSModel(
                arrival_rate=8.0,
                cv_arrival=cv,
                stage_service_rates=(2.5 * stages,) * stages,
            )
            rows.append(
                {
                    "cv": cv,
                    "stages": stages,
                    "delay": model.total_delay(),
                    "optimal": optimal_stage_count(cv),
                }
            )
    return rows


def test_eq1_ggs_model(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "queueing",
        format_table(
            ["CV", "stages", "Eq.1 total delay", "S* = 8*sqrt(CV)"],
            [
                [r["cv"], r["stages"], f"{r['delay']:.3f}", r["optimal"]]
                for r in rows
            ],
            title="Eq. 1 - extended G/G/S pipeline delay model",
        ),
    )
    get = {(r["cv"], r["stages"]): r["delay"] for r in rows}
    # Delay grows with CV at fixed depth.
    assert get[(8.0, 4)] > get[(0.5, 4)]
    # At high CV, deeper pipelines win (Insight 3).
    assert get[(8.0, 16)] < get[(8.0, 4)]
    # The S ∝ sqrt(CV) rule anchors at the paper's data point.
    assert optimal_stage_count(4.0) == 16
