"""Ablations A1-A4 — each FlexPipe mechanism removed in turn (CV=4).

Not in the paper as a figure, but DESIGN.md calls these out to attribute
the gains: inflight refactoring, the host-memory warm cache, HRG
coordination, and affinity scheduling.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_ablations(benchmark, runner):
    rows = benchmark.pedantic(figures.ablation_rows, kwargs={'runner': runner}, rounds=1, iterations=1)
    emit(
        "ablations",
        format_table(
            ["variant", "goodput %", "mean lat s", "P99 s", "refactors", "warm rate", "mean init s"],
            [
                [
                    r["variant"],
                    f"{r['goodput_pct']:.0f}",
                    f"{r['mean_latency']:.2f}",
                    f"{r['p99']:.2f}",
                    r["refactors"],
                    f"{r['warm_rate']:.2f}",
                    f"{r['mean_init']:.1f}",
                ]
                for r in rows
            ],
            title="Ablations - FlexPipe mechanisms removed one at a time (CV=4)",
        ),
    )
    get = {r["variant"]: r for r in rows}
    assert get["no-refactoring"]["refactors"] == 0
    assert get["full"]["refactors"] > 0
    assert get["no-warm-cache"]["warm_rate"] == 0.0
