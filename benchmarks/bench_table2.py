"""Table 2 — performance metrics per pipeline granularity (OPT-66B).

The core calibration artefact: load time falls ~8.7x from 4 to 32 stages,
per-stage compute falls ~7x, communication rises ~10x, and max batch grows
8x (128 -> 1024).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_table2_granularity_profile(benchmark):
    rows = benchmark.pedantic(figures.table2_rows, rounds=1, iterations=1)
    table = [
        [
            r["stages"],
            f"{r['load_s']:.2f} ({r['paper_load']})",
            f"{r['compute_ms']:.2f} ({r['paper_compute']})",
            f"{r['comm_ms']:.1f} ({r['paper_comm']})",
            f"{r['max_batch']} ({r['paper_batch']})",
        ]
        for r in rows
    ]
    emit(
        "table2",
        format_table(
            ["Stages", "Load(s) (paper)", "Compute(ms) (paper)", "Comm(ms) (paper)", "Max Batch (paper)"],
            table,
            title="Table 2 - OPT-66B pipeline granularity profile, measured (paper)",
        ),
    )
    by_k = {r["stages"]: r for r in rows}
    # Max batch reproduces the paper exactly (KV-capacity physics).
    for k in (4, 8, 16, 32):
        assert by_k[k]["max_batch"] == by_k[k]["paper_batch"]
    # Load and compute within 25% of every paper row; comm within 15%.
    for r in rows:
        assert abs(r["load_s"] / r["paper_load"] - 1) < 0.25
        assert abs(r["compute_ms"] / r["paper_compute"] - 1) < 0.25
        assert abs(r["comm_ms"] / r["paper_comm"] - 1) < 0.15
    # Endpoint ratios hold: ~8.7x faster loading at 32 stages.
    assert by_k[4]["load_s"] / by_k[32]["load_s"] > 6.0
    assert by_k[32]["comm_ms"] > 8.0 * by_k[4]["comm_ms"]
