"""Table 1 + Fig. 2 — cluster fragmentation statistics.

Paper targets: mean SM utilization 16.9-23.7%, P50 well below P95,
216% subscription, 8.7% single-free-GPU probability, 0.02% four-co-located
probability.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_table1_fragmentation_statistics(benchmark):
    stats = benchmark.pedantic(figures.table1_rows, rounds=1, iterations=1)
    rows = [
        ["SM util mean (%)", f"{stats['sm_mean']:.1f}", "16.9 - 23.7"],
        ["SM util P50 (%)", f"{stats['sm_p50']:.1f}", "9.2 - 10.9"],
        ["SM util P95 (%)", f"{stats['sm_p95']:.1f}", "80.5 - 85.4"],
        ["SM in 10-30% band (%)", f"{stats['sm_10_30']:.1f}", "21.0 - 31.3"],
        ["Mem util mean (%)", f"{stats['mem_mean']:.1f}", "43.5 - 50.9"],
        ["Mem util P50 (%)", f"{stats['mem_p50']:.1f}", "28.8 - 53.7"],
        ["Mem util P95 (%)", f"{stats['mem_p95']:.1f}", "99.1 - 99.3"],
        ["GPU subscription (%)", f"{stats['subscription']:.0f}", "216"],
        ["P(GPU >=85% free) (%)", f"{stats['p_free_gpu']:.1f}", "8.7"],
        ["P(4 co-located free) (%)", f"{stats['p_colocated4']:.2f}", "0.02"],
    ]
    emit(
        "table1",
        format_table(
            ["metric", "measured", "paper"],
            rows,
            title="Table 1 / Fig. 2 - GPU cluster fragmentation statistics",
        ),
    )
    # Shape: heavy oversubscription with low actual SM use; scarce
    # co-located capacity.
    assert stats["subscription"] > 150
    assert stats["sm_mean"] < stats["subscription"] / 3
    assert stats["p_colocated4"] <= 5.0
    assert stats["mem_p95"] > stats["mem_p50"]
