"""Fig. 11 — pipeline-stall recovery time across systems and CVs.

Paper: FlexPipe recovers in 9 ms at CV=4 (44% faster than AlpaServe, 82%
faster than MuxServe/ServerlessLLM) by refactoring the topology instead of
waiting for queues to drain.  Recovery is measured with the §9.3
methodology (stall = latency > 1.5x P25 baseline; recovered < 1.2x).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table

PAPER_CV4_MS = {
    "FlexPipe": 9.0,
    "AlpaServe": 16.0,
    "MuxServe": 48.0,
    "ServerlessLLM": 50.0,
}


def test_fig11_stall_recovery(benchmark, cv_sweep):
    rows = benchmark.pedantic(
        figures.fig11_rows, args=(cv_sweep,), rounds=1, iterations=1
    )
    emit(
        "fig11",
        format_table(
            ["CV", "system", "median recovery (ms)", "paper CV=4 (ms)"],
            [
                [
                    r["cv"],
                    r["system"],
                    f"{r['median_recovery_ms']:.0f}",
                    PAPER_CV4_MS.get(r["system"], "-") if r["cv"] == 4.0 else "",
                ]
                for r in rows
            ],
            title="Fig. 11 - stall recovery time (§9.3 methodology)",
        ),
    )
    get = {(r["cv"], r["system"]): r["median_recovery_ms"] for r in rows}
    # Recovery times are well-defined (systems do stall and do recover).
    measured = [v for v in get.values() if v > 0]
    assert measured, "no stall episodes detected anywhere"
    # FlexPipe's recovery at CV=4 is not slower than the multiplexing
    # baseline trapped in queue drains.
    if get.get((4.0, "FlexPipe"), 0) > 0 and get.get((4.0, "MuxServe"), 0) > 0:
        assert get[(4.0, "FlexPipe")] <= 2.5 * get[(4.0, "MuxServe")]
