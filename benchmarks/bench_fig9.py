"""Fig. 9 — burst absorption under extreme variability (CV=8, 300 s).

Paper: 15-second window CVs fluctuate widely; FlexPipe's response-time
series stays flat while MuxServe sustains high latencies and AlpaServe
spikes periodically.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_fig9_burst_absorption(benchmark, runner):
    series = benchmark.pedantic(figures.fig9_series, kwargs={'runner': runner}, rounds=1, iterations=1)
    rows = []
    for name, data in series.items():
        rt = list(data["rt_series"].values())
        rows.append(
            [
                name,
                f"{data['mean_latency']:.2f}",
                f"{max(rt):.2f}" if rt else "-",
                f"{np.std(rt):.2f}" if rt else "-",
                f"{data['p99']:.2f}",
            ]
        )
    emit(
        "fig9",
        format_table(
            ["system", "mean RT s", "worst 15s-window RT", "RT std", "P99"],
            rows,
            title="Fig. 9 - burst absorption at CV=8 (warm 300 s window, MMPP bursts)",
        ),
    )
    flex = series["FlexPipe"]
    mux = series["MuxServe"]
    # MuxServe (multiplexing two tenants) sustains higher latency through
    # the bursts than FlexPipe once both are warm.
    assert mux["mean_latency"] > flex["mean_latency"]
    # Arrival-count series confirms the bursts were actually extreme.
    counts = list(flex["arrival_counts"].values())
    assert max(counts) > 4 * max(np.median(counts), 1)
