"""Fig. 3 — static pipeline degradation under request-distribution CV.

Paper: goodput -37%, queue length ~4x, stall cycle ~22x as CV goes from
0.1 to 8 on a static 4-stage OPT-66B pipeline at 20 QPS.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table

PAPER_GOODPUT = {0.1: 20.0, 1.0: 20.0, 2.0: 20.4, 4.0: 15.4, 8.0: 12.7}
PAPER_QUEUE = {0.1: 12.5, 1.0: 16.0, 2.0: 25.8, 4.0: 51.2, 8.0: 48.8}
PAPER_STALL = {0.1: 0.15, 1.0: 0.24, 2.0: 0.49, 4.0: 2.28, 8.0: 3.36}


def test_fig3_static_pipeline_vs_cv(benchmark, runner):
    rows = benchmark.pedantic(figures.fig3_rows, kwargs={'runner': runner}, rounds=1, iterations=1)
    emit(
        "fig3",
        format_table(
            ["CV", "goodput req/s (paper)", "queue mean (paper)", "queue p95", "stall cycle s (paper)", "mean lat s"],
            [
                [
                    r["cv"],
                    f"{r['goodput_rps']:.1f} ({PAPER_GOODPUT[r['cv']]})",
                    f"{r['queue_len']:.1f} ({PAPER_QUEUE[r['cv']]})",
                    f"{r['queue_p95']:.1f}",
                    f"{r['stall_cycle_s']:.2f} ({PAPER_STALL[r['cv']]})",
                    f"{r['mean_latency']:.2f}",
                ]
                for r in rows
            ],
            title="Fig. 3 - static 4-stage OPT-66B pipeline vs CV (20 QPS)",
        ),
    )
    by_cv = {r["cv"]: r for r in rows}
    # Shape: goodput degrades with CV (paper: -37%; the discrete batch-wave
    # substrate degrades harder once bursts overwhelm a static pipeline).
    assert by_cv[8.0]["goodput_rps"] < 0.75 * by_cv[0.1]["goodput_rps"]
    # Burst-phase congestion (queue tail) grows through moderate CV.  At
    # extreme CV the MMPP quiet phases dominate the sampled timeline, so
    # time-aggregated queue statistics dilute (the paper's Fig. 3b is a
    # loaded-period measurement); congestion then shows up as the stall-
    # cycle blow-up instead.
    assert by_cv[2.0]["queue_p95"] > 1.5 * by_cv[0.1]["queue_p95"]
    # Stall cycles blow up (paper: ~22x from CV 0.1 to 8).
    assert by_cv[8.0]["stall_cycle_s"] > 5 * by_cv[0.1]["stall_cycle_s"]
    assert by_cv[8.0]["mean_latency"] > by_cv[0.1]["mean_latency"]
