"""Design-choice sensitivity sweeps (DESIGN.md ablation index).

The controller has three tunables the paper introduces but does not sweep
publicly; these benches characterise them so a deployer knows the safe
ranges:

* Eq. 4's ``alpha`` (throughput-latency weight): low alpha favours
  latency -> coarser pipelines at low CV; high alpha favours throughput
  -> finer pipelines (bigger aggregate batch).
* Eq. 4's ``sigma`` (adaptation sensitivity): small sigma hard-gates on
  the CV setpoint match (selection tracks CV tightly); large sigma lets
  the quality term dominate (selection goes flat in CV).
* Eq. 11's ``beta/gamma`` (scaling-unit sigmoid): the midpoint of the
  coarse->fine transition must sit inside the operating range of
  cv * q̂, and the transition must be monotone.

All sweeps run on cached performance profiles (no cluster simulation), so
this bench is cheap and exact.
"""

from __future__ import annotations

from conftest import emit

from repro.metrics.report import format_table
from repro.models.costs import CostModel
from repro.models.profiler import Profiler
from repro.models.transformer import build_transformer
from repro.models.zoo import OPT_66B
from repro.partitioning.ladder import GranularityLadder
from repro.refactoring.granularity import GranularityPolicy
from repro.scaling.decision import scaling_granularity

CVS = (0.1, 0.5, 1.0, 2.0, 4.0, 8.0)


def make_ladder():
    profile = Profiler(CostModel()).profile(OPT_66B, build_transformer(OPT_66B))
    return profile, GranularityLadder(profile, stage_counts=(2, 4, 8, 16, 32))


def sweep_alpha():
    profile, ladder = make_ladder()
    rows = {}
    for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
        policy = GranularityPolicy(profile, ladder, alpha=alpha, batch_cap=32)
        rows[alpha] = [policy.select(cv) for cv in CVS]
    return rows


def sweep_sigma():
    profile, ladder = make_ladder()
    rows = {}
    for sigma in (0.3, 0.6, 1.2, 2.4, 4.8):
        policy = GranularityPolicy(profile, ladder, sigma=sigma, batch_cap=32)
        rows[sigma] = [policy.select(cv) for cv in CVS]
    return rows


def test_alpha_sensitivity(benchmark):
    rows = benchmark.pedantic(sweep_alpha, rounds=1, iterations=1)
    table = [[a] + stages for a, stages in rows.items()]
    emit(
        "sensitivity_alpha",
        format_table(
            ["alpha"] + [f"CV={cv}" for cv in CVS],
            table,
            title="Eq. 4 alpha sweep - selected stage count by CV",
        ),
    )
    for stages in rows.values():
        # Selection never gets coarser as CV rises (deeper pipelines absorb
        # bursts) regardless of the throughput-latency weighting.
        assert all(a <= b for a, b in zip(stages, stages[1:]))
    # The weight matters: pure-latency and pure-throughput policies pick
    # different granularities somewhere in the sweep.
    assert rows[0.0] != rows[1.0]


def test_sigma_sensitivity(benchmark):
    rows = benchmark.pedantic(sweep_sigma, rounds=1, iterations=1)
    table = [[s] + stages for s, stages in rows.items()]
    emit(
        "sensitivity_sigma",
        format_table(
            ["sigma"] + [f"CV={cv}" for cv in CVS],
            table,
            title="Eq. 4 sigma sweep - selected stage count by CV",
        ),
    )
    # Tight sigma tracks the CV setpoints: distinct choices across the
    # sweep; huge sigma flattens selection (fewer distinct choices).
    tight = len(set(rows[0.3]))
    flat = len(set(rows[4.8]))
    assert tight >= flat
    assert tight >= 3


def test_eq11_sigmoid_calibration(benchmark):
    def sweep():
        out = []
        for cv in (0.1, 1.0, 2.0, 4.0, 8.0):
            for q in (0, 64, 256, 512):
                out.append(
                    (cv, q, scaling_granularity(cv, q, g_max=32, queue_capacity=512))
                )
        return out

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [[cv, q, m] for cv, q, m in points]
    emit(
        "sensitivity_eq11",
        format_table(
            ["cv", "queue", "scaling granularity m_j"],
            table,
            title="Eq. 11 sigmoid - scaling unit granularity vs cv and queue",
        ),
    )
    by_key = {(cv, q): m for cv, q, m in points}
    # Calm & empty -> coarse units; bursty & congested -> finest units.
    assert by_key[(0.1, 0)] <= 2
    assert by_key[(8.0, 512)] == 32
    # Monotone in both arguments.
    for cv in (0.1, 1.0, 2.0, 4.0, 8.0):
        ms = [by_key[(cv, q)] for q in (0, 64, 256, 512)]
        assert all(a <= b for a, b in zip(ms, ms[1:]))
    for q in (0, 64, 256, 512):
        ms = [by_key[(cv, q)] for cv in (0.1, 1.0, 2.0, 4.0, 8.0)]
        assert all(a <= b for a, b in zip(ms, ms[1:]))
