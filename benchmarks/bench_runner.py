"""Wall-clock benchmark of the parallel experiment runner.

Times the same 4-system CV sweep (the Figs. 8/10-12 workload, shortened
horizons) sequentially and with a 4-worker pool, asserts the results are
byte-identical, and records the speedup in ``BENCH_perf.json``.

Usage::

    python benchmarks/bench_runner.py              # measure + record
    python benchmarks/bench_runner.py --jobs 8     # different pool width
    python benchmarks/bench_runner.py --check      # CI: determinism + speedup

``--check`` always gates determinism; the parallel-speedup floor applies
only when the machine has at least ``--jobs`` cores — a core-starved pool
cannot beat sequential execution, so the record carries ``core_starved``
and the gate tests only the determinism half of the contract there.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_FILE = REPO_ROOT / "BENCH_perf.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import ExperimentConfig, sweep_cv  # noqa: E402
from repro.experiments.runner import ExperimentRunner  # noqa: E402
from repro.experiments.systems import SYSTEM_FACTORIES  # noqa: E402

SYSTEMS = ("FlexPipe", "AlpaServe", "ServerlessLLM", "Tetris")
CVS = (1.0, 2.0, 4.0)
# With >= --jobs cores the pool must beat sequential by a comfortable
# margin (PR-1 measured near-linear scaling on 4 cores); kept modest so
# shared CI runners with noisy neighbours do not flake.
PARALLEL_SPEEDUP_FLOOR = 1.2


def run_sweep(jobs: int) -> tuple[float, dict]:
    """One full 4-system x 3-CV sweep; cache off so the timing is honest."""
    factories = {name: SYSTEM_FACTORIES[name] for name in SYSTEMS}
    cfg = ExperimentConfig(
        duration=180.0, settle_time=150.0, warmup_time=40.0, drain_time=30.0
    )
    runner = ExperimentRunner(jobs=jobs, use_cache=False)
    start = time.perf_counter()
    sweep = sweep_cv(factories, cfg, CVS, runner=runner)
    return time.perf_counter() - start, sweep


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool width for the parallel leg (default 4)")
    parser.add_argument("--check", action="store_true",
                        help="gate determinism (always) and the parallel "
                        "speedup floor (with enough cores) instead of "
                        "recording")
    args = parser.parse_args(argv)

    cells = len(SYSTEMS) * len(CVS)
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    print(f"sweep: {len(SYSTEMS)} systems x {len(CVS)} CVs = {cells} runs")
    if cores < args.jobs:
        print(
            f"note: only {cores} core(s) available — a {args.jobs}-wide pool "
            f"is core-starved, so wall-clock speedup is bounded by {cores}x; "
            f"the determinism check below still exercises the parallel path."
        )

    # Each leg pays its own cold start: the parallel leg once per worker
    # (forked before the parent ever ran a simulation), the sequential leg
    # once in-process.  Running the parallel leg first keeps the sequential
    # leg's later warm-cache advantage from flattering the pool.
    parallel_s, parallel_sweep = run_sweep(args.jobs)
    print(f"parallel (--jobs {args.jobs}): {parallel_s:.1f}s")
    sequential_s, sequential_sweep = run_sweep(1)
    print(f"sequential: {sequential_s:.1f}s")

    if parallel_sweep != sequential_sweep:
        print("FAIL: parallel sweep differs from sequential (determinism!)")
        return 1
    print("determinism: parallel results identical to sequential")

    speedup = sequential_s / parallel_s if parallel_s > 0 else 0.0
    print(f"speedup: {speedup:.2f}x")

    core_starved = cores < args.jobs
    if args.check:
        if core_starved:
            print(
                f"note: {cores} core(s) < {args.jobs} workers — skipping "
                f"the {PARALLEL_SPEEDUP_FLOOR:.1f}x parallel floor "
                f"(core-starved); determinism gate passed above"
            )
            return 0
        if speedup < PARALLEL_SPEEDUP_FLOOR:
            print(
                f"FAIL: {speedup:.2f}x parallel speedup is below the "
                f"{PARALLEL_SPEEDUP_FLOOR:.1f}x floor"
            )
            return 1
        print(f"OK: parallel speedup above {PARALLEL_SPEEDUP_FLOOR:.1f}x")
        return 0

    perf = json.loads(PERF_FILE.read_text()) if PERF_FILE.exists() else {}
    perf["runner"] = {
        "cells": cells,
        "jobs": args.jobs,
        "cores": cores,
        "core_starved": core_starved,
        "sequential_s": round(sequential_s, 2),
        "parallel_s": round(parallel_s, 2),
        "speedup": round(speedup, 2),
    }
    PERF_FILE.write_text(json.dumps(perf, indent=2, sort_keys=True) + "\n")
    print(f"recorded in {PERF_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
