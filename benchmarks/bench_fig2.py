"""Fig. 2 — GPU subscription rate and scattered availability.

Paper: (a) subscription averages 216% (two services per GPU) with
excursions far above 100%; (b) the availability heatmap shows free GPUs
scattered across servers, so P(one GPU ≥85% free) ≈ 8.7% while
P(4 co-located free GPUs on one server) collapses to ≈ 0.02%.

The fragmentation churn is fitted to exactly these statistics, so this
bench verifies the fit holds over time and that co-location probability
collapses with group size — the property that forces tensor-parallel
placements to degrade to pipelines (§3.1).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments.common import ExperimentConfig, build_environment
from repro.metrics.report import format_table

PAPER_SUBSCRIPTION = 216.0  # percent
PAPER_P_FREE_GPU = 8.7  # percent, one GPU >= 85% free
PAPER_P_COLOCATED4 = 0.02  # percent, four co-located free GPUs


def fig2_stats(seed: int = 0, samples: int = 30) -> dict:
    cfg = ExperimentConfig(seed=seed)
    sim, cluster, streams, frag = build_environment(cfg)
    subs, p_free, p_pairs, p_quads = [], [], [], []
    for _ in range(samples):
        sim.run(until=sim.now + 30.0)
        subs.append(cluster.subscription_rate() * 100)
        p_free.append(cluster.free_gpu_probability() * 100)
        p_pairs.append(cluster.colocated_probability(2) * 100)
        p_quads.append(cluster.colocated_probability(4) * 100)
    frag.stop()
    return {
        "subscription_mean": float(np.mean(subs)),
        "subscription_max": float(np.max(subs)),
        "p_free_gpu": float(np.mean(p_free)),
        "p_colocated2": float(np.mean(p_pairs)),
        "p_colocated4": float(np.mean(p_quads)),
    }


def test_fig2_fragmentation_statistics(benchmark):
    stats = benchmark.pedantic(fig2_stats, rounds=1, iterations=1)
    emit(
        "fig2",
        format_table(
            ["metric", "measured", "paper"],
            [
                ["GPU subscription mean (%)", f"{stats['subscription_mean']:.0f}", PAPER_SUBSCRIPTION],
                ["GPU subscription max (%)", f"{stats['subscription_max']:.0f}", "~900 peak"],
                ["P(GPU >=85% free) (%)", f"{stats['p_free_gpu']:.1f}", PAPER_P_FREE_GPU],
                ["P(2 co-located free) (%)", f"{stats['p_colocated2']:.2f}", "-"],
                ["P(4 co-located free) (%)", f"{stats['p_colocated4']:.3f}", PAPER_P_COLOCATED4],
            ],
            title="Fig. 2 - fragmentation: subscription and scattered availability",
        ),
    )
    # (a) Sustained overcommitment near the paper's 216% average.
    assert 150.0 <= stats["subscription_mean"] <= 300.0
    # (b) Single free GPUs are rare; co-located groups collapse with size.
    assert stats["p_free_gpu"] < 25.0
    assert stats["p_colocated2"] <= stats["p_free_gpu"]
    assert stats["p_colocated4"] <= stats["p_colocated2"]
    assert stats["p_colocated4"] < 1.0  # far below one percent of servers
