"""Fig. 10 — latency percentile stability across CVs.

Paper: FlexPipe's P99 stays controlled as CV grows while the serverless
baselines (ServerlessLLM, Tetris) blow up 2-3x at the tail.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figures
from repro.metrics.report import format_table


def test_fig10_percentile_stability(benchmark, cv_sweep):
    rows = benchmark.pedantic(
        figures.fig10_rows, args=(cv_sweep,), rounds=1, iterations=1
    )
    emit(
        "fig10",
        format_table(
            ["CV", "system", "P50", "P75", "P90", "P95", "P99"],
            [
                [
                    r["cv"],
                    r["system"],
                    *(f"{r[f'p{q}']:.2f}" for q in (50, 75, 90, 95, 99)),
                ]
                for r in rows
            ],
            title="Fig. 10 - response-time percentiles across CVs (seconds)",
        ),
    )
    get = {(r["cv"], r["system"]): r for r in rows}
    for (_, _), r in get.items():
        values = [r[f"p{q}"] for q in (50, 75, 90, 95, 99)]
        assert values == sorted(values), "percentiles must be monotone"
    # Tail control: FlexPipe's P99 inflation from CV=1 to CV=4 stays within
    # the worst baseline's inflation.
    flex_growth = get[(4.0, "FlexPipe")]["p99"] / max(get[(1.0, "FlexPipe")]["p99"], 1e-9)
    tetris_growth = get[(4.0, "Tetris")]["p99"] / max(get[(1.0, "Tetris")]["p99"], 1e-9)
    assert flex_growth < 3.0 or flex_growth <= tetris_growth * 1.5
