"""Render the CLI reference (``docs/cli.md``) from the argparse tree.

``repro docs-cli`` walks :func:`repro.cli.build_parser` and emits one
markdown section per subcommand, so the committed reference can never
describe a flag the parser does not accept.  The drift gate
(``repro docs-cli --check docs/cli.md``, also asserted by
``tests/test_docs.py``) fails CI whenever the parser changes without the
file being regenerated.
"""

from __future__ import annotations

import argparse

_BANNER = (
    "<!-- GENERATED FILE - do not edit by hand.\n"
    "     Regenerate with:  python -m repro docs-cli --output docs/cli.md\n"
    "     CI asserts this file matches the emitter output. -->"
)


def _option_label(action: argparse.Action) -> str:
    """``--shards N`` / ``--quick`` / positional ``name``."""
    if not action.option_strings:
        return action.metavar or action.dest
    label = ", ".join(action.option_strings)
    if action.nargs == 0:
        return label
    metavar = action.metavar or action.dest.upper()
    return f"{label} {metavar}"


def _iter_actions(parser: argparse.ArgumentParser):
    for action in parser._actions:
        if isinstance(action, (argparse._HelpAction, argparse._SubParsersAction)):
            continue
        yield action


def _subparsers(parser: argparse.ArgumentParser):
    """The (name, parser) pairs of a parser's subcommand table, if any."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            # choices preserves registration order and drops aliases'
            # duplicate parser objects only if aliased (we use none).
            return list(action.choices.items())
    return []


def _clean(text: str | None) -> str:
    return " ".join((text or "").split())


def _emit_table(lines: list[str], parser: argparse.ArgumentParser) -> None:
    actions = list(_iter_actions(parser))
    if not actions:
        return
    lines.append("| argument | default | description |")
    lines.append("| --- | --- | --- |")
    for action in actions:
        default = ""
        if action.option_strings and action.nargs != 0:
            if action.default is not None and action.default != argparse.SUPPRESS:
                default = f"`{action.default}`"
        help_text = _clean(action.help).replace("|", "\\|")
        lines.append(f"| `{_option_label(action)}` | {default} | {help_text} |")
    lines.append("")


def render_cli_markdown() -> str:
    """The full ``docs/cli.md`` body, terminated by a newline."""
    from repro.cli import build_parser

    parser = build_parser()
    lines = [
        _BANNER,
        "",
        "# `repro` CLI reference",
        "",
        _clean(parser.description),
        "",
        "Invoke as `python -m repro <command>` (examples below use the",
        "short form `repro <command>`).  Global flags precede the",
        "command: `repro --jobs 4 --no-cache scenario run --all`.",
        "",
        "## Global flags",
        "",
    ]
    _emit_table(lines, parser)
    for name, sub in _subparsers(parser):
        lines.append(f"## `repro {name}`")
        lines.append("")
        help_text = _clean(sub.description) or _clean(
            next(
                (
                    c.help
                    for a in parser._actions
                    if isinstance(a, argparse._SubParsersAction)
                    for c in a._choices_actions
                    if c.dest == name
                ),
                "",
            )
        )
        if help_text:
            lines.append(help_text)
            lines.append("")
        _emit_table(lines, sub)
        for sub_name, nested in _subparsers(sub):
            lines.append(f"### `repro {name} {sub_name}`")
            lines.append("")
            nested_help = _clean(
                next(
                    (
                        c.help
                        for a in sub._actions
                        if isinstance(a, argparse._SubParsersAction)
                        for c in a._choices_actions
                        if c.dest == sub_name
                    ),
                    "",
                )
            )
            if nested_help:
                lines.append(nested_help)
                lines.append("")
            _emit_table(lines, nested)
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"
