"""Per-tenant SLO-attainment signals for scaling and admission.

The :class:`AttainmentTracker` is the control plane's sensor: it watches
completions (and sheds) per tenant over a sliding window and answers the
three questions the other layers ask:

* **attainment** — what fraction of this tenant's recent outcomes met its
  class deadline?  (Sheds count as misses: a shed request is an outcome
  the tenant observed.)
* **completion rate / mean service** — the live capacity estimates the
  SLO-feasibility admission policy divides a backlog by.
* **pressure** — a scalar scale-out urgency: zero while the tenant is
  attaining, rising with the deficit weighted by the class's share, so a
  violated interactive tenant out-shouts a mildly late batch tenant at
  the autoscaler.

Every query runs on the admission/scaling hot path (once per offered
request), so per-tenant running aggregates are maintained alongside the
event deque: queries are O(events expired since the last query), not
O(window population).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.qos.classes import SLOClass, effective_deadline
from repro.workloads.requests import Request


@dataclass
class _TenantWindow:
    """One tenant's sliding outcome window with running aggregates.

    ``events`` holds (time, met, service) tuples — sheds record service
    NaN so they weigh on attainment but not on the capacity estimates.
    The counters mirror the deque's live contents exactly; ``prune``
    retires expired events from both.
    """

    events: deque = field(default_factory=deque)
    met: int = 0
    completions: int = 0
    service_sum: float = 0.0

    def add(self, now: float, met: bool, service: float) -> None:
        self.events.append((now, met, service))
        if met:
            self.met += 1
        if not math.isnan(service):
            self.completions += 1
            self.service_sum += service

    def prune(self, horizon: float) -> None:
        events = self.events
        while events and events[0][0] < horizon:
            _, met, service = events.popleft()
            if met:
                self.met -= 1
            if not math.isnan(service):
                self.completions -= 1
                self.service_sum -= service


class AttainmentTracker:
    """Sliding-window per-model SLO attainment and throughput."""

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        window: float = 30.0,
        slo_floor: float = 0.95,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0 < slo_floor <= 1:
            raise ValueError(f"slo_floor must be in (0,1], got {slo_floor}")
        self._clock = clock
        self.window = window
        self.slo_floor = slo_floor
        self._tenants: dict[str, _TenantWindow] = {}
        self._started = clock()

    # ------------------------------------------------------------------
    def observe_completion(self, request: Request) -> None:
        latency = request.latency
        met = latency is not None and latency <= effective_deadline(request)
        service = request.exec_time + request.comm_time
        self._tenant(request.model).add(self._clock(), met, service)

    def observe_shed(self, model: str) -> None:
        self._tenant(model).add(self._clock(), False, math.nan)

    def _tenant(self, model: str) -> _TenantWindow:
        tenant = self._tenants.get(model)
        if tenant is None:
            tenant = self._tenants[model] = _TenantWindow()
        return tenant

    def _pruned(self, model: str) -> _TenantWindow:
        tenant = self._tenant(model)
        tenant.prune(self._clock() - self.window)
        return tenant

    # ------------------------------------------------------------------
    def attainment(self, model: str) -> float | None:
        """Windowed fraction of outcomes that met the deadline.

        ``None`` while the window holds no outcome — consumers treat an
        unobserved tenant as attaining (optimistic cold start).
        """
        tenant = self._pruned(model)
        if not tenant.events:
            return None
        return tenant.met / len(tenant.events)

    def completion_rate(self, model: str) -> float:
        """Recent completions per second; ``inf`` before the first one.

        The infinity encodes the optimistic cold start the feasibility
        policy needs: with no evidence of limited capacity, backlog drain
        time estimates to zero and everything feasible is admitted.
        """
        tenant = self._pruned(model)
        if tenant.completions == 0:
            return math.inf
        elapsed = min(self.window, max(self._clock() - self._started, 1e-9))
        return tenant.completions / elapsed

    def mean_service(self, model: str) -> float:
        """Windowed mean service (exec + comm) time; 0 before data."""
        tenant = self._pruned(model)
        if tenant.completions == 0:
            return 0.0
        return tenant.service_sum / tenant.completions

    # ------------------------------------------------------------------
    def pressure(self, model: str, slo_class: SLOClass) -> float:
        """Scale-out urgency: 0 while attaining, weight x deficit below
        the floor (so class weight converts the same miss rate into more
        urgency for more important tenants)."""
        attainment = self.attainment(model)
        if attainment is None:
            return 0.0
        deficit = max(0.0, self.slo_floor - attainment)
        return slo_class.weight * deficit
