"""Per-tenant admission: class-aware policy chains behind one front door.

The historical harness puts one shared :class:`~repro.core.admission.
AdmissionGate` (a single queue-cap) in front of the whole fleet, so a
batch tenant's backlog sheds everyone indiscriminately.  The
:class:`TenantAdmissionController` replaces that with one *policy chain
per tenant* — queue-cap, weighted-fair overload shedding, SLO
feasibility — while keeping the gate contract every existing consumer
(auditor, reports) relies on: an aggregate ``stats`` triple plus
per-tenant triples, with ``offered == admitted + shed`` at both levels by
construction.

Shedding is deterministic (an error-diffusion credit per tenant, no RNG),
so two runs of the same seeded scenario shed the same requests — the
property the result cache and the exactly-once shed-accounting invariant
both build on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.admission import (
    AdmissionPolicy,
    GateStats,
    QueueCapPolicy,
    SLOFeasiblePolicy,
)
from repro.qos.classes import SLOClass
from repro.workloads.requests import Request


class WeightedFairShedPolicy(AdmissionPolicy):
    """Overload shedding in inverse proportion to the class weight.

    While ``overloaded()`` holds, a ``fair`` tenant sheds a deterministic
    ``base_shed / weight`` fraction of its arrivals (error-diffusion, no
    randomness), a ``first`` tenant sheds everything, and a ``protect``
    tenant sheds nothing here — its only shed path is SLO feasibility.
    Off overload the policy admits unconditionally and its credit resets,
    so fairness pressure never leaks into calm periods.
    """

    def __init__(
        self,
        overloaded: Callable[[], bool],
        slo_class: SLOClass,
        *,
        base_shed: float = 1.0,
    ):
        if base_shed <= 0:
            raise ValueError(f"base_shed must be positive, got {base_shed}")
        self.overloaded = overloaded
        self.slo_class = slo_class
        self.base_shed = base_shed
        self._credit = 0.0

    def admit(self, request: Request) -> bool:
        if not self.overloaded():
            self._credit = 0.0
            return True
        shed = self.slo_class.shed
        if shed == "protect":
            return True
        if shed == "first":
            return False
        self._credit += min(1.0, self.base_shed / self.slo_class.weight)
        if self._credit >= 1.0:
            self._credit -= 1.0
            return False
        return True


@dataclass
class _Tenant:
    """One registered tenant: its class, policy chain and accounting."""

    slo_class: SLOClass
    policies: list[AdmissionPolicy] = field(default_factory=list)
    stats: GateStats = field(default_factory=GateStats)


class TenantAdmissionController:
    """Routes each request through its own tenant's admission chain.

    Mirrors :class:`~repro.core.admission.AdmissionGate`'s interface
    (``submit``, ``stats``, ``on_reject``) so the auditor and every
    report treat it as just another gate; tenants additionally expose
    per-model accounting through :meth:`tenant_stats`.  Requests of an
    unregistered model pass through unconditionally (the null policy) but
    still count in the aggregate, so the books always balance.
    """

    def __init__(
        self,
        sink: Callable[[Request], None],
        *,
        on_reject: Callable[[Request], None] | None = None,
        on_shed: Callable[[str], None] | None = None,
    ):
        self.sink = sink
        self.on_reject = on_reject
        self.on_shed = on_shed  # e.g. AttainmentTracker.observe_shed
        self.stats = GateStats()
        self._tenants: dict[str, _Tenant] = {}
        # Observability: a FlightRecorder installed by a traced run (same
        # tap contract as AdmissionGate).
        self.recorder = None

    # ------------------------------------------------------------------
    def register(
        self,
        model: str,
        slo_class: SLOClass,
        policies: list[AdmissionPolicy],
    ) -> None:
        if model in self._tenants:
            raise ValueError(f"tenant {model!r} already registered")
        self._tenants[model] = _Tenant(slo_class, list(policies))

    @property
    def tenants(self) -> dict[str, SLOClass]:
        return {name: t.slo_class for name, t in self._tenants.items()}

    def tenant_stats(self) -> dict[str, GateStats]:
        """Per-tenant offered/admitted/shed triples (accounting surface)."""
        return {name: t.stats for name, t in self._tenants.items()}

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        self.stats.offered += 1
        tenant = self._tenants.get(request.model)
        if tenant is None:
            self.stats.admitted += 1
            self.sink(request)
            return
        tenant.stats.offered += 1
        if all(policy.admit(request) for policy in tenant.policies):
            tenant.stats.admitted += 1
            self.stats.admitted += 1
            self.sink(request)
            return
        tenant.stats.rejected += 1
        self.stats.rejected += 1
        request.rejected = True
        if self.recorder is not None:
            self.recorder.record(
                request.arrival_time,
                "shed",
                rid=request.rid,
                model=request.model,
                slo_class=request.slo_class,
            )
        if self.on_shed is not None:
            self.on_shed(request.model)
        if self.on_reject is not None:
            self.on_reject(request)


# ----------------------------------------------------------------------
# The standard composition (used by the scenario driver and chaos harness)
# ----------------------------------------------------------------------
def build_tenant_controller(
    system,
    classes: dict[str, SLOClass],
    *,
    cap: int = 0,
    protect_headroom: float = 2.0,
) -> TenantAdmissionController:
    """Compose the canonical per-tenant chain in front of ``system``.

    Per tenant: a queue cap on *its own* backlog, weighted-fair shedding
    keyed off the fleet-wide backlog crossing ``cap``, and SLO
    feasibility fed by the system's live attainment tracker (``cap=0``
    drops the first two — feasibility alone).  Requires
    ``system.enable_qos`` to have run (the tracker provides the capacity
    and service estimates).

    ``protect_headroom`` loosens the feasibility estimate for ``protect``
    classes only: shedding a protected tenant on a noisy drain estimate
    (capacity dips transiently during every reclamation) is the worst
    admission error, and its own queue cap still bounds the backlog the
    optimism can build.
    """
    tracker = getattr(system, "qos_tracker", None)
    if tracker is None:
        raise ValueError(
            "build_tenant_controller needs system.enable_qos() first "
            "(the SLO-feasibility policy consumes its attainment tracker)"
        )

    def total_queue() -> int:
        return sum(r.total_queue for r in system.all_routers().values())

    def routers_of(model: str) -> list:
        # Every pool serving this tenant: the primary router plus any
        # out-of-band pools (keyed "<model>/<pool>", e.g. DistServe's
        # decode routers) — a backlog there must count against the
        # tenant's cap and drain-time estimate too.
        return [
            router
            for name, router in system.all_routers().items()
            if name.split("/", 1)[0] == model
        ]

    overloaded = (lambda: total_queue() > cap) if cap else (lambda: False)
    controller = TenantAdmissionController(
        system.submit, on_shed=tracker.observe_shed
    )
    for model, slo_class in classes.items():
        routers = routers_of(model)
        policies: list[AdmissionPolicy] = []
        if cap:
            policies.append(
                QueueCapPolicy(
                    lambda rs=routers: sum(r.total_queue for r in rs), cap
                )
            )
            policies.append(WeightedFairShedPolicy(overloaded, slo_class))
        policies.append(
            SLOFeasiblePolicy(
                lambda rs=routers: float(
                    sum(r.waiting_count for r in rs)
                ),
                lambda m=model: _finite_or_large(tracker.completion_rate(m)),
                lambda request, m=model: tracker.mean_service(m),
                headroom=(
                    protect_headroom if slo_class.shed == "protect" else 1.0
                ),
            )
        )
        controller.register(model, slo_class, policies)
    return controller


def _finite_or_large(rate: float) -> float:
    """Clamp the tracker's cold-start ``inf`` to a large finite capacity
    (backlog drain estimates stay 0-ish without producing inf*0 NaNs)."""
    return rate if math.isfinite(rate) else 1e12
