"""Per-tenant SLO classes: the vocabulary of the QoS control plane.

FlexPipe's evaluation metric is *goodput under SLO*, but production
serverless fleets do not share one SLO: an interactive chat tenant and an
offline batch-embedding tenant on the same fragmented cluster differ by
orders of magnitude in what "on time" means and in what the platform owes
them under overload.  An :class:`SLOClass` bundles the three knobs the
rest of the control plane consumes:

``latency_target``
    The deadline defining goodput for requests of this class.
``priority``
    Strict-priority rank for scheduling (0 = most urgent).  Routers pop
    lower ranks first; an aging knob prevents starvation of higher ranks.
``weight``
    Weighted-fair share under overload: when the cluster sheds, a class
    sheds inversely proportional to its weight.
``shed``
    How the class participates in overload shedding: ``protect`` is only
    ever shed by its own SLO-feasibility (never by fair-share pressure),
    ``fair`` sheds at its weighted share, ``first`` is the sacrificial
    class that sheds whenever the cluster is overloaded.

The registry is deliberately tiny and closed (four classes) — tenants
pick a class, they do not invent bespoke ones — which is what makes
cross-tenant comparisons (attainment tables, shed fairness) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.requests import Request

SHED_POLICIES = ("protect", "fair", "first")


@dataclass(frozen=True)
class SLOClass:
    """One service class: deadline + scheduling priority + overload share."""

    name: str
    latency_target: float  # seconds; the goodput deadline
    priority: int  # strict-priority rank, 0 = most urgent
    weight: float  # weighted-fair share under overload
    shed: str = "fair"  # "protect" | "fair" | "first"

    def __post_init__(self) -> None:
        if self.latency_target <= 0:
            raise ValueError(
                f"latency target must be positive, got {self.latency_target}"
            )
        if self.priority < 0:
            raise ValueError(f"priority cannot be negative, got {self.priority}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.shed not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed!r}; choose from {SHED_POLICIES}"
            )


#: The closed class catalog.  ``standard`` mirrors the historical default
#: (`ModelScript.slo_latency` = 10 s), so annotating a tenant ``standard``
#: changes nothing about its workload — only makes the class explicit.
SLO_CLASSES: dict[str, SLOClass] = {
    cls.name: cls
    for cls in (
        SLOClass("interactive", latency_target=2.5, priority=0, weight=8.0, shed="protect"),
        SLOClass("standard", latency_target=10.0, priority=1, weight=4.0, shed="fair"),
        SLOClass("batch", latency_target=30.0, priority=2, weight=2.0, shed="fair"),
        SLOClass("best_effort", latency_target=120.0, priority=3, weight=1.0, shed="first"),
    )
}

DEFAULT_CLASS = "standard"


def get_slo_class(name: str) -> SLOClass:
    """Look up a class; raises ``KeyError`` naming the catalog."""
    try:
        return SLO_CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown SLO class {name!r}; available: {sorted(SLO_CLASSES)}"
        ) from None


def class_of(request: "Request") -> SLOClass:
    """The class governing one request (``standard`` when unclassed)."""
    name = getattr(request, "slo_class", None)
    return SLO_CLASSES[name] if name else SLO_CLASSES[DEFAULT_CLASS]


def effective_deadline(request: "Request") -> float:
    """The admission/scheduling deadline for one request.

    A classed request is judged against *its own class's* target — not
    against whatever ``slo_latency`` a shared sampler configuration froze
    in — so a batch-class request is never shed for missing an
    interactive deadline it was never promised.  Unclassed requests keep
    their per-request ``slo_latency`` (the historical behaviour).
    """
    name = getattr(request, "slo_class", None)
    if name:
        return SLO_CLASSES[name].latency_target
    return request.slo_latency


def request_priority(request: "Request", default: SLOClass | None = None) -> int:
    """Strict-priority rank for one request.

    Per-request class wins; otherwise the tenant's ``default`` class;
    otherwise ``standard``.
    """
    name = getattr(request, "slo_class", None)
    if name:
        return SLO_CLASSES[name].priority
    if default is not None:
        return default.priority
    return SLO_CLASSES[DEFAULT_CLASS].priority
