"""Priority-aware pending queue for class-differentiated routing.

:class:`PriorityPendingQueue` is a drop-in for the ``deque`` a
:class:`~repro.pipeline.router.ModelRouter` keeps its pending requests in:
strict priority across SLO classes, FIFO within a class, with an optional
*aging* knob for anti-starvation — a request's effective priority improves
by one rank per ``aging`` seconds waited, so a batch backlog eventually
drains even under sustained interactive pressure (``aging=None`` is pure
strict priority).

The queue preserves the router's invariants: ``len`` counts every waiting
request (the auditor's residency term), iteration yields every request,
and with a single class present pop order is exactly FIFO — so installing
the queue on an unclassed tenant changes nothing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.workloads.requests import Request


class PriorityPendingQueue:
    """Strict-priority buckets with FIFO order inside each bucket."""

    def __init__(
        self,
        clock: Callable[[], float],
        priority_of: Callable[[Request], int],
        *,
        aging: float | None = None,
    ):
        if aging is not None and aging <= 0:
            raise ValueError(f"aging must be positive (or None), got {aging}")
        self._clock = clock
        self._priority_of = priority_of
        self.aging = aging
        self._buckets: dict[int, deque[tuple[int, float, Request]]] = {}
        self._seq = 0
        self._len = 0

    # ------------------------------------------------------------------
    def append(self, request: Request) -> None:
        priority = int(self._priority_of(request))
        bucket = self._buckets.get(priority)
        if bucket is None:
            bucket = self._buckets[priority] = deque()
        bucket.append((self._seq, self._clock(), request))
        self._seq += 1
        self._len += 1

    def extend(self, requests) -> None:
        for request in requests:
            self.append(request)

    def popleft(self) -> Request:
        if not self._len:
            raise IndexError("pop from an empty PriorityPendingQueue")
        now = self._clock()
        best_key: tuple[int, int] | None = None
        best_priority = 0
        for priority in sorted(self._buckets):
            bucket = self._buckets[priority]
            if not bucket:
                continue
            seq, enqueued, _ = bucket[0]
            effective = priority
            if self.aging is not None:
                effective -= int((now - enqueued) / self.aging)
            key = (effective, seq)
            if best_key is None or key < best_key:
                best_key, best_priority = key, priority
        _, _, request = self._buckets[best_priority].popleft()
        self._len -= 1
        return request

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self) -> Iterator[Request]:
        for priority in sorted(self._buckets):
            for _, _, request in self._buckets[priority]:
                yield request

    def clear(self) -> None:
        self._buckets.clear()
        self._len = 0
