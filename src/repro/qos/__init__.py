"""Multi-tenant QoS control plane: SLO classes, priority scheduling,
class-aware admission, attainment signals, and resource arbitration.

Five layers consume this package: admission (per-tenant policy chains in
:mod:`repro.qos.admission`), routing (the priority pending queue in
:mod:`repro.qos.queueing`), scaling (the attainment pressure signal in
:mod:`repro.qos.signals`), resources (class ranks drive the allocator's
priority contention/preempt-or-wait and per-tenant share caps in
:mod:`repro.cluster.allocator`, and class-priority batch formation via
:class:`repro.pipeline.batching.PriorityBatcher`), and observability
(per-tenant attainment/shed/GPU-share rows in the scenario reports and
the ``repro qos`` CLI).

Admission exports resolve lazily: :mod:`repro.core.admission` imports
:mod:`repro.qos.classes` for per-request deadlines, so eagerly importing
:mod:`repro.qos.admission` (which imports core admission back) here would
create an import cycle.
"""

from __future__ import annotations

from repro.qos.classes import (
    DEFAULT_CLASS,
    SLO_CLASSES,
    SLOClass,
    class_of,
    effective_deadline,
    get_slo_class,
    request_priority,
)
from repro.qos.queueing import PriorityPendingQueue
from repro.qos.signals import AttainmentTracker

_LAZY = {
    "TenantAdmissionController",
    "WeightedFairShedPolicy",
    "build_tenant_controller",
}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.qos import admission

        return getattr(admission, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AttainmentTracker",
    "DEFAULT_CLASS",
    "PriorityPendingQueue",
    "SLOClass",
    "SLO_CLASSES",
    "TenantAdmissionController",
    "WeightedFairShedPolicy",
    "build_tenant_controller",
    "class_of",
    "effective_deadline",
    "get_slo_class",
    "request_priority",
]
