"""Interconnect and data-movement models.

Implements the paper's §8 transfer hierarchy: RDMA preferred for KV-cache
migration, sendfile fallback on hosts without RDMA, and the NCCL
connection-setup overhead that FlexPipe avoids.  Links are fair-share
(processor-sharing) resources so concurrent scaling operations genuinely
contend — the effect the Hierarchical Resource Graph coordinates around.
"""

from repro.transfer.links import FairShareLink, LinkSpec, TransferHandle
from repro.transfer.datamover import DataMover, TransferMethod, TransferPlan

__all__ = [
    "FairShareLink",
    "LinkSpec",
    "TransferHandle",
    "DataMover",
    "TransferMethod",
    "TransferPlan",
]
