"""Transfer-method selection for KV-cache and parameter migration (§8).

The paper's implementation avoids NCCL for post-refactoring KV migration
because connection establishment costs seconds; it uses RDMA when available
and falls back to ``sendfile`` kernel-space copies otherwise.  This module
reproduces that decision procedure and its cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.transfer.links import GB


class TransferMethod(enum.Enum):
    """How bytes move between two servers (or GPUs)."""

    LOCAL = "local"  # same-server GPU<->GPU over NVLink/PCIe
    RDMA = "rdma"
    SENDFILE = "sendfile"
    NCCL = "nccl"  # modelled only to quantify what FlexPipe avoids


@dataclass(frozen=True)
class TransferCosts:
    """Setup latency + effective bandwidth per method.

    Defaults follow §8: NCCL connection establishment costs seconds; RDMA
    setup is microseconds at near-line-rate; sendfile avoids user-space
    copies but routes through the kernel TCP stack.
    """

    rdma_setup: float = 150e-6
    rdma_bandwidth: float = 11.0 * GB  # ~90% of 100 Gbps line rate
    sendfile_setup: float = 1.2e-3
    sendfile_bandwidth: float = 8.5 * GB  # kernel-space TCP, no user copies
    nccl_setup: float = 2.8  # "several seconds" connection establishment
    nccl_bandwidth: float = 11.0 * GB
    local_setup: float = 20e-6
    local_bandwidth: float = 24.0 * GB  # PCIe gen4 x16 effective


@dataclass(frozen=True)
class TransferPlan:
    """A concrete plan for moving ``nbytes`` between two endpoints."""

    method: TransferMethod
    nbytes: float
    setup_time: float
    bandwidth: float

    @property
    def duration(self) -> float:
        return self.setup_time + self.nbytes / self.bandwidth


class DataMover:
    """Chooses the cheapest supported method for each migration."""

    def __init__(self, costs: TransferCosts | None = None):
        self.costs = costs or TransferCosts()

    def plan(
        self,
        nbytes: float,
        *,
        same_server: bool,
        src_rdma: bool,
        dst_rdma: bool,
        force_nccl: bool = False,
    ) -> TransferPlan:
        """Plan a transfer following the §8 hierarchy.

        ``force_nccl`` exists so ablations can quantify the overhead the
        hierarchical mechanism eliminates.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        costs = self.costs
        if force_nccl:
            return TransferPlan(
                TransferMethod.NCCL, nbytes, costs.nccl_setup, costs.nccl_bandwidth
            )
        if same_server:
            return TransferPlan(
                TransferMethod.LOCAL, nbytes, costs.local_setup, costs.local_bandwidth
            )
        if src_rdma and dst_rdma:
            return TransferPlan(
                TransferMethod.RDMA, nbytes, costs.rdma_setup, costs.rdma_bandwidth
            )
        return TransferPlan(
            TransferMethod.SENDFILE,
            nbytes,
            costs.sendfile_setup,
            costs.sendfile_bandwidth,
        )
