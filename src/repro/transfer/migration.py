"""Refactoring-time migration planning with link contention (§8).

One granularity transition moves many byte streams at once: parameter
shards for stages placed on fresh GPUs and KV shards for every in-flight
request.  Each stream individually follows the §8 method hierarchy
(:class:`~repro.transfer.datamover.DataMover`); collectively they contend
for server NICs — the effect the Hierarchical Resource Graph exists to
manage.  This module turns a set of migration items into a contention-
aware schedule:

* each server has one egress and one ingress channel (full-duplex NIC);
  a cross-server transfer occupies its source's egress and destination's
  ingress for its whole duration;
* same-server (GPU-to-GPU) moves occupy the server's PCIe channel only;
* items are list-scheduled longest-processing-time-first, the classic
  2-approximation, so the *makespan* the schedule reports is what the
  refactoring executor should budget for the overlap window.

The planner is pure (no simulator side effects): the executor feeds its
output into the event engine, and the ablation bench compares makespans
with and without coordination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.transfer.datamover import DataMover, TransferMethod, TransferPlan


class ItemKind(enum.Enum):
    """What a migration stream carries."""

    PARAMS = "params"
    KV = "kv"


@dataclass(frozen=True)
class Endpoint:
    """One side of a transfer: a GPU within a server."""

    server_id: str
    gpu_id: str
    rdma: bool = True


@dataclass(frozen=True)
class MigrationItem:
    """One byte stream the transition must move."""

    kind: ItemKind
    nbytes: float
    src: Endpoint
    dst: Endpoint
    tag: str = ""  # request id, stage index, ... (reporting only)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative transfer size: {self.nbytes}")

    @property
    def same_server(self) -> bool:
        return self.src.server_id == self.dst.server_id


@dataclass(frozen=True)
class ScheduledTransfer:
    """A migration item bound to a method and a time slot."""

    item: MigrationItem
    plan: TransferPlan
    start: float
    end: float


@dataclass
class MigrationSchedule:
    """The contention-aware schedule for one transition."""

    transfers: list[ScheduledTransfer] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Wall-clock time until the last stream completes."""
        return max((t.end for t in self.transfers), default=0.0)

    @property
    def total_bytes(self) -> float:
        return sum(t.item.nbytes for t in self.transfers)

    @property
    def serial_time(self) -> float:
        """Sum of individual durations (the no-parallelism upper bound)."""
        return sum(t.plan.duration for t in self.transfers)

    def bytes_by_method(self) -> dict[TransferMethod, float]:
        out: dict[TransferMethod, float] = {}
        for t in self.transfers:
            out[t.plan.method] = out.get(t.plan.method, 0.0) + t.item.nbytes
        return out

    def kv_makespan(self) -> float:
        return max(
            (t.end for t in self.transfers if t.item.kind is ItemKind.KV),
            default=0.0,
        )

    def busiest_channel_time(self) -> float:
        """Total occupancy of the most loaded channel (the true bottleneck)."""
        load: dict[str, float] = {}
        for t in self.transfers:
            for channel in channels_of(t.item):
                load[channel] = load.get(channel, 0.0) + t.plan.duration
        return max(load.values(), default=0.0)


def channels_of(item: MigrationItem) -> tuple[str, ...]:
    """The single-occupancy channels ``item`` occupies while in flight:
    the server's PCIe lane for same-server moves, otherwise the source's
    NIC egress plus the destination's NIC ingress (full-duplex)."""
    if item.same_server:
        return (f"{item.src.server_id}:pcie",)
    return (f"{item.src.server_id}:egress", f"{item.dst.server_id}:ingress")


class MigrationPlanner:
    """Plans the byte movement of one pipeline transition."""

    def __init__(self, mover: DataMover | None = None, *, force_nccl: bool = False):
        self.mover = mover or DataMover()
        self.force_nccl = force_nccl

    # ------------------------------------------------------------------
    def plan_item(self, item: MigrationItem) -> TransferPlan:
        """Method selection for a single stream (§8 hierarchy)."""
        return self.mover.plan(
            item.nbytes,
            same_server=item.same_server,
            src_rdma=item.src.rdma,
            dst_rdma=item.dst.rdma,
            force_nccl=self.force_nccl,
        )

    def schedule(
        self, items: list[MigrationItem], *, kv_first: bool = True
    ) -> MigrationSchedule:
        """List-schedule items onto per-server NIC/PCIe channels.

        Channels are single-occupancy: the schedule serialises streams
        sharing a NIC direction and overlaps everything else, which is how
        fair-share links behave to first order when streams are few and
        large (the refactoring regime).

        ``kv_first`` (the default, matching Fig. 6's sequence) schedules
        KV shards ahead of parameter loads: KV completion gates the
        switchover pause, while parameter loading overlaps with continued
        service on the old chain.  Within each class items go longest-
        processing-time-first (the classic 2-approximation).
        """
        planned = [(item, self.plan_item(item)) for item in items]
        planned.sort(
            key=lambda pair: (
                kv_first and pair[0].kind is not ItemKind.KV,
                -pair[1].duration,
            )
        )
        free_at: dict[str, float] = {}
        schedule = MigrationSchedule()
        for item, plan in planned:
            channels = channels_of(item)
            start = max((free_at.get(c, 0.0) for c in channels), default=0.0)
            end = start + plan.duration
            for c in channels:
                free_at[c] = end
            schedule.transfers.append(ScheduledTransfer(item, plan, start, end))
        schedule.transfers.sort(key=lambda t: (t.start, t.item.tag))
        return schedule


def refactor_items(
    stage_moves: list[tuple[Endpoint, Endpoint, float]],
    kv_moves: list[tuple[Endpoint, Endpoint, float, str]],
) -> list[MigrationItem]:
    """Build the item list for a transition.

    ``stage_moves`` are (src, dst, param_bytes) triples for stages whose
    parameters can be peer-sourced; ``kv_moves`` are (src, dst, kv_bytes,
    request_tag) for in-flight requests' shards.  Zero-byte entries are
    skipped (stages already resident, requests with no KV yet).
    """
    items: list[MigrationItem] = []
    for i, (src, dst, nbytes) in enumerate(stage_moves):
        if nbytes > 0:
            items.append(
                MigrationItem(ItemKind.PARAMS, nbytes, src, dst, tag=f"stage{i}")
            )
    for src, dst, nbytes, tag in kv_moves:
        if nbytes > 0:
            items.append(MigrationItem(ItemKind.KV, nbytes, src, dst, tag=tag))
    return items
