"""Fair-share (processor-sharing) link model with per-stream rate caps.

A :class:`FairShareLink` divides its aggregate bandwidth among in-flight
transfers, but any transfer may additionally be capped at a per-stream rate
(e.g. checkpoint loads are bottlenecked by the loader's ingest path long
before the storage backend saturates).  Allocation is two-pass waterfilling:
capped streams take min(cap, equal share) and the leftover is redistributed
to uncapped streams.  Completion times rescale whenever a transfer starts
or finishes — the standard fluid model of TCP/RDMA sharing, which makes
parallel scale-ups genuinely contend (the effect the HRG coordinates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.simulation.engine import Event, Simulator

GB = 1024**3
MB = 1024**2


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters.

    ``bandwidth`` is the aggregate bytes/second; ``latency`` is the one-way
    protocol latency applied once per transfer.
    """

    name: str
    bandwidth: float
    latency: float = 0.0

    def serial_time(self, nbytes: float) -> float:
        """Uncontended transfer time for ``nbytes`` (no per-stream cap)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency + nbytes / self.bandwidth


class TransferHandle:
    """An in-flight transfer on a :class:`FairShareLink`."""

    __slots__ = (
        "nbytes",
        "remaining",
        "callback",
        "max_rate",
        "rate",
        "done",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        nbytes: float,
        callback: Callable[[], None] | None,
        max_rate: float | None,
    ):
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.callback = callback
        self.max_rate = max_rate
        self.rate = 0.0
        self.done = False
        self.started_at: float | None = None
        self.finished_at: float | None = None

    @property
    def duration(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class FairShareLink:
    """A shared link with waterfilled bandwidth allocation."""

    def __init__(self, sim: Simulator, spec: LinkSpec):
        if spec.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {spec.bandwidth}")
        self.sim = sim
        self.spec = spec
        self._active: list[TransferHandle] = []
        self._last_update = sim.now
        self._next_completion: Event | None = None
        self.bytes_moved = 0.0
        self.transfers_completed = 0

    @property
    def active_count(self) -> int:
        return len(self._active)

    # ------------------------------------------------------------------
    def transfer(
        self,
        nbytes: float,
        callback: Callable[[], None] | None = None,
        *,
        max_rate: float | None = None,
    ) -> TransferHandle:
        """Start a transfer; ``callback`` fires when it completes.

        ``max_rate`` caps this stream's share (bytes/s).  Zero-byte
        transfers still pay the link latency (metadata exchange).
        """
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate}")
        handle = TransferHandle(nbytes, callback, max_rate)
        handle.started_at = self.sim.now
        if nbytes <= 0:
            self.sim.schedule(self.spec.latency, self._finish_instant, handle)
            return handle
        self._drain_progress()
        # Account the protocol latency by front-loading equivalent bytes at
        # this stream's own maximum rate (monotone under contention).
        lat_rate = min(max_rate or self.spec.bandwidth, self.spec.bandwidth)
        handle.remaining = nbytes + self.spec.latency * lat_rate
        self._active.append(handle)
        self._reallocate_and_schedule()
        return handle

    def estimate_time(self, nbytes: float, max_rate: float | None = None) -> float:
        """Expected time for a new transfer given current contention."""
        share = self.spec.bandwidth / (len(self._active) + 1)
        rate = min(max_rate or self.spec.bandwidth, max(share, 1e-9))
        return self.spec.latency + nbytes / rate

    # ------------------------------------------------------------------
    def _finish_instant(self, handle: TransferHandle) -> None:
        handle.done = True
        handle.finished_at = self.sim.now
        self.transfers_completed += 1
        if handle.callback is not None:
            handle.callback()

    def _waterfill(self) -> None:
        """Assign each active handle its rate (two-pass waterfilling)."""
        n = len(self._active)
        if n == 0:
            return
        bandwidth = self.spec.bandwidth
        share = bandwidth / n
        capped = [h for h in self._active if h.max_rate is not None and h.max_rate < share]
        uncapped = [h for h in self._active if h not in capped]
        used = 0.0
        for handle in capped:
            handle.rate = handle.max_rate
            used += handle.rate
        if uncapped:
            fair = max(bandwidth - used, 0.0) / len(uncapped)
            for handle in uncapped:
                handle.rate = (
                    min(handle.max_rate, fair) if handle.max_rate is not None else fair
                )
        # Guard: rates must stay positive for completion math.
        for handle in self._active:
            handle.rate = max(handle.rate, 1e-9)

    def _drain_progress(self) -> None:
        """Account bytes moved since the last state change."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for handle in self._active:
                moved = handle.rate * elapsed
                handle.remaining = max(handle.remaining - moved, 0.0)
                self.bytes_moved += moved
        self._last_update = now

    def _reallocate_and_schedule(self) -> None:
        if self._next_completion is not None:
            self._next_completion.cancel()
            self._next_completion = None
        if not self._active:
            return
        self._waterfill()
        soonest = min(self._active, key=lambda h: h.remaining / h.rate)
        delay = soonest.remaining / soonest.rate
        if math.isnan(delay) or math.isinf(delay):
            raise RuntimeError(f"invalid completion delay on {self.spec.name}")
        self._next_completion = self.sim.schedule(delay, self._complete, soonest)

    def _complete(self, handle: TransferHandle) -> None:
        self._drain_progress()
        if handle in self._active:
            self._active.remove(handle)
        handle.remaining = 0.0
        handle.done = True
        handle.finished_at = self.sim.now
        self.transfers_completed += 1
        self._reallocate_and_schedule()
        if handle.callback is not None:
            handle.callback()
