"""FlexPipe reproduction: adaptive LLM serving via inflight pipeline
refactoring in fragmented serverless clusters (EUROSYS '26).

The public API re-exports the pieces a downstream user composes:

>>> from repro import Simulator, RandomStreams, make_paper_cluster
>>> from repro import ServingContext, FlexPipeSystem, LLAMA2_7B
>>> sim = Simulator()
>>> streams = RandomStreams(seed=0)
>>> cluster = make_paper_cluster(sim)
>>> ctx = ServingContext.create(sim, cluster, streams)
>>> system = FlexPipeSystem(ctx, [LLAMA2_7B])
>>> system.start()

See ``examples/quickstart.py`` for the full serving loop.
"""

from repro.simulation import Simulator, RandomStreams
from repro.cluster import (
    Cluster,
    FragmentationModel,
    GPUAllocator,
    make_paper_cluster,
    make_small_cluster,
)
from repro.models import (
    BERT_21B,
    LLAMA2_7B,
    MODEL_ZOO,
    OPT_66B,
    WHISPER_9B,
    CostModel,
    get_model,
)
from repro.core import FlexPipeConfig, FlexPipeSystem, ServingContext
from repro.baselines import (
    AlpaServeSystem,
    MuxServeSystem,
    ServerlessLLMSystem,
    TetrisSystem,
)
from repro.workloads import (
    GammaArrivals,
    MMPPArrivals,
    PoissonArrivals,
    RequestSampler,
    SLO,
    WorkloadGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "RandomStreams",
    "Cluster",
    "FragmentationModel",
    "GPUAllocator",
    "make_paper_cluster",
    "make_small_cluster",
    "MODEL_ZOO",
    "OPT_66B",
    "LLAMA2_7B",
    "BERT_21B",
    "WHISPER_9B",
    "CostModel",
    "get_model",
    "FlexPipeConfig",
    "FlexPipeSystem",
    "ServingContext",
    "AlpaServeSystem",
    "MuxServeSystem",
    "ServerlessLLMSystem",
    "TetrisSystem",
    "GammaArrivals",
    "MMPPArrivals",
    "PoissonArrivals",
    "RequestSampler",
    "SLO",
    "WorkloadGenerator",
    "__version__",
]
