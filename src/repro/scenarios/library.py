"""The named scenario catalog (``repro scenario list``).

Each entry scripts one serving situation the paper's fragmented
serverless setting produces; all run against any of the six systems with
the invariant auditor attached.  Durations are sized so a full
``repro scenario run --all`` stays in CI territory; ``--quick`` (the
``ScenarioSpec.quick`` transform) compresses time a further ~3x.
"""

from __future__ import annotations

from repro.scenarios.spec import (
    ArrivalSegment,
    ModelScript,
    ScenarioEvent,
    ScenarioSpec,
)
from repro.workloads.azure2019 import (
    Azure2019Source,
    load_window_cached,
    map_functions_to_zoo,
)

PAPER_MULTI_BURST = ScenarioSpec(
    name="paper-multi-burst",
    description=(
        "Paper-scale cluster multiplexing three models; staggered CV-8 "
        "bursts hit each tenant in turn while the platform reclaims GPUs."
    ),
    cluster="paper",
    settle=90.0,
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=8.0),
                ArrivalSegment(
                    "burst", start=10.0, duration=20.0, qps=10.0, cv=8.0
                ),
            ),
        ),
        ModelScript(
            "BERT-21B",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=4.0),
                ArrivalSegment(
                    "burst", start=30.0, duration=20.0, qps=6.0, cv=8.0
                ),
            ),
        ),
        ModelScript(
            "WHISPER-9B",
            segments=(
                ArrivalSegment(
                    "burst", start=20.0, duration=30.0, qps=5.0, cv=4.0
                ),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=15.0, action="reclaim"),
        ScenarioEvent(at=35.0, action="reclaim", count=2),
    ),
    admission_cap=256,
    # The late reclaim can force a genuinely cold redeploy (the warm cache
    # no longer credits bytes a cancelled load never transferred), so the
    # grace window must cover a full cold reload plus the backlog drain.
    drain=75.0,
)

TENANT_CHURN = ScenarioSpec(
    name="tenant-churn",
    description=(
        "Tenants arrive and depart mid-run: capacity must follow each "
        "model's traffic up and then back to the always-on floor."
    ),
    cluster="small",
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=6.0),
            ),
        ),
        ModelScript(
            "WHISPER-9B",
            segments=(  # arrives late, departs early
                ArrivalSegment("steady", start=15.0, duration=25.0, qps=5.0, cv=2.0),
            ),
        ),
        ModelScript(
            "BERT-21B",
            segments=(  # arrives as WHISPER departs
                ArrivalSegment("steady", start=35.0, duration=25.0, qps=4.0),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=20.0, action="scale_out", model="WHISPER-9B"),
        ScenarioEvent(at=45.0, action="drain", model="WHISPER-9B"),
        ScenarioEvent(at=50.0, action="scale_out", model="BERT-21B"),
    ),
    admission_cap=128,
)

RECLAMATION_STORM = ScenarioSpec(
    name="reclamation-storm",
    description=(
        "The platform reclaims serving GPUs every few seconds under "
        "steady traffic — the §7 immediate-reallocation regime at its "
        "most hostile."
    ),
    cluster="small",
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=50.0, qps=8.0, cv=2.0),
            ),
        ),
    ),
    events=tuple(
        ScenarioEvent(at=float(t), action="reclaim")
        for t in (10, 14, 18, 22, 26, 30, 34)
    ),
    downtime_mean=6.0,
    admission_cap=128,
)

FAILURE_CASCADE = ScenarioSpec(
    name="failure-cascade",
    description=(
        "Whole servers fail in sequence on the paper cluster; both "
        "tenants must recover between shocks."
    ),
    cluster="paper",
    settle=90.0,
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=8.0),
            ),
        ),
        ModelScript(
            "BERT-21B",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=4.0, cv=2.0),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=15.0, action="fail_server"),
        ScenarioEvent(at=30.0, action="fail_server"),
        ScenarioEvent(at=45.0, action="reclaim", count=2),
    ),
    downtime_mean=12.0,
    admission_cap=256,
)

COLDSTART_WAVE = ScenarioSpec(
    name="coldstart-wave",
    description=(
        "A nearly idle deployment (one always-on replica) hit by a "
        "sudden wave — the serverless cold-start path end-to-end."
    ),
    cluster="small",
    initial_replicas=1,
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=10.0, qps=1.0),
                ArrivalSegment(
                    "burst", start=10.0, duration=30.0, qps=14.0, cv=4.0
                ),
                ArrivalSegment("steady", start=40.0, duration=15.0, qps=2.0),
            ),
        ),
    ),
    events=(ScenarioEvent(at=12.0, action="scale_out"),),
    admission_cap=96,
)

TRACE_REPLAY = ScenarioSpec(
    name="trace-replay",
    description=(
        "Two tenants replay compressed synthetic production traces "
        "(diurnal swing + burst episodes) while the operator forces "
        "granularity refactors."
    ),
    cluster="small",
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment("replay", start=0.0, duration=60.0, qps=6.0),
            ),
        ),
        ModelScript(
            "WHISPER-9B",
            segments=(
                ArrivalSegment("replay", start=5.0, duration=50.0, qps=3.0),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=20.0, action="refactor", model="LLAMA2-7B", target_stages=8),
        ScenarioEvent(at=40.0, action="refactor", model="LLAMA2-7B", target_stages=2),
    ),
    admission_cap=128,
)

DIURNAL_DRIFT = ScenarioSpec(
    name="diurnal-drift",
    description=(
        "A compressed two-'day' diurnal cycle against a bursty "
        "co-tenant: slow swings layered with short bursts (Fig. 1's "
        "multi-window CV effect as a live workload)."
    ),
    cluster="small",
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment(
                    "diurnal", start=0.0, duration=60.0, qps=7.0,
                    amplitude=0.7, period=30.0,
                ),
            ),
        ),
        ModelScript(
            "BERT-21B",
            segments=(
                ArrivalSegment(
                    "burst", start=10.0, duration=40.0, qps=4.0, cv=4.0
                ),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=25.0, action="drain"),
        ScenarioEvent(at=35.0, action="reclaim"),
    ),
    admission_cap=128,
)


PRIORITY_INVERSION = ScenarioSpec(
    name="priority-inversion",
    description=(
        "An interactive tenant and a batch backlog collide during a "
        "reclamation storm: without per-tenant QoS the shared gate sheds "
        "both classes alike and batch pressure starves the latency-"
        "sensitive tenant of scarce GPUs (run `repro qos` for the "
        "control-plane on/off comparison)."
    ),
    cluster="small",
    models=(
        ModelScript(
            "LLAMA2-7B",
            slo_class="interactive",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=6.0, cv=2.0),
            ),
        ),
        ModelScript(
            "BERT-21B",
            slo_class="batch",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=10.0),
                ArrivalSegment(  # the backlog wave that inverts priorities
                    "burst", start=10.0, duration=30.0, qps=8.0, cv=6.0
                ),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=15.0, action="reclaim"),
        ScenarioEvent(at=22.0, action="reclaim"),
        ScenarioEvent(at=30.0, action="reclaim", count=2),
        ScenarioEvent(at=40.0, action="reclaim"),
    ),
    downtime_mean=8.0,
    admission_cap=64,
)

GPU_CONTENTION = ScenarioSpec(
    name="gpu-contention",
    description=(
        "An interactive and a batch tenant race for the scarce fragments "
        "a reclamation cycle hands back: the batch tenant's backlog keeps "
        "its autoscaler hungry, so without class-aware GPU arbitration "
        "its deploys win the freed GPUs and the interactive burst queues "
        "behind cold starts (run `repro qos --scenario gpu-contention` "
        "for the on/off comparison; the batch tenant also carries a "
        "fleet-share cap)."
    ),
    cluster="small",
    initial_replicas=1,
    models=(
        ModelScript(
            "LLAMA2-7B",
            slo_class="interactive",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=4.0, cv=2.0),
                ArrivalSegment(  # the burst that needs the freed fragment
                    "burst", start=14.0, duration=34.0, qps=9.0, cv=6.0
                ),
            ),
        ),
        ModelScript(
            "BERT-21B",
            slo_class="batch",
            share_cap=0.5,
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=10.0),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=10.0, action="reclaim"),
        ScenarioEvent(at=16.0, action="reclaim", count=2),
        ScenarioEvent(at=26.0, action="reclaim"),
        ScenarioEvent(at=36.0, action="reclaim", count=2),
    ),
    downtime_mean=7.0,
    admission_cap=96,
)

ELASTIC_CONTRACTS = ScenarioSpec(
    name="elastic-contracts",
    description=(
        "Elastic share contracts under a refactor in flight: an "
        "interactive tenant's burst outgrows its own fleet-share cap and "
        "borrows the capped batch tenant's idle headroom (reclaimed on "
        "demand when the lender's backlog returns), while FlexPipe's "
        "executor switches to live in-place transitions and preemptible "
        "prepared claims (run `repro qos --scenario elastic-contracts` "
        "for the on/off comparison)."
    ),
    cluster="small",
    initial_replicas=1,
    elastic=True,
    models=(
        ModelScript(
            "LLAMA2-7B",
            slo_class="interactive",
            share_cap=0.10,
            segments=(
                ArrivalSegment("steady", start=0.0, duration=60.0, qps=4.0, cv=2.0),
                ArrivalSegment(  # the burst that overflows the cap
                    "burst", start=14.0, duration=34.0, qps=9.0, cv=6.0
                ),
            ),
        ),
        ModelScript(
            "BERT-21B",
            slo_class="batch",
            share_cap=0.45,
            segments=(
                # The lender's day: busy, then idle through the
                # interactive burst (the headroom being borrowed), then
                # back — its returning backlog is what forces the
                # bounded-latency reclaim of the borrowed bytes.
                ArrivalSegment("steady", start=0.0, duration=14.0, qps=10.0),
                ArrivalSegment("steady", start=14.0, duration=32.0, qps=1.5),
                ArrivalSegment("steady", start=46.0, duration=14.0, qps=9.0),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=10.0, action="reclaim"),
        # Refactors in flight while the burst borrows: the executor's
        # in-place path must resize live stages as shares stretch.
        ScenarioEvent(at=16.0, action="refactor", model="LLAMA2-7B"),
        ScenarioEvent(at=18.0, action="reclaim", count=2),
        ScenarioEvent(at=26.0, action="reclaim"),
        ScenarioEvent(at=30.0, action="refactor", model="LLAMA2-7B"),
        ScenarioEvent(at=36.0, action="reclaim", count=2),
    ),
    downtime_mean=5.0,
    admission_cap=96,
)

def _coldstart_fleet() -> tuple[ModelScript, ...]:
    """The 108-tenant serverless fleet of ``coldstart-economy``.

    * 8 *hot* tenants (10 GB, ``FLEET-<i>-10g``) offering three 15 s waves
      separated by long idle gaps.  With scale-to-zero each gap releases
      the tenant's replicas, so every later wave restarts from the
      parameter cache — or from storage, if the cache evicted the tenant.
      Each completed deploy/teardown cycle *touches* the tenant's cached
      ranges, so by the third wave the hot set carries real frequency.
    * 100 one-shot *tail* tenants (12 GB, ``FLEET-<100+j>-12g``) on a
      uniform stagger — the cache sweepers.  Their teardowns land between
      the hot tenants' second and third waves, flushing more bytes
      through each server's (deliberately small) cache tiers than the
      tiers can hold: recency-only LRU evicts the hot set and the third
      wave restarts cold, while cost-aware GDSF keeps the frequently
      re-used checkpoints resident and the third wave stays warm.

    Sizes are pinned in the model names, keeping the fleet identical
    across processes and runs.
    """
    hot = tuple(
        ModelScript(
            f"FLEET-{i}-10g",
            segments=tuple(
                ArrivalSegment("steady", start=start, duration=15.0, qps=1.5)
                for start in (0.0, 180.0, 375.0)
            ),
        )
        for i in range(8)
    )
    # The first idle gap is churn-free (wave two restarts warm under any
    # policy, and the hot set earns its reference frequency); the sweep
    # then runs through the second gap at a rate calibrated so recency
    # alone cannot protect the hot set but frequency-weighted priorities
    # can.
    tail = tuple(
        ModelScript(
            f"FLEET-{100 + j}-12g",
            segments=(
                ArrivalSegment(
                    "steady", start=210.0 + 9.0 * j, duration=15.0, qps=0.6
                ),
            ),
        )
        for j in range(100)
    )
    return hot + tail


COLDSTART_ECONOMY = ScenarioSpec(
    name="coldstart-economy",
    description=(
        "A 108-model serverless fleet under scale-to-zero churn: hot "
        "tenants return for three waves across idle gaps while one-shot "
        "tail tenants sweep the deliberately small parameter-cache tiers "
        "between waves, so eviction policy (LRU vs cost-aware GDSF) and "
        "pipelined stage loading decide the hot tenants' p99 "
        "time-to-first-token (run `repro coldstart` for the policy "
        "comparison over identical traffic)."
    ),
    cluster="small",
    settle=5.0,
    initial_replicas=0,
    models=_coldstart_fleet(),
    cache_policy="gdsf",
    pipelined_loading=True,
    scale_to_zero=True,
    idle_window=8.0,
    # Host tier fits the hot set (~10 GB/server) with a little slack but
    # not the sweep; the narrowed storage link is what cold restarts
    # contend on (and what warm restarts get to skip).
    host_cache_gb=20.0,
    ssd_cache_gb=8.0,
    storage_gbps=5.0,
    admission_cap=512,
    drain=40.0,
)

AZURE_REPLAY = ScenarioSpec(
    name="azure-replay",
    description=(
        "Two tenants replay the busiest apps of an Azure-Functions-style "
        "bundle (the `repro trace synth` schema: Zipf apps, diurnal "
        "envelope, burst minutes) compressed into the traffic window, "
        "while the platform reclaims GPUs."
    ),
    cluster="small",
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment("azure", start=0.0, duration=60.0, qps=6.0),
            ),
        ),
        ModelScript(
            "WHISPER-9B",
            segments=(
                ArrivalSegment("azure", start=10.0, duration=45.0, qps=3.0),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=20.0, action="reclaim"),
        ScenarioEvent(at=35.0, action="scale_out", model="LLAMA2-7B"),
    ),
    admission_cap=128,
)


def _azure2019_fleet(
    source: Azure2019Source, duration: float
) -> tuple[ModelScript, ...]:
    """One tenant per top-K function of the 2019-format fixture window.

    The whole trace window is time-compressed onto ``duration`` seconds
    of scenario traffic; each tenant's ``qps`` carries its function's
    total invocation volume so the sharding partitioner's traffic
    weights (and thus server slices) follow the trace.  The zoo mapping
    is the seeded volume-tiered assignment of
    :func:`repro.workloads.azure2019.map_functions_to_zoo` — heavy
    functions land on small hot models, the long tail on large cold
    ones.
    """
    window = load_window_cached(source)
    scripts = []
    for assignment in map_functions_to_zoo(window):
        fn = window.function(assignment.key)
        scripts.append(
            ModelScript(
                assignment.model,
                segments=(
                    ArrivalSegment(
                        "azure2019",
                        start=0.0,
                        duration=duration,
                        qps=fn.total / duration,
                        trace_function=assignment.key,
                    ),
                ),
                output_median=assignment.output_median,
            )
        )
    return tuple(scripts)


_AZURE_2019_SOURCE = Azure2019Source(
    dataset_dir="",  # empty = the bundled deterministic synthetic fixture
    start_minute=480,
    end_minute=570,
    top_k=220,
    zoo_seed=0,
)

AZURE_REPLAY_2019 = ScenarioSpec(
    name="azure-replay-2019",
    description=(
        "Production-scale serverless replay: the top 220 functions of a "
        "90-minute AzureFunctionsDataset2019-format window (the bundled "
        "synthetic fixture; point `azure2019.dataset_dir` at the real "
        "dataset to replay it) stream through scale-to-zero tenants, "
        "with per-minute counts minted lazily so the window never "
        "materializes a request list.  Traffic weights carry trace "
        "volume, so the sharded driver packs tenants onto servers the "
        "way the trace loads them."
    ),
    cluster="paper",
    settle=5.0,
    initial_replicas=0,
    models=_azure2019_fleet(_AZURE_2019_SOURCE, duration=60.0),
    azure2019=_AZURE_2019_SOURCE,
    scale_to_zero=True,
    idle_window=8.0,
    # Time compression lands hundreds of cold starts in the same few
    # seconds; a production serverless platform feeds them from a
    # parallel blob store, not one disk.  On the default 32 GB/s link
    # the ~1.5 TB fleet checkpoint convoy would outlive the window with
    # every load fair-sharing the link and none finishing.
    storage_gbps=256.0,
    admission_cap=1024,
    events=(ScenarioEvent(at=25.0, action="reclaim"),),
    drain=30.0,
)


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        PAPER_MULTI_BURST,
        TENANT_CHURN,
        RECLAMATION_STORM,
        FAILURE_CASCADE,
        COLDSTART_WAVE,
        TRACE_REPLAY,
        DIURNAL_DRIFT,
        PRIORITY_INVERSION,
        GPU_CONTENTION,
        ELASTIC_CONTRACTS,
        COLDSTART_ECONOMY,
        AZURE_REPLAY,
        AZURE_REPLAY_2019,
    )
}


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a named scenario; raises ``KeyError`` with the catalog."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
