"""Tenant- and server-affine shard partitioning for scenario runs.

``repro scenario run --shards N`` routes each :class:`ScenarioCase`
through :func:`run_sharded_case`: the fleet is partitioned into shard
*groups* — one per tenant, each owning a disjoint server slice of the
spec's named topology sized to its traffic and model footprint — and
every group runs its own :class:`~repro.scenarios.driver.ScenarioDriver`
(own :class:`~repro.simulation.engine.Simulator`, own seeded streams, own
serving system) under a
:class:`~repro.simulation.sharding.ShardCoordinator`.

Two properties make the decomposition sound:

* **The partition is a pure function of the spec**, never of the worker
  count: ``--shards 2`` and ``--shards 4`` produce byte-identical
  reports (the worker count only sets how many processes host the
  groups).
* **Tenant affinity keeps every deploy's replicas co-sharded**: a
  tenant's routers, replicas, migrations and DataMover transfers all
  live inside one shard, so scenario shards exchange no cross-shard
  messages and the coordinator collapses the run into one conservative
  window.  (The generic message protocol — finite lookahead, windowed
  delivery — is exercised directly by the simulation-layer tests.)

Systems that cannot partition **fall back to a single shard** with the
reason recorded on the report:

* the QoS control plane is fleet-global (share caps and weighted-fair
  shedding are defined against *total* fleet memory/backlog);
* a single-tenant fleet has nothing to split;
* clusters too small to give every group a meaningful server slice.

The auditor runs unchanged inside every shard (mid-run after each
scripted event, the full invariant set at quiesce); the merge layer adds
one *global* check — cross-shard request conservation at quiesce.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.cluster import server_placements
from repro.cluster.gpu import GPUSpec
from repro.metrics.latency import LatencyBreakdown, percentiles
from repro.metrics.stalls import detect_stalls, recovery_times
from repro.models.zoo import get_model
from repro.metrics.collector import RunSummary
from repro.scenarios.driver import (
    ScenarioCase,
    ScenarioDriver,
    ScenarioReport,
    TenantQoS,
)
from repro.scenarios.spec import ScenarioSpec
from repro.simulation.sharding import ShardCoordinator, ShardProgram
from repro.validation.auditor import Violation

# A group must own at least this many servers to be worth isolating
# (thinner slices cannot absorb a scripted reclaim/failure without the
# run degenerating); below it the partitioner falls back to one shard.
MIN_SERVERS_PER_GROUP = 3


# ----------------------------------------------------------------------
# The partition plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardGroup:
    """One shard: a tenant subset bound to a server slice and a seed."""

    index: int
    models: tuple[str, ...]
    spec: ScenarioSpec  # the per-shard sub-spec (padded to parent duration)
    server_indices: tuple[int, ...]
    seed: int


@dataclass(frozen=True)
class ShardPlan:
    """The full decomposition of one scenario (pure data)."""

    scenario: str
    groups: tuple[ShardGroup, ...]
    fallback: str = ""  # non-empty: why the scenario runs single-shard

    @property
    def sharded(self) -> bool:
        return len(self.groups) > 1


def _traffic_weight(script) -> float:
    """A tenant's expected request volume (the server-slice sizing signal)."""
    return sum(s.qps * s.duration for s in script.segments)


def _min_gpus(script) -> int:
    """Fewest GPUs that can hold one replica of the tenant's model."""
    spec = get_model(script.model)
    usable = GPUSpec().memory * 0.9  # headroom for KV cache / runtime
    return max(int(math.ceil(spec.checkpoint_bytes / usable)), 1)


def _shard_seed(seed: int, models: tuple[str, ...]) -> int:
    """Stable per-group seed: a function of the case seed and the group's
    tenant set only (never of the worker count or group order)."""
    tag = ",".join(models)
    return (seed * 1_000_003 + zlib.crc32(tag.encode())) % (2**31)


def _assign_servers(
    placements, weights: list[float], floors: list[int]
) -> list[tuple[int, ...]]:
    """Deal servers to groups: floors first, then largest GPU deficit.

    Deterministic greedy — servers in (gpu_count desc, index) order, ties
    between groups broken by group index — so the slices are a pure
    function of (topology, weights, floors).
    """
    k = len(weights)
    total_gpus = sum(p.n_gpus for p in placements)
    wsum = sum(weights) or 1.0
    targets = [total_gpus * w / wsum for w in weights]
    got = [0] * k
    out: list[list[int]] = [[] for _ in range(k)]
    for placement in sorted(placements, key=lambda p: (-p.n_gpus, p.index)):
        under_floor = [
            (floors[g] - got[g], -g) for g in range(k) if got[g] < floors[g]
        ]
        if under_floor:
            pick = -max(under_floor)[1]
        else:
            pick = max(range(k), key=lambda g: (targets[g] - got[g], -g))
        out[pick].append(placement.index)
        got[pick] += placement.n_gpus
    return [tuple(sorted(indices)) for indices in out]


def _pack_tenants(weights: list[float], n_groups: int) -> list[list[int]]:
    """Deal tenant indices into ``n_groups`` balanced groups (LPT greedy).

    Tenants in (traffic weight desc, spec index) order each join the
    currently lightest group (ties to the lowest group index) — the
    classic longest-processing-time heuristic, and a pure function of
    the weights, so the grouping is identical in every process.  With
    ``n_groups == len(weights)`` this degenerates to the historical
    one-tenant-per-group layout in spec order.
    """
    k = len(weights)
    if n_groups == k:
        return [[i] for i in range(k)]
    membership: list[list[int]] = [[] for _ in range(n_groups)]
    load = [0.0] * n_groups
    for i in sorted(range(k), key=lambda i: (-weights[i], i)):
        g = min(range(n_groups), key=lambda j: (load[j], j))
        membership[g].append(i)
        load[g] += weights[i]
    return [sorted(members) for members in membership]


def partition_scenario(spec: ScenarioSpec, seed: int = 0) -> ShardPlan:
    """Decompose a scenario into tenant-affine shard groups.

    One group per tenant when the cluster can give every tenant a
    ``MIN_SERVERS_PER_GROUP`` slice (the historical layout).  Fleets too
    large for that — the production-scale trace replays, hundreds of
    tenants on tens of servers — *pack* tenants into as many groups as
    the cluster supports, balanced by traffic weight (for azure2019
    tenants the segment ``qps`` carries the trace's invocation volume,
    so slices follow the trace).  Packing only engages when every group
    still multiplexes at least two tenants; awkward in-between fleets
    keep the historical single-shard fallback.

    Returns a single-group plan (with ``fallback`` set) when the
    scenario cannot be partitioned; callers then run the monolithic
    driver.
    """
    if spec.qos_enabled:
        return _fallback(spec, seed, "qos control plane is fleet-global")
    if len(spec.models) < 2:
        return _fallback(spec, seed, "single-tenant fleet")
    placements = server_placements(spec.cluster)
    k = len(spec.models)
    max_groups = len(placements) // MIN_SERVERS_PER_GROUP
    if len(placements) >= MIN_SERVERS_PER_GROUP * k:
        n_groups = k
    elif max_groups >= 2 and k >= 2 * max_groups:
        n_groups = max_groups
    else:
        return _fallback(
            spec,
            seed,
            f"cluster too small to split ({len(placements)} servers "
            f"for {k} tenants)",
        )

    weights = [_traffic_weight(m) for m in spec.models]
    membership = _pack_tenants(weights, n_groups)
    group_weights = [sum(weights[i] for i in members) for members in membership]
    # A group's floor holds the largest single replica among its
    # tenants; the weight-proportional deal covers the rest.
    group_floors = [
        max(_min_gpus(spec.models[i]) for i in members)
        for members in membership
    ]
    slices = _assign_servers(placements, group_weights, group_floors)

    # Scripted events follow their target tenant; fleet-wide events
    # (model=None) deal round-robin over groups by script position — a
    # function of the spec alone, so the assignment is worker-invariant.
    events_by_group: list[list] = [[] for _ in range(n_groups)]
    model_group = {
        spec.models[i].model: g
        for g, members in enumerate(membership)
        for i in members
    }
    for i, event in enumerate(spec.events):
        g = (
            model_group[event.model]
            if event.model is not None
            else i % n_groups
        )
        events_by_group[g].append(event)

    duration = spec.duration
    groups = []
    for g, members in enumerate(membership):
        scripts = tuple(spec.models[i] for i in members)
        names = tuple(s.model for s in scripts)
        # Each group gets a ceil-proportional slice of the backlog cap,
        # so the summed cap is never below the parent's.
        cap = (
            int(math.ceil(spec.admission_cap * len(members) / k))
            if spec.admission_cap
            else 0
        )
        sub = replace(
            spec,
            models=scripts,
            events=tuple(events_by_group[g]),
            admission_cap=cap,
            min_duration=duration,
        )
        groups.append(
            ShardGroup(
                index=g,
                models=names,
                spec=sub,
                server_indices=slices[g],
                seed=_shard_seed(seed, names),
            )
        )
    return ShardPlan(scenario=spec.name, groups=tuple(groups))


def _fallback(spec: ScenarioSpec, seed: int, reason: str) -> ShardPlan:
    group = ShardGroup(
        index=0,
        models=spec.model_names,
        spec=spec,
        server_indices=tuple(
            p.index for p in server_placements(spec.cluster)
        ),
        seed=seed,
    )
    return ShardPlan(scenario=spec.name, groups=(group,), fallback=reason)


# ----------------------------------------------------------------------
# The shard program (one driver per group)
# ----------------------------------------------------------------------
@dataclass
class ShardSlice:
    """One shard's picklable contribution to the merged report.

    Carries the shard's own :class:`ScenarioReport` plus the *raw* merge
    inputs (epoch-filtered latency/queue/utilization populations), so the
    merged aggregate is computed exactly — not approximated from
    per-shard summaries.
    """

    index: int
    models: tuple[str, ...]
    report: ScenarioReport
    engine_events: int = 0
    latencies: list[float] = field(default_factory=list)
    queue_times: list[float] = field(default_factory=list)
    exec_times: list[float] = field(default_factory=list)
    comm_times: list[float] = field(default_factory=list)
    prefill_latencies: list[float] = field(default_factory=list)
    qlen_samples: list[int] = field(default_factory=list)
    recoveries: list[float] = field(default_factory=list)
    gpu_busy_seconds: float = 0.0
    gpu_holding_integral: float = 0.0
    init_times: list[float] = field(default_factory=list)
    wait_times: list[float] = field(default_factory=list)
    warm_starts: int = 0
    refactor_count: int = 0
    resident: int = 0


class ScenarioShardProgram(ShardProgram):
    """Wraps one phased :class:`ScenarioDriver` as a coordinator shard.

    Tenant-affine scenario shards exchange no messages, so the lookahead
    promise is unbounded and the coordinator runs a single window; the
    program still advances through the driver's internal boundaries
    (settle -> epoch hooks) exactly as the monolithic path does.
    """

    lookahead = math.inf

    def __init__(self, group: ShardGroup, system: str, trace: bool = False):
        super().__init__()
        self.group = group
        self.driver = ScenarioDriver(
            ScenarioCase(group.spec, system, group.seed, trace=trace),
            server_indices=group.server_indices,
        )

    def setup(self) -> None:
        self.driver.start()

    def advance(self, until: float) -> None:
        self.driver.advance(until)

    def next_event_time(self) -> float | None:
        return self.driver.sim.peek()

    def events_processed(self) -> int:
        return self.driver.sim.events_processed

    def finish(self) -> ShardSlice:
        report = self.driver.finish()
        return _build_slice(self.group, self.driver, report)


def _build_slice(
    group: ShardGroup, driver: ScenarioDriver, report: ScenarioReport
) -> ShardSlice:
    epoch = driver.epoch
    metrics = driver.system.metrics
    done = [
        r
        for r in metrics.records
        if r.completed and r.arrival_time >= epoch
    ]
    episodes = detect_stalls(
        [r.completion_time for r in done], [r.latency for r in done]
    )
    # Epoch-filtered like the collector's summarize: pre-epoch warm-up
    # deploys/refactors stay out of the merged warm-start accounting.
    scale_outs = [
        e
        for e in metrics.events
        if e.kind == "scale_out" and e.time >= epoch
    ]
    system = driver.system
    # Requests still parked in an accounted queue at quiesce (the same
    # residency the auditor's request-conservation invariant credits):
    # baselines that shed load by reclamation legitimately strand work in
    # router queues, and the cross-shard balance must not count it lost.
    resident = sum(
        len(r.pending) for r in system.all_routers().values()
    ) + sum(
        len(rep.batcher) + rep.inflight_requests
        for rep in system.all_replicas()
    )
    return ShardSlice(
        index=group.index,
        models=group.models,
        report=report,
        engine_events=driver.sim.events_processed,
        latencies=[r.latency for r in done],
        queue_times=[r.queue_time for r in done],
        exec_times=[r.exec_time for r in done],
        comm_times=[r.comm_time for r in done],
        prefill_latencies=[
            r.prefill_latency for r in done if r.prefill_latency is not None
        ],
        qlen_samples=[q for t, q in metrics.queue_samples if t >= epoch],
        recoveries=list(recovery_times(episodes)),
        gpu_busy_seconds=sum(
            g.busy_seconds for g in driver.system.ctx.cluster.gpus
        ),
        gpu_holding_integral=driver.system._gpu_holding_integral,
        init_times=[e.init_time for e in scale_outs],
        wait_times=[e.wait_time for e in scale_outs],
        warm_starts=sum(1 for e in scale_outs if e.warm),
        refactor_count=len(
            [
                e
                for e in metrics.events
                if e.kind == "refactor" and e.time >= epoch
            ]
        ),
        resident=resident,
    )


# ----------------------------------------------------------------------
# Case execution + merge
# ----------------------------------------------------------------------
def run_sharded_case(case: ScenarioCase) -> ScenarioReport:
    """Run one case through the shard partitioner and merge the results.

    ``case.shards`` is the worker-process budget; the group decomposition
    comes from :func:`partition_scenario` and is identical for every
    worker count, so reports at ``--shards 1/2/4`` are byte-identical.
    """
    plan = partition_scenario(case.spec, case.seed)
    if not plan.sharded:
        report = ScenarioDriver(
            ScenarioCase(case.spec, case.system, case.seed, trace=case.trace)
        ).run()
        report.shards = 1
        report.shard_fallback = plan.fallback
        return report
    coordinator = ShardCoordinator(
        [
            (ScenarioShardProgram, (group, case.system, case.trace))
            for group in plan.groups
        ],
        horizon=case.spec.horizon,
        workers=max(case.shards, 1),
    )
    slices = coordinator.run()
    return merge_shard_reports(case, plan, slices)


def merge_shard_reports(
    case: ScenarioCase, plan: ShardPlan, slices: list[ShardSlice]
) -> ScenarioReport:
    """Fold per-shard slices into one fleet-level :class:`ScenarioReport`.

    Population statistics (latency percentiles, queue-time means, queue
    lengths, stall recoveries) are recomputed over the *concatenated*
    per-shard populations — shard-index order, so the result is a pure
    function of the plan.  Counters sum; utilization merges via the
    summed busy-seconds and GPU-holding integrals, exactly as the
    monolithic ``summarize`` computes them.
    """
    spec = case.spec
    slices = sorted(slices, key=lambda s: s.index)
    reports = [s.report for s in slices]
    measured = max(spec.duration, 1.0) + spec.drain

    violations: list[Violation] = []
    for s in slices:
        for v in s.report.violations:
            violations.append(
                Violation(v.invariant, f"[shard {s.index}] {v.detail}")
            )
    offered = sum(r.offered for r in reports)
    completed = sum(r.completed for r in reports)
    shed = sum(r.shed for r in reports)
    resident = sum(s.resident for s in slices)
    # The one invariant only the merge layer can see: every generated
    # request is accounted for *across* shards at quiesce — completed
    # exactly once, shed at a gate, or still resident in an accounted
    # queue (the same balance the per-shard auditor enforces locally).
    if offered != completed + shed + resident:
        violations.append(
            Violation(
                "cross-shard-conservation",
                f"offered {offered} != completed {completed} + shed {shed} "
                f"+ resident {resident} across {len(slices)} shards "
                f"at quiesce",
            )
        )

    events: dict[str, int] = {}
    for r in reports:
        for key, count in r.events.items():
            events[key] = events.get(key, 0) + count

    per_model: dict[str, RunSummary] = {}
    tenants: dict[str, TenantQoS] = {}
    for name in spec.model_names:
        for r in reports:
            if name in r.per_model:
                per_model[name] = r.per_model[name]
                tenants[name] = r.tenants[name]

    # Traced runs: merge the per-shard span trees and recorder events,
    # re-tagging each row with its shard of origin (provenance survives
    # the merge; ordering is a pure function of the plan).
    traces: list = []
    fleet_events: list = []
    if any(s.report.traces or s.report.fleet_events for s in slices):
        from repro.observability import merge_shard_traces

        traces, fleet_events = merge_shard_traces(
            [(s.index, s.report.traces, s.report.fleet_events) for s in slices]
        )

    return ScenarioReport(
        scenario=spec.name,
        system=case.system,
        seed=case.seed,
        violations=violations,
        aggregate=_merge_aggregate(case.system, slices, measured),
        per_model=per_model,
        offered=offered,
        completed=completed,
        shed=shed,
        events=dict(sorted(events.items())),
        horizon=spec.horizon,
        qos_enabled=spec.qos_enabled,
        tenants=tenants,
        shards=len(slices),
        shard_fallback=plan.fallback,
        engine_events=sum(s.engine_events for s in slices),
        traces=traces,
        fleet_events=fleet_events,
    )


def _concat(slices: list[ShardSlice], attr: str) -> np.ndarray:
    values = [v for s in slices for v in getattr(s, attr)]
    return np.array(values) if values else np.array([])


def _merge_aggregate(
    system: str, slices: list[ShardSlice], measured: float
) -> RunSummary:
    aggregates = [s.report.aggregate for s in slices]
    offered = sum(a.offered for a in aggregates)
    completed = sum(a.completed for a in aggregates)
    goodput = sum(a.goodput for a in aggregates)
    latencies = _concat(slices, "latencies")
    queue = _concat(slices, "queue_times")
    execution = _concat(slices, "exec_times")
    comm = _concat(slices, "comm_times")
    prefill = _concat(slices, "prefill_latencies")
    qlens = _concat(slices, "qlen_samples")
    recoveries = [v for s in slices for v in s.recoveries]
    init_times = [v for s in slices for v in s.init_times]
    wait_times = [v for s in slices for v in s.wait_times]
    scale_out_count = len(init_times)
    warm_starts = sum(s.warm_starts for s in slices)
    busy = sum(s.gpu_busy_seconds for s in slices)
    holding = sum(s.gpu_holding_integral for s in slices)
    avg_gpus = holding / measured if measured > 0 else 0.0
    gpus_used = max(round(avg_gpus), 1)
    denominator = gpus_used * measured
    return RunSummary(
        system=system,
        duration=measured,
        offered=offered,
        completed=completed,
        goodput=goodput,
        goodput_rate=goodput / offered if offered else 0.0,
        breakdown=LatencyBreakdown(
            queue=float(queue.mean()) if queue.size else 0.0,
            execution=float(execution.mean()) if execution.size else 0.0,
            communication=float(comm.mean()) if comm.size else 0.0,
        ),
        latency_percentiles=percentiles(latencies),
        mean_latency=float(latencies.mean()) if latencies.size else 0.0,
        mean_prefill_latency=float(prefill.mean()) if prefill.size else 0.0,
        gpu_utilization=min(busy / denominator, 1.0) if denominator > 0 else 0.0,
        gpus_used=gpus_used,
        mean_queue_length=float(qlens.mean()) if qlens.size else 0.0,
        p95_queue_length=float(np.percentile(qlens, 95)) if qlens.size else 0.0,
        stall_cycle=float(np.mean(recoveries)) if recoveries else 0.0,
        median_recovery=float(np.median(recoveries)) if recoveries else 0.0,
        refactor_count=sum(s.refactor_count for s in slices),
        scale_out_count=scale_out_count,
        warm_start_rate=(
            warm_starts / scale_out_count if scale_out_count else 0.0
        ),
        mean_init_time=float(np.mean(init_times)) if init_times else 0.0,
        mean_alloc_wait=float(np.mean(wait_times)) if wait_times else 0.0,
    )
