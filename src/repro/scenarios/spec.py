"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a plain-data description of one multi-model
serving scenario on a fragmented cluster:

* the **cluster** (paper-scale or small, fragmentation on/off);
* a **fleet** of models, each with a *phased arrival script* — an ordered
  list of :class:`ArrivalSegment` (steady / burst / diurnal / replay)
  covering the tenant's lifetime, so tenants can arrive late and depart
  early (churn);
* a timed **event script** of platform/operator disturbances
  (:class:`ScenarioEvent`): GPU reclamation, whole-server failure,
  replica drain, forced refactor, forced scale-out.

Everything round-trips through ``dict``/JSON (:meth:`ScenarioSpec.to_dict`
/ :meth:`ScenarioSpec.from_dict`), so scenarios can live in files, CLI
arguments or test parametrisations, and every spec is hashable content
for the result cache.  The spec is *pure data*: compiling it onto a live
simulator is :mod:`repro.scenarios.driver`'s job.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace

from repro.models.zoo import get_model
from repro.qos.classes import SLO_CLASSES
from repro.scaling.warm_cache import CACHE_POLICIES
from repro.workloads.azure2019 import Azure2019Source

SEGMENT_KINDS = ("steady", "burst", "diurnal", "replay", "azure", "azure2019")
EVENT_ACTIONS = ("reclaim", "fail_server", "drain", "refactor", "scale_out")
CLUSTERS = ("paper", "small")
QOS_MODES = ("auto", "on", "off")


@dataclass(frozen=True)
class ArrivalSegment:
    """One phase of a tenant's arrival script.

    ``start`` is the offset (seconds) from the scenario's traffic epoch;
    the segment offers traffic over ``[start, start + duration)``.

    Kinds
    -----
    ``steady``
        Renewal arrivals at ``qps`` with inter-arrival ``cv`` (Poisson at
        cv=1, Gamma otherwise).
    ``burst``
        Sustained MMPP bursts (regime-switching) at mean ``qps``; ``cv``
        sets the burst intensity, ``burst_cycle`` the episode timescale.
    ``diurnal``
        Sinusoidally modulated Poisson: mean ``qps``, peak-to-mean swing
        ``amplitude``, full cycle ``period`` seconds (a compressed "day").
    ``replay``
        Replays a seeded synthetic production trace
        (:class:`~repro.workloads.traces.DiurnalTrace`) scaled to ``qps``
        mean rate; ``cv`` is ignored.
    ``azure``
        Replays an Azure-Functions-style trace bundle (the ``repro trace
        synth`` schema) through
        :class:`~repro.workloads.arrivals.ReplayArrivals`: the bundle's
        busiest app, time-compressed into the segment and rescaled to
        ``qps`` mean rate.  ``trace_file`` names a CSV written by
        ``repro trace synth`` (or the real dataset); empty synthesises a
        seeded bundle in memory.  ``cv`` is ignored.
    ``azure2019``
        Replays one function of the real AzureFunctionsDataset2019
        format through the streaming mint
        (:func:`~repro.workloads.azure2019.iter_minted_stamps` feeding a
        lazy :class:`~repro.workloads.arrivals.ReplayArrivals`).
        ``trace_function`` names the function (its owner/app/function
        hash key) inside the window described by the scenario's
        ``azure2019`` source block; the *whole* window maps onto the
        segment's ``[start, start + duration)``, so time compression
        (``--quick``) still replays every trace minute.  ``qps`` should
        carry the function's mean playback rate — it sizes shard slices
        and admission splits — and ``cv`` is ignored.

    ``slo_class`` optionally overrides the tenant's QoS class for this
    segment's requests (e.g. an interactive tenant running a batch
    backfill overnight); ``None`` inherits the model's class.
    """

    kind: str = "steady"
    start: float = 0.0
    duration: float = 30.0
    qps: float = 5.0
    cv: float = 1.0
    burst_cycle: float = 30.0  # burst: mean calm+burst episode cycle (s)
    amplitude: float = 0.6  # diurnal: peak swing as a fraction of qps
    period: float = 120.0  # diurnal: seconds per synthetic "day"
    trace_file: str = ""  # azure: CSV bundle path ("" = seeded synthetic)
    trace_function: str = ""  # azure2019: function key inside the window
    slo_class: str | None = None  # per-segment QoS class override

    def __post_init__(self) -> None:
        if self.kind not in SEGMENT_KINDS:
            raise ValueError(
                f"unknown segment kind {self.kind!r}; choose from {SEGMENT_KINDS}"
            )
        if self.duration <= 0:
            raise ValueError(f"segment duration must be positive: {self.duration}")
        if self.start < 0:
            raise ValueError(f"segment start cannot be negative: {self.start}")
        if self.qps <= 0:
            raise ValueError(f"segment qps must be positive: {self.qps}")
        if self.cv <= 0:
            raise ValueError(f"segment cv must be positive: {self.cv}")
        if self.kind == "burst" and self.cv <= 1.0:
            raise ValueError(
                f"burst segments need cv > 1 (the MMPP burst intensity), "
                f"got {self.cv}"
            )
        if not 0 <= self.amplitude < 1:
            raise ValueError(
                f"segment amplitude must be in [0,1): {self.amplitude}"
            )
        if self.period <= 0 or self.burst_cycle <= 0:
            raise ValueError(
                f"segment period/burst_cycle must be positive: "
                f"{self.period}/{self.burst_cycle}"
            )
        if self.trace_file and self.kind != "azure":
            raise ValueError(
                f"trace_file only applies to azure segments, not {self.kind!r}"
            )
        if self.trace_function and self.kind != "azure2019":
            raise ValueError(
                f"trace_function only applies to azure2019 segments, "
                f"not {self.kind!r}"
            )
        if self.kind == "azure2019" and not self.trace_function:
            raise ValueError(
                "azure2019 segments must name a trace_function "
                "(a HashOwner/HashApp/HashFunction key in the window)"
            )
        if self.slo_class is not None and self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"unknown SLO class {self.slo_class!r}; "
                f"available: {sorted(SLO_CLASSES)}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ModelScript:
    """One tenant: a model plus its phased arrival script.

    ``slo_class`` names the tenant's QoS class (``interactive`` /
    ``standard`` / ``batch`` / ``best_effort``); ``None`` keeps the
    historical unclassed behaviour where ``slo_latency`` alone defines
    the goodput deadline.  A classed tenant's requests carry the class
    and are judged against *its* latency target.

    ``share_cap`` caps the tenant's GPU footprint at a fraction of total
    fleet memory (enforced by the allocator while the QoS control plane
    runs); ``None`` leaves the tenant uncapped.
    """

    model: str
    segments: tuple[ArrivalSegment, ...] = (ArrivalSegment(),)
    prompt_median: int = 128
    output_median: int = 8
    slo_latency: float = 10.0
    slo_class: str | None = None
    share_cap: float | None = None

    def __post_init__(self) -> None:
        try:
            # Resolves zoo models and synthetic FLEET-* tenants alike.
            get_model(self.model)
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        if not self.segments:
            raise ValueError(f"{self.model}: at least one arrival segment required")
        if self.slo_class is not None and self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"{self.model}: unknown SLO class {self.slo_class!r}; "
                f"available: {sorted(SLO_CLASSES)}"
            )
        if self.share_cap is not None and not 0.0 < self.share_cap <= 1.0:
            raise ValueError(
                f"{self.model}: share_cap must be in (0, 1], got {self.share_cap}"
            )

    @property
    def horizon(self) -> float:
        """Offset at which this tenant's last segment ends."""
        return max(s.end for s in self.segments)

    @property
    def effective_slo(self) -> float:
        """The tenant's goodput deadline: class target when classed."""
        if self.slo_class is not None:
            return SLO_CLASSES[self.slo_class].latency_target
        return self.slo_latency


@dataclass(frozen=True)
class ScenarioEvent:
    """One scripted disturbance, fired ``at`` seconds after traffic starts.

    Actions
    -------
    ``reclaim``
        The platform reclaims ``count`` serving-biased victim GPUs
        (immediate cordon + drain, exponential downtime).
    ``fail_server``
        A whole server fails: every GPU of one (seeded-random) multi-GPU
        server is reclaimed at once.
    ``drain``
        The operator scales in one replica (of ``model``, when given).
    ``refactor``
        Force an inflight refactor of one active replica of ``model``
        toward ``target_stages`` (FlexPipe; a no-op on baselines).
    ``scale_out``
        Deploy one extra replica (of ``model``, random when omitted).
    """

    at: float
    action: str
    model: str | None = None
    count: int = 1
    target_stages: int | None = None

    def __post_init__(self) -> None:
        if self.action not in EVENT_ACTIONS:
            raise ValueError(
                f"unknown event action {self.action!r}; choose from {EVENT_ACTIONS}"
            )
        if self.at < 0:
            raise ValueError(f"event time cannot be negative: {self.at}")
        if self.count < 1:
            raise ValueError(f"event count must be >= 1: {self.count}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario."""

    name: str
    models: tuple[ModelScript, ...]
    events: tuple[ScenarioEvent, ...] = ()
    cluster: str = "small"
    fragmentation: bool = True
    settle: float = 60.0  # initial loads complete before the traffic epoch
    drain: float = 20.0  # grace window after the last segment ends
    admission_cap: int = 0  # backlog cap across all routers; 0 = no gate
    batch_cap: int = 16
    downtime_mean: float = 10.0  # reclamation downtime (s, exponential)
    initial_replicas: int | None = None  # None = the factory's provisioning
    # QoS control plane: "auto" enables it iff any tenant/segment declares
    # an SLO class, "on"/"off" force it.  Class annotations always shape
    # the *workload* (deadlines, request stamping); this switch only
    # gates the control plane (per-tenant admission, priority routing,
    # attainment-driven scaling) — so on-vs-off is an apples-to-apples
    # policy comparison over identical traffic.
    qos: str = "auto"
    # Elastic share contracts: per-tenant caps become borrowable — a
    # tenant may exceed its cap into another capped tenant's idle
    # headroom (reclaimed on demand), and FlexPipe's refactor executor
    # unlocks live in-place transitions.  Only meaningful with QoS on.
    elastic: bool = False
    # Cold-start economy knobs (applied to FlexPipe; baselines keep their
    # fixed behaviour so comparisons stay apples-to-apples):
    # warm-cache eviction policy ("lru" or cost-aware "gdsf"),
    cache_policy: str = "lru"
    # serve from the first loaded stages instead of load-then-activate,
    pipelined_loading: bool = False
    # autoscaler floor 0 — idle tenants release everything (serverless
    # churn; cold-start waves then hit the parameter cache),
    scale_to_zero: bool = False
    # and how long a replica idles before scale-in (None = system default).
    idle_window: float | None = None
    # Per-server cache-tier capacities in GiB (None = the cluster's
    # hardware defaults).  A hardware knob, applied to every system: the
    # coldstart-economy family shrinks both tiers so fleet churn actually
    # exercises eviction — at datacenter defaults (256 GiB host, 2 TiB
    # SSD) nothing ever leaves the cache and every policy looks alike.
    host_cache_gb: float | None = None
    ssd_cache_gb: float | None = None
    # Cluster checkpoint-storage bandwidth in GiB/s (None = hardware
    # default).  Cold loads contend on this shared link; narrowing it is
    # what makes pipelined loading's sequenced transfers matter — on an
    # unsaturated link parallel stage loads always finish first.
    storage_gbps: float | None = None
    # The AzureFunctionsDataset2019 trace source behind ``azure2019``
    # segments: dataset directory ("" = the bundled deterministic
    # fixture), absolute minute window, top-K selection and zoo-mapping
    # seed.  One block per scenario — every azure2019 segment replays a
    # function of this window.
    azure2019: Azure2019Source | None = None
    # Floor on the traffic window.  Shard partitioning replaces a parent
    # scenario with per-shard sub-specs whose own segments/events may end
    # earlier; padding every sub-spec to the parent's duration keeps the
    # measured windows (and therefore rates/utilization denominators)
    # identical across shards and equal to the unsharded run's.
    min_duration: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.qos not in QOS_MODES:
            raise ValueError(
                f"unknown qos mode {self.qos!r}; choose from {QOS_MODES}"
            )
        if self.cluster not in CLUSTERS:
            raise ValueError(
                f"unknown cluster {self.cluster!r}; choose from {CLUSTERS}"
            )
        if not self.models:
            raise ValueError(f"scenario {self.name!r} needs at least one model")
        names = [m.model for m in self.models]
        if len(names) != len(set(names)):
            raise ValueError(f"scenario {self.name!r} repeats a model: {names}")
        for event in self.events:
            if event.model is not None and event.model not in names:
                raise ValueError(
                    f"scenario {self.name!r} event at t={event.at:g} targets "
                    f"model {event.model!r} not in the fleet {names}"
                )
        if self.settle < 0 or self.drain < 0:
            raise ValueError("settle/drain cannot be negative")
        if self.min_duration < 0:
            raise ValueError("min_duration cannot be negative")
        if self.cache_policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r}; "
                f"choose from {CACHE_POLICIES}"
            )
        if self.idle_window is not None and self.idle_window <= 0:
            raise ValueError(f"idle_window must be positive: {self.idle_window}")
        for knob in ("host_cache_gb", "ssd_cache_gb", "storage_gbps"):
            value = getattr(self, knob)
            if value is not None and value <= 0:
                raise ValueError(f"{knob} must be positive: {value}")
        uses_2019 = any(
            s.kind == "azure2019" for m in self.models for s in m.segments
        )
        if uses_2019 and self.azure2019 is None:
            raise ValueError(
                f"scenario {self.name!r} has azure2019 segments but no "
                f"azure2019 trace-source block"
            )

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Traffic window: from the epoch to the last segment end or event."""
        horizon = max(m.horizon for m in self.models)
        if self.events:
            horizon = max(horizon, max(e.at for e in self.events) + 1.0)
        return max(horizon, self.min_duration)

    @property
    def horizon(self) -> float:
        """Total simulated time: settle + traffic + drain."""
        return self.settle + self.duration + self.drain

    @property
    def model_names(self) -> tuple[str, ...]:
        return tuple(m.model for m in self.models)

    @property
    def qos_enabled(self) -> bool:
        """Whether the QoS control plane runs for this scenario."""
        if self.qos == "on":
            return True
        if self.qos == "off":
            return False
        return any(
            m.slo_class is not None
            or m.share_cap is not None
            or any(s.slo_class is not None for s in m.segments)
            for m in self.models
        )

    # ------------------------------------------------------------------
    # Serialisation (dict / JSON round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = dict(data)
        data["models"] = tuple(
            ModelScript(
                **{
                    **m,
                    "segments": tuple(
                        ArrivalSegment(**s) for s in m.get("segments", ())
                    )
                    or (ArrivalSegment(),),
                }
            )
            for m in data.get("models", ())
        )
        data["events"] = tuple(
            ScenarioEvent(**e) for e in data.get("events", ())
        )
        source = data.get("azure2019")
        if isinstance(source, dict):
            data["azure2019"] = Azure2019Source(**source)
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def quick(
        self, factor: float = 3.0, *, min_segment: float = 5.0
    ) -> "ScenarioSpec":
        """A time-compressed variant for smoke tests (``--quick``).

        Every segment offset, segment duration and event time shrinks by
        one *uniform* effective factor — ``factor``, capped so the
        shortest segment stays at least ``min_segment`` seconds — and
        rates are kept.  Uniform scaling is what preserves the scenario's
        *shape*: relative phasing (sequential phases stay sequential,
        deliberate overlaps stay overlaps), burst-vs-trough structure and
        event ordering all survive, while wall-clock cost drops roughly
        linearly.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive: {factor}")
        shortest = min(
            s.duration for m in self.models for s in m.segments
        )
        effective = max(min(factor, shortest / min_segment), 1.0)

        def shrink_segment(s: ArrivalSegment) -> ArrivalSegment:
            return replace(
                s,
                start=s.start / effective,
                duration=s.duration / effective,
                burst_cycle=max(s.burst_cycle / effective, 5.0),
                period=max(s.period / effective, 10.0),
            )

        return replace(
            self,
            name=f"{self.name}-quick",
            models=tuple(
                replace(m, segments=tuple(shrink_segment(s) for s in m.segments))
                for m in self.models
            ),
            events=tuple(replace(e, at=e.at / effective) for e in self.events),
            settle=self.settle,  # load times do not compress
            drain=max(self.drain / effective, 10.0),
            # The scale-in window is part of the churn shape: keep its
            # ratio to the (compressed) wave spacing.
            idle_window=(
                None
                if self.idle_window is None
                else max(self.idle_window / effective, 2.0)
            ),
        )
