"""Declarative scenario engine for multi-model paper-cluster runs.

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and friends: pure
  data describing a cluster, a fleet of tenants with phased arrival
  scripts, and a timed disturbance script (JSON round-trippable);
* :mod:`repro.scenarios.driver` — compiles a spec onto the simulator,
  runs it against any registered system with the invariant auditor
  attached, and emits per-model + aggregate summaries;
* :mod:`repro.scenarios.library` — the named catalog
  (``repro scenario list`` / ``repro scenario run``).
"""

from repro.scenarios.driver import (
    ScenarioCase,
    ScenarioDriver,
    ScenarioReport,
    TenantQoS,
    run_scenario_case,
    run_scenarios,
)
from repro.scenarios.library import SCENARIOS, get_scenario
from repro.scenarios.spec import (
    ArrivalSegment,
    ModelScript,
    ScenarioEvent,
    ScenarioSpec,
)

__all__ = [
    "SCENARIOS",
    "ArrivalSegment",
    "ModelScript",
    "ScenarioCase",
    "ScenarioDriver",
    "ScenarioEvent",
    "ScenarioReport",
    "ScenarioSpec",
    "TenantQoS",
    "get_scenario",
    "run_scenario_case",
    "run_scenarios",
]
