"""Compiles a :class:`ScenarioSpec` onto the simulator and runs it.

One :class:`ScenarioCase` = (spec, system, seed).  The driver builds the
cluster, deploys the system through the same factories the paper sweeps
use, schedules every arrival segment and scripted event as simulator
processes, attaches the :class:`~repro.validation.auditor.InvariantAuditor`
(mid-run after every scripted event, the full set at quiesce) and emits
per-model plus aggregate :class:`~repro.metrics.collector.RunSummary`
rows.  Cases are plain data, so ``run_scenarios`` fans them out through
the parallel experiment runner and caches results exactly like figure
cells (same ``.runcache/``, same code-fingerprint invalidation).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable

from repro.cluster.allocator import AllocationError
from repro.cluster.failures import (
    FailureInjector,
    ReclamationPolicy,
    VictimChoice,
)
from repro.core.admission import AdmissionGate, QueueCapPolicy
from repro.core.context import ServingContext
from repro.experiments.common import (
    ExperimentConfig,
    build_environment,
    make_workload_sampler,
)
from repro.metrics.collector import MetricsCollector, RunSummary
from repro.qos.admission import build_tenant_controller
from repro.qos.classes import DEFAULT_CLASS, get_slo_class
from repro.scenarios.spec import ArrivalSegment, ScenarioSpec
from repro.validation.auditor import InvariantAuditor, Violation
from repro.validation.chaos import (
    CHAOS_SYSTEMS,
    action_drain,
    action_refactor,
    action_scale_out,
)
from repro.workloads.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    make_arrivals,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import DiurnalTrace, DiurnalTraceConfig

MAX_EVENTS = 30_000_000


@dataclass(frozen=True)
class ScenarioCase:
    """One scenario run: a spec bound to a system and a seed.

    ``shards``: 0 runs the classic monolithic driver; >= 1 routes the case
    through the shard partitioner (``repro scenario run --shards N``).
    The value is the *worker-process* count only — the decomposition into
    shard groups is a pure function of the spec, so results are identical
    for every ``shards >= 1`` (and the cache key records just the mode).

    ``trace``: arm the observability taps (span tracer + fleet flight
    recorder) for this run.  Traced runs never consult the result cache.
    """

    spec: ScenarioSpec
    system: str = "FlexPipe"
    seed: int = 0
    shards: int = 0
    trace: bool = False


@dataclass
class TenantQoS:
    """Per-tenant QoS accounting for one scenario run.

    ``offered`` counts everything the tenant's generators produced (shed
    included), so ``attainment`` — goodput over offered — charges sheds
    as SLO misses: a control plane cannot improve its attainment by
    shedding feasible work.

    ``gpu_share_peak`` is the tenant's high-water fraction of fleet GPU
    memory over the run; ``share_cap`` its configured limit (``None`` =
    uncapped) — together the per-tenant GPU-share row of ``repro qos``.
    """

    model: str
    slo_class: str | None
    offered: int
    admitted: int
    shed: int
    completed: int
    goodput: int
    gpu_share_peak: float = 0.0
    share_cap: float | None = None
    # Arbitration and elastic-contract traffic: preemptions this tenant
    # won (its deploy evicted a lower-class pending claim) / lost (its
    # own pending claim was evicted), borrow grants it received, and
    # reclaim demands it issued as a lender.
    preemptions_won: int = 0
    preemptions_lost: int = 0
    borrows: int = 0
    reclaims: int = 0

    @property
    def attainment(self) -> float:
        return self.goodput / self.offered if self.offered else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0


@dataclass
class ScenarioReport:
    """Outcome of one scenario case (picklable, pool-safe)."""

    scenario: str
    system: str
    seed: int
    violations: list[Violation] = field(default_factory=list)
    aggregate: RunSummary | None = None
    per_model: dict[str, RunSummary] = field(default_factory=dict)
    offered: int = 0
    completed: int = 0
    shed: int = 0
    events: dict[str, int] = field(default_factory=dict)
    horizon: float = 0.0
    qos_enabled: bool = False
    tenants: dict[str, TenantQoS] = field(default_factory=dict)
    # --- sharded execution (0/""/0 on the classic monolithic path) ---
    shards: int = 0  # shard *groups* the run decomposed into
    shard_fallback: str = ""  # why a --shards run fell back to one shard
    engine_events: int = 0  # total simulator events across all shards
    # --- observability (empty unless the case asked for tracing) ---
    traces: list = field(default_factory=list)  # FinalTrace rows
    fleet_events: list = field(default_factory=list)  # FleetEvent rows

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# Segment compilation
# ----------------------------------------------------------------------
def _make_segment_arrivals(
    segment: ArrivalSegment, rng, trace_rng, *, azure2019=None
):
    """Build the arrival process for one segment (at the segment's start)."""
    if segment.kind == "steady":
        return make_arrivals(segment.qps, segment.cv, rng)
    if segment.kind == "azure2019":
        return _make_azure2019_arrivals(segment, azure2019, rng)
    if segment.kind == "burst":
        # Spec validation guarantees cv > 1 (MMPP's requirement), so the
        # declared intensity is honoured exactly.
        return MMPPArrivals.with_cv(
            segment.qps, segment.cv, rng, mean_cycle=segment.burst_cycle
        )
    if segment.kind == "diurnal":
        return DiurnalArrivals(
            segment.qps, rng, amplitude=segment.amplitude, period=segment.period
        )
    if segment.kind == "azure":
        return _make_azure_arrivals(segment, rng, trace_rng)
    # replay: a seeded synthetic production trace compressed into the
    # segment (one "day" per segment), scaled to the requested mean rate.
    trace = DiurnalTrace(
        trace_rng,
        DiurnalTraceConfig(
            base_rate=segment.qps,
            day_seconds=max(segment.duration, 1.0),
            burst_factor=8.0,
            burst_rate_per_hour=3600.0 / max(segment.duration, 1.0),
            burst_mean_duration=max(segment.duration * 0.05, 1.0),
        ),
    )
    from repro.workloads.arrivals import ReplayArrivals

    return ReplayArrivals(trace.generate(segment.duration), rng)


def _make_azure2019_arrivals(segment: ArrivalSegment, source, rng):
    """Replay one AzureFunctionsDataset2019 function, fully streaming.

    The scenario's source block names the dataset window; the segment
    names one function of it.  The whole window maps onto the segment's
    duration (``scale = duration / window_seconds``), so a
    time-compressed ``--quick`` run still replays every trace minute.
    Minting is the vectorised lazy generator — ``ReplayArrivals`` takes
    its streaming path, so the full request list never materialises —
    and draws no randomness, so playback is identical under any shard
    decomposition.
    """
    from repro.workloads.arrivals import ReplayArrivals
    from repro.workloads.azure2019 import (
        iter_minted_stamps,
        load_window_cached,
    )

    if source is None:
        raise ValueError(
            "azure2019 segment without a spec-level azure2019 source block"
        )
    window = load_window_cached(source)
    fn = window.function(segment.trace_function)
    scale = segment.duration / source.window_seconds
    return ReplayArrivals(iter_minted_stamps(fn.counts, scale=scale), rng)


def _make_azure_arrivals(segment: ArrivalSegment, rng, trace_rng):
    """Replay an Azure-Functions bundle through :class:`ReplayArrivals`.

    ``trace_file`` (a CSV in the ``repro trace synth`` / real-dataset
    layout) is read when given; otherwise a seeded synthetic bundle is
    generated in memory with the same generator the CLI uses.  The
    bundle's busiest app — the paper's "Top-1" app, the one Fig. 1
    measures — is rescaled and time-compressed into the segment, so the
    trace's diurnal envelope and burst minutes survive at scenario
    timescale and the mean rate lands on ``qps``.
    """
    from repro.workloads.arrivals import ReplayArrivals
    from repro.workloads.azure import (
        AzureSynthConfig,
        TraceBundle,
        counts_to_timestamps,
        synthesize_azure_like,
    )

    if segment.trace_file:
        bundle = TraceBundle.read_csv(segment.trace_file)
    else:
        bundle = synthesize_azure_like(
            trace_rng,
            AzureSynthConfig(
                n_apps=12, functions_per_app=2, days=1.0,
                mean_total_rate=max(segment.qps, 1.0),
            ),
        )
    trace = bundle.top_apps(1)[0]
    # Rescale so the *compressed* replay offers qps on average: the trace
    # spans trace.duration seconds but plays back in segment.duration.
    trace = trace.rescaled(segment.qps * segment.duration / trace.duration)
    stamps = counts_to_timestamps(trace, trace_rng)
    compression = segment.duration / trace.duration
    return ReplayArrivals((float(t) * compression for t in stamps), rng)


class ScenarioDriver:
    """Runs one compiled scenario end-to-end.

    The run is phased — :meth:`start` builds the world, :meth:`advance`
    simulates up to a time, :meth:`finish` quiesces and reports — so a
    shard coordinator can window-step many drivers in lock-step.
    :meth:`run` chains the three for the classic monolithic path.

    ``server_indices`` (shard execution) restricts the driver to the
    sub-cluster owning those servers of the spec's named topology.
    """

    def __init__(self, case: ScenarioCase, *, server_indices=None):
        if case.system not in CHAOS_SYSTEMS:
            raise KeyError(
                f"unknown system {case.system!r}; "
                f"available: {sorted(CHAOS_SYSTEMS)}"
            )
        self.case = case
        self.spec = case.spec
        self.generators: dict[str, list[WorkloadGenerator]] = {
            m.model: [] for m in self.spec.models
        }
        self.event_counts: dict[str, int] = {}
        self.violations: dict[tuple[str, str], Violation] = {}
        self._server_indices = (
            tuple(server_indices) if server_indices is not None else None
        )
        self._started = False

    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        self.start()
        self.advance(self.horizon)
        return self.finish()

    # ------------------------------------------------------------------
    # Phase 1: build the world (no simulated time passes here)
    # ------------------------------------------------------------------
    def start(self) -> None:
        spec, case = self.spec, self.case
        primary = spec.models[0]
        cfg = ExperimentConfig(
            model=primary.model,
            qps=max(s.qps for s in primary.segments),
            cv=max(s.cv for s in primary.segments),
            duration=spec.duration,
            seed=case.seed,
            slo_latency=primary.slo_latency,
            settle_time=spec.settle,
            prompt_median=primary.prompt_median,
            output_median=primary.output_median,
            batch_cap=spec.batch_cap,
            cluster=spec.cluster,
            fragmentation=spec.fragmentation,
            extra_models=tuple(m.model for m in spec.models[1:]),
        )
        self.cfg = cfg
        sim, cluster, streams, fragmentation = build_environment(
            cfg, server_indices=self._server_indices
        )
        self.sim = sim
        self.streams = streams
        self.cluster = cluster
        self.fragmentation = fragmentation
        # Cache-tier capacity knobs are hardware, so they apply to every
        # system identically (policy comparisons stay apples-to-apples).
        if spec.host_cache_gb is not None:
            for server in cluster.servers:
                server.host_memory = spec.host_cache_gb * 2**30
        if spec.ssd_cache_gb is not None:
            for server in cluster.servers:
                server.ssd_capacity = spec.ssd_cache_gb * 2**30
        if spec.storage_gbps is not None:
            cluster.storage.spec = replace(
                cluster.storage.spec, bandwidth=spec.storage_gbps * 2**30
            )
        ctx = ServingContext.create(sim, cluster, streams)
        overrides = (
            {}
            if spec.initial_replicas is None
            else {"initial_replicas": spec.initial_replicas}
        )
        if case.system == "FlexPipe":
            # Cold-start economy knobs exist only on FlexPipe; the baseline
            # factories have fixed signatures and keep their historical
            # loading behaviour.
            if spec.cache_policy != "lru":
                overrides["cache_policy"] = spec.cache_policy
            if spec.pipelined_loading:
                overrides["pipelined_loading"] = True
            if spec.scale_to_zero:
                overrides["min_replicas"] = 0
            if spec.idle_window is not None:
                overrides["scale_in_idle_window"] = spec.idle_window
        system = CHAOS_SYSTEMS[case.system](ctx, cfg, **overrides)
        self.system = system
        self.tracer = None
        self.recorder = None
        if case.trace:
            self._install_tracing()
        try:
            system.start()
        except AllocationError:
            # Cold start on a fragmented cluster may not fit the whole
            # fleet; the system serves with what it got (atomic per
            # replica) and its control loops recover — part of the test.
            pass
        self.epoch = spec.settle
        self.horizon = spec.settle + spec.duration + spec.drain
        # Time boundaries at which setup hooks run mid-simulation; advance()
        # crosses them in order regardless of the caller's window sizes.
        self._boundaries: list[tuple[float, Callable[[], None]]] = [
            (spec.settle, self._open_epoch)
        ]
        self._started = True

    def _install_tracing(self) -> None:
        """Arm the observability taps (tracer + flight recorder).

        Installation is pure attribute assignment — no events are
        scheduled and no RNG is drawn — so the simulated run is identical
        to an untraced one; only the recording differs.
        """
        from repro.observability import FlightRecorder, SpanTracer

        sim = self.sim
        self.tracer = SpanTracer()
        self.recorder = FlightRecorder()
        sim.tracer = self.tracer
        sim.recorder = self.recorder
        allocator = self.system.ctx.allocator
        allocator.recorder = self.recorder
        # The allocator stamps events through its elastic-shares clock;
        # arm it here so borrow/preemption events carry simulation time
        # even when elastic contracts never turn on (enable_elastic_shares
        # later replaces it with an equivalent sim-now closure).
        allocator._clock = lambda: sim.now
        cache = getattr(self.system, "warm_cache", None)
        if cache is not None:
            cache.recorder = self.recorder

    def _open_epoch(self) -> None:
        """At the traffic epoch: arm gates, auditor, injector, workloads."""
        spec, sim = self.spec, self.sim
        epoch = self.epoch
        system = self.system
        system.reset_measurement_epoch()
        if spec.qos_enabled:
            # The QoS control plane: class-aware routing + attainment
            # signals on the system, one admission chain per tenant.
            class_map = {
                m.model: get_slo_class(m.slo_class or DEFAULT_CLASS)
                for m in spec.models
            }
            share_caps = {
                m.model: m.share_cap
                for m in spec.models
                if m.share_cap is not None
            }
            system.enable_qos(
                class_map,
                share_caps=share_caps or None,
                elastic=spec.elastic,
            )
            self.gate = build_tenant_controller(
                system, class_map, cap=int(spec.admission_cap)
            )
        else:
            # The null policy: one shared queue-cap gate (or nothing).
            policy = (
                QueueCapPolicy(self._total_queue, int(spec.admission_cap))
                if spec.admission_cap
                else None
            )
            self.gate = AdmissionGate(system.submit, policy)
        if self.recorder is not None:
            self.gate.recorder = self.recorder
        # Streaming accounting: per-tenant collectors are fed at arrival
        # time (admitted requests only), so generators never need to
        # retain the full request population for post-hoc replay.
        self.collectors = {
            m.model: MetricsCollector(f"{self.case.system}:{m.model}")
            for m in spec.models
        }
        self.auditor = InvariantAuditor(system, gates=[self.gate])
        self.injector = FailureInjector(
            sim,
            self.cluster,
            self.streams.stream("scenario-failures"),
            system,
            policy=ReclamationPolicy(
                mtbf=1e12,  # events only fire from the script
                downtime_mean=spec.downtime_mean,
                choice=VictimChoice.SERVING_BIASED,
            ),
        )
        self._schedule_segments(epoch)
        self._schedule_events(epoch)

    # ------------------------------------------------------------------
    # Phase 2: simulate (windowed under sharding, one shot monolithically)
    # ------------------------------------------------------------------
    def advance(self, until: float) -> None:
        """Simulate up to ``until``, crossing setup boundaries in order."""
        if not self._started:
            raise RuntimeError("advance() before start()")
        while self._boundaries and self._boundaries[0][0] <= until:
            at, hook = self._boundaries.pop(0)
            self.sim.run(until=at, max_events=MAX_EVENTS)
            hook()
        self.sim.run(until=until, max_events=MAX_EVENTS)

    # ------------------------------------------------------------------
    # Phase 3: quiesce + report
    # ------------------------------------------------------------------
    def finish(self) -> ScenarioReport:
        if not self._started:
            raise RuntimeError("finish() before start()")
        self.advance(self.horizon)  # no-op when already there
        self.injector.stop()
        self.system.shutdown()
        if self.fragmentation is not None:
            self.fragmentation.stop()
        self.sim.run_until_idle(max_events=MAX_EVENTS)

        all_generators = [g for gens in self.generators.values() for g in gens]
        self.auditor.generators = all_generators
        self._record(self.auditor.audit_quiesce())
        report = self._report(self.epoch)
        if self.tracer is not None:
            report.traces = list(self.tracer.finalized)
            report.fleet_events = list(self.recorder.events)
        return report

    # ------------------------------------------------------------------
    def _total_queue(self) -> int:
        return sum(r.total_queue for r in self.system.all_routers().values())

    def _record(self, violations: list[Violation]) -> None:
        for violation in violations:
            self.violations.setdefault(
                (violation.invariant, violation.detail), violation
            )

    # ------------------------------------------------------------------
    def _schedule_segments(self, epoch: float) -> None:
        for script in self.spec.models:
            model_cfg = replace(
                self.cfg,
                model=script.model,
                prompt_median=script.prompt_median,
                output_median=script.output_median,
                slo_latency=script.effective_slo,
                extra_models=(),
            )
            for i, segment in enumerate(script.segments):
                self.sim.schedule_at(
                    epoch + segment.start,
                    self._start_segment,
                    script,
                    model_cfg,
                    segment,
                    i,
                )

    def _start_segment(
        self, script, model_cfg: ExperimentConfig, segment: ArrivalSegment, index: int
    ) -> None:
        model = script.model
        tag = f"_{model}_s{index}"
        arrivals = _make_segment_arrivals(
            segment,
            self.streams.stream(f"arrivals{tag}"),
            self.streams.stream(f"trace{tag}"),
            azure2019=self.spec.azure2019,
        )
        sampler = make_workload_sampler(
            model_cfg,
            self.streams,
            model=model,
            tag=tag,
            # Segment override wins over the tenant class; unclassed
            # tenants keep minting historical (class-free) requests.
            slo_class=segment.slo_class or script.slo_class,
        )
        generator = WorkloadGenerator(
            self.sim,
            arrivals,
            sampler,
            self.gate.submit,
            segment.duration,
            # Streaming accounting: only gate-shed requests are retained
            # (the auditor's exactly-once-shed evidence); admitted ones
            # flow into the per-tenant collector at arrival and are
            # otherwise owned by the serving system.
            retain="rejected",
            observer=partial(self._observe_arrival, model),
        )
        self.generators[model].append(generator)

    def _observe_arrival(self, model: str, request) -> None:
        if not request.rejected:
            self.collectors[model].on_submit(request)

    # ------------------------------------------------------------------
    def _schedule_events(self, epoch: float) -> None:
        for event in self.spec.events:
            self.sim.schedule_at(epoch + event.at, self._fire_event, event)

    def _fire_event(self, event) -> None:
        rng = self.streams.stream("scenario-events")
        for _ in range(event.count):
            if event.action == "reclaim":
                outcome = "ok" if self.injector.inject() is not None else "noop"
            elif event.action == "fail_server":
                outcome = self._fail_server(rng)
            elif event.action == "drain":
                outcome = action_drain(self.system, rng, model=event.model)
            elif event.action == "refactor":
                outcome = action_refactor(
                    self.system,
                    rng,
                    model=event.model,
                    target_stages=event.target_stages,
                )
            else:  # scale_out
                outcome = action_scale_out(self.system, rng, model=event.model)
            key = f"{event.action}:{outcome}"
            self.event_counts[key] = self.event_counts.get(key, 0) + 1
        # Audit immediately: a violation is attributed to the event that
        # exposed it, not discovered minutes later at quiesce.
        self._record(self.auditor.audit_running())

    def _fail_server(self, rng) -> str:
        """Reclaim every GPU of one (seeded-random) multi-GPU server."""
        servers = [s for s in self.cluster.servers if len(s.gpus) > 1]
        pool = servers or list(self.cluster.servers)
        if not pool:
            return "noop"
        server = pool[int(rng.integers(len(pool)))]
        fired = sum(
            1 for gpu in server.gpus if self.injector.inject(gpu) is not None
        )
        return "ok" if fired else "noop"

    # ------------------------------------------------------------------
    def _report(self, epoch: float) -> ScenarioReport:
        spec = self.spec
        measured = max(spec.duration, 1.0) + spec.drain
        aggregate = self.system.summarize(measured)
        per_model: dict[str, RunSummary] = {}
        tenants: dict[str, TenantQoS] = {}
        for script in spec.models:
            summary = self._model_summary(script.model, measured, epoch)
            row = self._tenant_row(script, summary)
            tenants[script.model] = row
            per_model[script.model] = replace(
                summary,
                slo_class=script.slo_class or "",
                shed=row.shed,
                slo_attainment=row.attainment,
                preemptions_won=row.preemptions_won,
                preemptions_lost=row.preemptions_lost,
                borrows=row.borrows,
                reclaims=row.reclaims,
            )
        offered = sum(
            g.offered for gens in self.generators.values() for g in gens
        )
        completed = len({r.rid for r in self.system.metrics.records})
        return ScenarioReport(
            scenario=spec.name,
            system=self.case.system,
            seed=self.case.seed,
            violations=list(self.violations.values()),
            aggregate=aggregate,
            per_model=per_model,
            offered=offered,
            completed=completed,
            shed=self.gate.stats.rejected,
            events=dict(sorted(self.event_counts.items())),
            horizon=spec.horizon,
            qos_enabled=spec.qos_enabled,
            tenants=tenants,
            engine_events=self.sim.events_processed,
        )

    def _tenant_row(self, script, summary: RunSummary) -> TenantQoS:
        """Per-tenant QoS accounting (offered includes gate sheds)."""
        generators = self.generators[script.model]
        offered = sum(g.offered for g in generators)
        shed = sum(
            1 for g in generators for r in g.requests if r.rejected
        )
        allocator = self.system.ctx.allocator
        model = script.model
        return TenantQoS(
            model=model,
            slo_class=script.slo_class,
            offered=offered,
            admitted=offered - shed,
            shed=shed,
            completed=summary.completed,
            goodput=summary.goodput,
            gpu_share_peak=allocator.tenant_peak_share(model),
            share_cap=script.share_cap,
            preemptions_won=sum(
                1 for p in allocator.preemptions if p.claimant_model == model
            ),
            preemptions_lost=sum(
                1 for p in allocator.preemptions if p.victim_model == model
            ),
            borrows=allocator.borrow_events.get(model, 0),
            reclaims=sum(
                1 for d in allocator.reclaim_demands if d.lender == model
            ),
        )

    def _model_summary(
        self, model: str, measured: float, epoch: float
    ) -> RunSummary:
        """Per-tenant summary of *admitted* and completed work.

        Gate-shed requests never reach a tenant, so they are excluded
        here (the summary's ``offered`` means admitted); the report's
        top-level ``offered`` counts everything generated, with ``shed``
        carrying the difference.  The collector was fed at arrival time
        (streaming), so only completion records are attached here.
        """
        collector = self.collectors[model]
        collector.records = [
            r for r in self.system.metrics.records if r.model == model
        ]
        return collector.summarize(measured, measure_from=epoch)


# ----------------------------------------------------------------------
# Case execution + fan-out
# ----------------------------------------------------------------------
def run_scenario_case(case: ScenarioCase) -> ScenarioReport:
    """Run one scenario case; any crash becomes a ``harness-crash`` finding
    on the report (the (scenario, system, seed) reproducer contract)."""
    try:
        if case.shards > 0:
            from repro.scenarios.sharding import run_sharded_case

            return run_sharded_case(case)
        return ScenarioDriver(case).run()
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return ScenarioReport(
            scenario=case.spec.name,
            system=case.system,
            seed=case.seed,
            violations=[
                Violation("harness-crash", f"{type(exc).__name__}: {exc}")
            ],
        )


_CACHE_VERSION = 5


def scenario_cache_key(case: ScenarioCase, fingerprint: str) -> str:
    """Content hash of one scenario cell (same scheme as figure cells).

    The key records only *whether* the case runs sharded, never the
    worker count: sharded results are shard-count-invariant by
    construction, so ``--shards 2`` and ``--shards 4`` share a cache
    entry (exactly like the runner's jobs-invariance).

    Trace-replay scenarios additionally key on the trace data: the
    azure2019 source block (window, top-K, seed) rides in the spec dict,
    and the files behind a real ``dataset_dir`` contribute a content
    fingerprint — replacing the dataset on disk invalidates the cached
    cell even though the spec is unchanged.
    """
    payload = {
        "version": _CACHE_VERSION,
        "code": fingerprint,
        "system": case.system,
        "seed": case.seed,
        "sharded": case.shards > 0,
        "spec": case.spec.to_dict(),
    }
    if case.spec.azure2019 is not None:
        from repro.workloads.azure2019 import dataset_fingerprint

        payload["trace_data"] = dataset_fingerprint(case.spec.azure2019)
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def run_scenarios(
    specs: list[ScenarioSpec],
    systems: list[str] | None = None,
    *,
    seed: int = 0,
    quick: bool = False,
    runner=None,
    jobs: int | None = None,
    use_cache: bool | None = None,
    shards: int = 0,
) -> list[ScenarioReport]:
    """Run every (scenario, system) cell, order-stable.

    Cells fan out through the parallel experiment runner and consult its
    on-disk result cache: re-running a scenario sweep only recomputes
    cells whose spec, seed, or the source tree changed.  ``shards >= 1``
    routes each cell through the shard partitioner with that many worker
    processes (results are shard-count-invariant).
    """
    from repro.experiments.runner import make_runner

    chosen = list(systems) if systems else sorted(CHAOS_SYSTEMS)
    unknown = [s for s in chosen if s not in CHAOS_SYSTEMS]
    if unknown:
        raise KeyError(
            f"unknown system(s) {unknown}; available: {sorted(CHAOS_SYSTEMS)}"
        )
    cases = [
        ScenarioCase(spec.quick() if quick else spec, system, seed, max(shards, 0))
        for spec in specs
        for system in chosen
    ]
    exp_runner = make_runner(runner, jobs=jobs, use_cache=use_cache)
    return exp_runner.cached_map(
        run_scenario_case,
        cases,
        scenario_cache_key,
        # A crash report describes the environment, not the scenario —
        # persisting it would pin a transient failure until the next
        # source edit.  Crashed cells always re-execute.
        cacheable=lambda report: not any(
            v.invariant == "harness-crash" for v in report.violations
        ),
    )
