"""Minimal, fast discrete-event simulation engine.

The engine is deliberately callback-based (no generator coroutines): the
serving systems in this repository schedule hundreds of thousands of events
per run, and plain heapq scheduling keeps the hot loop allocation-light.

Determinism guarantees:

* events fire in non-decreasing timestamp order;
* events scheduled for the same timestamp fire in scheduling (FIFO) order;
* cancelled events are skipped without side effects.

Bookkeeping is O(1): the simulator maintains a live-event counter so
``pending_count`` / ``run_until_idle`` never scan the heap, and cancelled
events are compacted out of the heap once they dominate it, keeping both
push costs and memory proportional to the *live* event population even
under cancel-heavy workloads (batch timers, scale-in watchdogs).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

# Compact the heap when it holds more than this many cancelled entries and
# they outnumber the live ones; small heaps are never worth rebuilding.
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only holds them to optionally
    :meth:`cancel` them.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: "Simulator | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            # Still queued: keep the simulator's live/dead counts exact.
            sim._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, handler, arg1, arg2)
        sim.run(until=100.0)
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._live = 0  # non-cancelled events currently in the heap
        self._dead = 0  # cancelled events awaiting compaction or pop
        self.events_processed = 0
        # Observability taps (repro.observability): a SpanTracer /
        # FlightRecorder installed here arms the hooks threaded through
        # the serving stack.  Both None (the default) keeps every hook a
        # single attribute read — untraced runs are byte-identical.
        self.tracer = None
        self.recorder = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if math.isnan(delay) or math.isinf(delay):
            raise SimulationError(f"invalid delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, self._seq, callback, args)
        event._sim = self
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        """A queued event was cancelled: update counters, maybe compact."""
        self._live -= 1
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Heapify preserves the fire order because ``Event.__lt__`` is a total
        order over (time, seq) — determinism is unaffected.
        """
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    def _pop(self) -> Event:
        """Pop the heap top, keeping counters exact."""
        event = heapq.heappop(self._queue)
        if event.cancelled:
            self._dead -= 1
        else:
            self._live -= 1
        event._sim = None
        return event

    def peek(self) -> float | None:
        """Timestamp of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            self._pop()
        return self._queue[0].time if self._queue else None

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired by
        this call (shard coordinators use it for per-window accounting).

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so utilization denominators stay
        consistent across runs.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if event.cancelled:
                    self._pop()
                    continue
                if until is not None and event.time > until:
                    break
                self._pop()
                self._now = event.time
                event.callback(*event.args)
                self.events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return fired

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (with a runaway-loop backstop)."""
        self.run(max_events=max_events)
        if self._live and not self._stopped:
            raise SimulationError(
                f"run_until_idle exceeded {max_events} events with "
                f"{self._live} still pending"
            )

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live
