"""Counted resources and object stores for the event engine.

The core engine (:mod:`repro.simulation.engine`) is callback-based; these
primitives add the two coordination patterns the scaling and transfer
subsystems need without introducing coroutines:

* :class:`Resource` — a counted semaphore with FIFO waiters.  The HRG
  coordinator uses one per contended resource level (PCIe lanes per
  server, uplink slots per rack, storage channels per cluster) to
  serialise concurrent scale-up operations (§7).
* :class:`Store` — a FIFO buffer of items with blocking gets, used to
  model staging queues (e.g. parameter shards waiting for a loader slot).

Both hand out grants via callbacks scheduled *through the simulator*, so
acquisition order is deterministic and visible in the event trace.
"""

from __future__ import annotations

import collections
from typing import Any, Callable

from repro.simulation.engine import Simulator


class Resource:
    """A counted resource with FIFO waiters.

    ``acquire(n, callback)`` fires ``callback()`` once ``n`` units are
    granted; the grant happens immediately (same timestamp, via a
    zero-delay event) when capacity is available, otherwise when enough
    ``release`` calls arrive.  Waiters are served strictly FIFO — a large
    request at the head blocks smaller ones behind it, which is exactly
    the head-of-line behaviour uncoordinated scaling exhibits and the HRG
    is designed to avoid.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: collections.deque[tuple[int, Callable[[], None]]] = (
            collections.deque()
        )
        self.grants = 0
        self.total_wait_time = 0.0
        self._wait_started: dict[int, float] = {}
        self._waiter_seq = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self, units: int, callback: Callable[[], None]) -> None:
        """Request ``units``; ``callback`` fires when they are granted."""
        if units < 1 or units > self.capacity:
            raise ValueError(
                f"{self.name}: cannot acquire {units} of {self.capacity} units"
            )
        seq = self._waiter_seq
        self._waiter_seq += 1
        self._wait_started[seq] = self.sim.now
        self._waiters.append((units, self._granted(seq, callback)))
        self._pump()

    def _granted(self, seq: int, callback: Callable[[], None]) -> Callable[[], None]:
        def fire() -> None:
            self.total_wait_time += self.sim.now - self._wait_started.pop(seq)
            self.grants += 1
            callback()

        return fire

    def release(self, units: int) -> None:
        """Return ``units`` to the pool, waking FIFO waiters."""
        if units < 0 or units > self.in_use:
            raise ValueError(
                f"{self.name}: release({units}) with {self.in_use} in use"
            )
        self.in_use -= units
        self._pump()

    def _pump(self) -> None:
        while self._waiters:
            units, fire = self._waiters[0]
            if units > self.available:
                return
            self._waiters.popleft()
            self.in_use += units
            self.sim.schedule(0.0, fire)

    def mean_wait(self) -> float:
        """Average time grants spent queued (0 if nothing granted yet)."""
        if self.grants == 0:
            return 0.0
        return self.total_wait_time / self.grants


class Store:
    """A FIFO buffer of items with blocking gets.

    ``put`` never blocks (capacity is enforced by the producer if needed);
    ``get`` fires its callback with the item as soon as one is available,
    preserving FIFO order among both items and getters.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: collections.deque[Any] = collections.deque()
        self._getters: collections.deque[Callable[[Any], None]] = collections.deque()
        self.puts = 0
        self.gets = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> None:
        self.puts += 1
        self._items.append(item)
        self._pump()

    def get(self, callback: Callable[[Any], None]) -> None:
        self._getters.append(callback)
        self._pump()

    def _pump(self) -> None:
        while self._items and self._getters:
            item = self._items.popleft()
            callback = self._getters.popleft()
            self.gets += 1
            self.sim.schedule(0.0, callback, item)
