"""Conservative sharded parallel simulation (null-message style).

The fleet's servers are partitioned into *shards*, each running its own
:class:`~repro.simulation.engine.Simulator` independently.  A
:class:`ShardCoordinator` advances every shard in lock-step *lookahead
windows*: each shard simulates up to a barrier, emits outbound
cross-shard messages stamped with their arrival time, and the coordinator
delivers them into the destination shard before the next window opens.

The protocol is conservative: a shard promises (via
:attr:`ShardProgram.lookahead`) a lower bound on the latency of anything
it sends — the cross-shard transfer-latency floor — so a window of that
width can never deliver a message into a shard's *past*.  The coordinator
verifies the promise on every message and raises
:class:`~repro.simulation.engine.SimulationError` on a violation instead
of silently reordering history.

Determinism is worker-count-invariant by construction:

* the shard decomposition is an input (the factories list), never derived
  from the worker count;
* messages are routed in a total order — ``(arrival time, source shard,
  per-source sequence)`` — regardless of which process produced them;
* window barriers depend only on event/message timestamps.

So ``workers=1`` (all shards stepped in one process) and ``workers=N``
(shards spread over N persistent forked workers) produce byte-identical
results, exactly like the experiment runner's jobs-invariance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simulation.engine import SimulationError, Simulator

# Tolerance for the conservative-delivery check: a message may arrive
# exactly at the barrier (it is delivered before the next window, which
# opens at the barrier), never strictly inside the window that sent it.
_BARRIER_EPS = 1e-9


@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard event: "something arrives at shard ``dst`` at ``time``".

    ``src``/``seq`` are stamped by the sending program and define, with
    ``time``, the total delivery order — ties between shards resolve by
    source index, ties within a source by emission order.
    """

    time: float
    dst: int
    kind: str
    payload: Any = None
    src: int = -1
    seq: int = -1

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.src, self.seq)


class ShardProgram:
    """One shard: a self-contained simulation advanced in windows.

    Subclasses override :meth:`setup`, :meth:`advance`, :meth:`finish`
    and (when they exchange messages) :meth:`on_message`.  ``lookahead``
    is the shard's conservative promise: every message it sends arrives
    at least that far in the future.  ``math.inf`` (the default) means
    the shard never sends — the coordinator then collapses the run into
    a single window.
    """

    lookahead: float = math.inf

    def __init__(self) -> None:
        self.shard_index = -1  # set by the host before setup()
        self._outbox: list[ShardMessage] = []
        self._send_seq = 0

    # -- lifecycle ------------------------------------------------------
    def setup(self) -> None:
        """Build the shard's world (simulator, systems, workloads)."""

    def advance(self, until: float) -> None:
        """Simulate up to (and including) ``until``."""
        raise NotImplementedError

    def finish(self) -> Any:
        """Quiesce and return this shard's picklable result."""
        raise NotImplementedError

    # -- messaging ------------------------------------------------------
    def send(self, time: float, dst: int, kind: str, payload: Any = None) -> None:
        """Emit a cross-shard message arriving at ``dst`` at ``time``."""
        self._outbox.append(
            ShardMessage(
                time=time,
                dst=dst,
                kind=kind,
                payload=payload,
                src=self.shard_index,
                seq=self._send_seq,
            )
        )
        self._send_seq += 1

    def deliver(self, messages: list[ShardMessage]) -> None:
        """Deliver inbound messages (already in global delivery order)."""
        for message in messages:
            self.on_message(message)

    def on_message(self, message: ShardMessage) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} received a message but does not "
            f"implement on_message()"
        )

    def collect_outbound(self) -> list[ShardMessage]:
        out, self._outbox = self._outbox, []
        return out

    # -- introspection --------------------------------------------------
    def next_event_time(self) -> float | None:
        """Earliest pending local event (None = idle); lets the
        coordinator skip empty windows without breaking conservatism."""
        return None

    def events_processed(self) -> int:
        return 0


class SimShardProgram(ShardProgram):
    """A :class:`ShardProgram` backed by one :class:`Simulator`.

    Inbound messages are scheduled into the heap at their stamped arrival
    time and dispatched to :meth:`handle_message`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.sim = Simulator()

    def advance(self, until: float) -> None:
        self.sim.run(until=until)

    def deliver(self, messages: list[ShardMessage]) -> None:
        for message in messages:
            if message.time < self.sim.now:
                raise SimulationError(
                    f"shard {self.shard_index}: message {message.kind!r} "
                    f"arrives at t={message.time:.6f} but local time is "
                    f"already t={self.sim.now:.6f}"
                )
            self.sim.schedule_at(message.time, self.handle_message, message)

    def handle_message(self, message: ShardMessage) -> None:
        raise NotImplementedError

    def next_event_time(self) -> float | None:
        return self.sim.peek()

    def events_processed(self) -> int:
        return self.sim.events_processed


@dataclass
class ShardResult:
    """Per-shard outcome returned by :meth:`ShardCoordinator.run`."""

    index: int
    value: Any
    events: int = 0


class ShardHost:
    """Hosts a subset of shard programs inside one process.

    With W workers and K shards, worker ``w`` hosts shards ``w, w+W,
    w+2W, ...``; within a host, shards are always stepped in shard-index
    order, so the interleaving is identical for every W.
    """

    def __init__(self, entries: list[tuple[int, Callable, tuple]]):
        self._programs: list[ShardProgram] = []
        for index, factory, args in sorted(entries, key=lambda e: e[0]):
            program = factory(*args)
            program.shard_index = index
            self._programs.append(program)
        for program in self._programs:
            program.setup()

    def lookahead(self) -> float:
        return min(p.lookahead for p in self._programs)

    def advance(
        self, until: float, inbound: list[ShardMessage]
    ) -> tuple[list[ShardMessage], float]:
        """Deliver + advance every hosted shard to ``until``.

        Returns (outbound messages, earliest next local event time —
        ``math.inf`` when all hosted shards are idle).
        """
        by_dst: dict[int, list[ShardMessage]] = {}
        for message in inbound:
            by_dst.setdefault(message.dst, []).append(message)
        outbound: list[ShardMessage] = []
        for program in self._programs:
            messages = by_dst.pop(program.shard_index, None)
            if messages:
                program.deliver(messages)
            program.advance(until)
            outbound.extend(program.collect_outbound())
        if by_dst:
            stray = sorted(by_dst)
            raise SimulationError(
                f"messages routed to shard(s) {stray} not hosted here "
                f"(hosted: {[p.shard_index for p in self._programs]})"
            )
        nexts = [p.next_event_time() for p in self._programs]
        earliest = min(
            (t for t in nexts if t is not None), default=math.inf
        )
        return outbound, earliest

    def finish(self) -> list[ShardResult]:
        return [
            ShardResult(p.shard_index, p.finish(), p.events_processed())
            for p in self._programs
        ]


class ShardCoordinator:
    """Advances a set of shard programs in conservative lock-step windows.

    ``factories`` is one ``(callable, args)`` per shard; the callable
    builds that shard's :class:`ShardProgram` (in the hosting process,
    so un-picklable simulation state never crosses a pipe — only the
    factory inputs and the finished results do).
    """

    def __init__(
        self,
        factories: list[tuple[Callable, tuple]],
        *,
        horizon: float,
        lookahead: float | None = None,
        workers: int = 1,
    ):
        if not factories:
            raise ValueError("need at least one shard")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if lookahead is not None and lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        self.factories = list(factories)
        self.horizon = float(horizon)
        self._lookahead_override = lookahead
        self.workers = max(int(workers), 1)
        self.windows = 0
        self.messages_routed = 0
        self.events_processed = 0

    # ------------------------------------------------------------------
    def run(self) -> list[Any]:
        """Run every shard to the horizon; per-shard results in index order."""
        n_shards = len(self.factories)
        n_hosts = min(self.workers, n_shards)
        assignments: list[list[tuple[int, Callable, tuple]]] = [
            [] for _ in range(n_hosts)
        ]
        for index, (factory, args) in enumerate(self.factories):
            assignments[index % n_hosts].append((index, factory, args))

        pool = None
        if n_hosts > 1:
            from repro.experiments.runner import PersistentWorkerPool

            pool = PersistentWorkerPool(
                [(ShardHost, (entries,)) for entries in assignments]
            )
        hosts = None if pool is not None else [ShardHost(e) for e in assignments]

        def call_all(method: str, args_list: list[tuple]) -> list:
            if pool is not None:
                return pool.call_all(method, args_list)
            return [
                getattr(host, method)(*args)
                for host, args in zip(hosts, args_list)
            ]

        try:
            lookahead = self._lookahead_override
            if lookahead is None:
                lookahead = min(call_all("lookahead", [()] * n_hosts))
                if lookahead <= 0:
                    raise SimulationError(
                        f"non-positive shard lookahead {lookahead}: "
                        f"conservative windows are impossible"
                    )
            results = self._drive(call_all, n_hosts, lookahead)
        finally:
            if pool is not None:
                pool.close()
        results.sort(key=lambda r: r.index)
        self.events_processed = sum(r.events for r in results)
        return [r.value for r in results]

    # ------------------------------------------------------------------
    def _drive(
        self, call_all: Callable, n_hosts: int, lookahead: float
    ) -> list[ShardResult]:
        t = 0.0
        earliest = 0.0  # force the first window to open at the start
        pending: list[ShardMessage] = []
        while t < self.horizon:
            if math.isinf(lookahead):
                barrier = self.horizon
            else:
                # Nothing can happen before the earliest pending event or
                # message, so the window may open there — a standard
                # null-message advance that skips idle stretches.
                barrier = min(self.horizon, max(earliest, t) + lookahead)
            pending.sort(key=lambda m: m.sort_key)
            outcomes = call_all(
                "advance",
                [
                    (
                        barrier,
                        [m for m in pending if m.dst % n_hosts == host],
                    )
                    for host in range(n_hosts)
                ],
            )
            self.windows += 1
            outbound = [m for out, _ in outcomes for m in out]
            for message in outbound:
                if message.time < barrier - _BARRIER_EPS:
                    raise SimulationError(
                        f"conservative sync violated: shard {message.src} "
                        f"sent {message.kind!r} arriving at "
                        f"t={message.time:.6f}, inside the window ending at "
                        f"t={barrier:.6f} (its lookahead promise was "
                        f">= {lookahead:g})"
                    )
                if not 0 <= message.dst < len(self.factories):
                    raise SimulationError(
                        f"message {message.kind!r} addressed to unknown "
                        f"shard {message.dst}"
                    )
            self.messages_routed += len(outbound)
            pending = outbound
            t = barrier
            earliest = min(
                min((next_t for _, next_t in outcomes), default=math.inf),
                min((m.time for m in pending), default=math.inf),
            )
            if math.isinf(earliest) and not pending:
                t = self.horizon  # everyone idle: nothing left before the end
        if pending:
            # Residual messages arriving at/after the horizon: hand them to
            # their shards so finish()-time draining sees them.
            pending.sort(key=lambda m: m.sort_key)
            call_all(
                "advance",
                [
                    (
                        self.horizon,
                        [m for m in pending if m.dst % n_hosts == host],
                    )
                    for host in range(n_hosts)
                ],
            )
        finished = call_all("finish", [()] * n_hosts)
        return [result for host_results in finished for result in host_results]
