"""Periodic and delayed process helpers on top of the event engine."""

from __future__ import annotations

from typing import Any, Callable

from repro.simulation.engine import Event, Simulator


class PeriodicProcess:
    """Fires ``callback()`` every ``interval`` simulated seconds.

    Used for control loops (the FlexPipe optimisation interval, queue
    sampling, fragmentation churn ticks).  The first firing happens at
    ``start_delay`` (default: one interval from now).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        start_delay: float | None = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._event: Event | None = None
        self._stopped = False
        delay = interval if start_delay is None else start_delay
        self._event = sim.schedule(delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            self._event = self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop the process; pending tick (if any) is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        return not self._stopped
