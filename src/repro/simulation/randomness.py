"""Named, independently seeded random streams.

Each subsystem (arrivals, prompt lengths, fragmentation churn, placement
tie-breaking, ...) draws from its own stream so that changing one subsystem
never perturbs another — a requirement for apples-to-apples system
comparisons on identical workloads.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """Factory of named ``numpy.random.Generator`` streams.

    Streams are derived deterministically from ``(seed, name)`` so two
    ``RandomStreams`` objects with the same seed hand out identical streams
    regardless of the order in which names are first requested.
    """

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            seq = np.random.SeedSequence(self.seed, spawn_key=(stable_hash(name),))
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def __getattr__(self, name: str) -> np.random.Generator:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.stream(name)


def stable_hash(name: str) -> int:
    """Deterministic 63-bit FNV-1a hash of a name (``hash()`` is salted).

    Shared by stream derivation and request-id namespacing — any
    deterministic name-to-integer need should use this rather than grow
    another copy of the loop.
    """
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value & 0x7FFFFFFFFFFFFFFF


# Backwards-compatible alias (pre-PR-3 private name).
_stable_hash = stable_hash
