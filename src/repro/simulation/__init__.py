"""Discrete-event simulation substrate.

Every hardware-dependent component of the paper (GPU kernels, network
transfers, parameter loads, cluster churn) runs on top of this engine, so the
control-plane algorithms execute exactly as they would against a real
cluster, just with simulated time.
"""

from repro.simulation.engine import Event, Simulator
from repro.simulation.processes import PeriodicProcess
from repro.simulation.randomness import RandomStreams

__all__ = ["Event", "Simulator", "PeriodicProcess", "RandomStreams"]
