"""EXPERIMENTS.md generation: paper-vs-measured for every artefact.

Each bench in ``benchmarks/`` writes its result table to
``benchmarks/_results/<name>.txt``; this module stitches those outputs —
together with the per-experiment paper claims — into ``EXPERIMENTS.md``.
Run it via ``python -m repro report`` (or the ``write_experiments_md``
API) after ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_RESULTS_DIR = _REPO_ROOT / "benchmarks" / "_results"
DEFAULT_OUTPUT = _REPO_ROOT / "EXPERIMENTS.md"


@dataclass(frozen=True)
class ExperimentEntry:
    """One paper artefact: what the paper claims, where our numbers land."""

    result_stem: str  # benchmarks/_results/<stem>.txt
    artefact: str
    bench: str
    paper_claim: str
    shape_target: str


ENTRIES: list[ExperimentEntry] = [
    ExperimentEntry(
        "table1",
        "Table 1 — GPU cluster utilization statistics",
        "benchmarks/bench_table1.py",
        "Mean SM utilization 16.91% (C1) / 23.74% (C2); P50 ≪ P95; "
        "31%/21% of GPUs sit in the 10-30% utilization band.",
        "Fragmentation churn reproduces low-mean / high-P95 utilization with "
        "a heavy low-utilization mass.",
    ),
    ExperimentEntry(
        "table2",
        "Table 2 — pipeline granularity profile (OPT-66B)",
        "benchmarks/bench_table2.py",
        "4→32 stages: load 47.14 s → 5.43 s (8.7×), compute 69.94 ms → "
        "9.67 ms, comm 6.3 ms → 65.1 ms, max batch 128 → 1024 (8×).",
        "Max batch matches exactly; load/compute within 25%, comm within "
        "15%; endpoint ratios hold.",
    ),
    ExperimentEntry(
        "fig1",
        "Fig. 1 — request CV across measurement windows",
        "benchmarks/bench_fig1.py",
        "CV measured over 180 s / 3 h / 12 h windows differs by up to 7× "
        "on the Alibaba and Azure traces.",
        "Synthetic diurnal+burst trace shows ≥7× CV spread across windows.",
    ),
    ExperimentEntry(
        "fig2",
        "Fig. 2 — subscription rate and GPU availability",
        "benchmarks/bench_fig2.py",
        "216% average GPU subscription; P(single GPU ≥85% free) ≈ 8.7%; "
        "P(4 co-located free GPUs) ≈ 0.02%.",
        "Churn fitted to the same statistics; co-location probability "
        "collapses with group size.",
    ),
    ExperimentEntry(
        "fig3",
        "Fig. 3 — static pipeline vs workload variability",
        "benchmarks/bench_fig3.py",
        "CV 0.1→8 on a static 4-stage pipeline: goodput −37%, queue ×4, "
        "stall cycle ×22.",
        "Goodput declines, queue grows ~4×, stall-cycle ratio explodes at "
        "high CV.",
    ),
    ExperimentEntry(
        "fig4",
        "Fig. 4 — latency by granularity and CV",
        "benchmarks/bench_fig4.py",
        "16-stage is ~2.7× slower than 4-stage at low CV but ~3× faster at "
        "CV=4 (deep pipelines absorb bursts).",
        "Crossover between coarse and fine granularity as CV rises.",
    ),
    ExperimentEntry(
        "fig8",
        "Fig. 8 — end-to-end latency breakdown",
        "benchmarks/bench_fig8.py",
        "FlexPipe 38.3% lower latency at CV=1 and 66.1% lower than "
        "AlpaServe at CV=4, trading queue time for communication while "
        "holding ~100% goodput.",
        "FlexPipe lowest total latency at every CV; queue share shrinks, "
        "comm share grows; goodput stays ~max.",
    ),
    ExperimentEntry(
        "fig9",
        "Fig. 9 — burst absorption at CV=8",
        "benchmarks/bench_fig9.py",
        "FlexPipe holds low flat response times through bursts; MuxServe "
        "sustains >10 s latencies; AlpaServe spikes periodically.",
        "Windowed RT series: FlexPipe flattest, MuxServe worst sustained, "
        "AlpaServe spiky.",
    ),
    ExperimentEntry(
        "fig10",
        "Fig. 10 — latency percentile stability",
        "benchmarks/bench_fig10.py",
        "FlexPipe P99 stays controlled as CV grows; ServerlessLLM/Tetris "
        "P99 degrade 2-3×.",
        "FlexPipe P99 smallest and flattest across CV ∈ {1, 2, 4}.",
    ),
    ExperimentEntry(
        "fig11",
        "Fig. 11 — pipeline stall recovery",
        "benchmarks/bench_fig11.py",
        "Median recovery: FlexPipe 88 ms ≈ AlpaServe 83 ms at CV=1; 9 ms "
        "at CV=4 (44% faster than AlpaServe, 82% faster than MuxServe/"
        "ServerlessLLM).",
        "FlexPipe comparable at CV=1 and clearly fastest at CV=4.",
    ),
    ExperimentEntry(
        "fig12",
        "Fig. 12 — resource efficiency",
        "benchmarks/bench_fig12.py",
        "FlexPipe reaches max goodput at 33-43% utilization; Tetris burns "
        "85% utilization for ~8.5× less goodput at CV=4.",
        "FlexPipe goodput/utilization dominates; ≥5× efficiency gap vs "
        "Tetris at CV=4.",
    ),
    ExperimentEntry(
        "fig13",
        "Fig. 13 — prefill latency across model scales",
        "benchmarks/bench_fig13.py",
        "FlexPipe 6.43% (WHISPER) to 24.38% (OPT-66B) lower prefill "
        "latency; the gap grows with model size; 17.32% average.",
        "FlexPipe lower prefill latency on all four models, largest gain "
        "on OPT-66B.",
    ),
    ExperimentEntry(
        "case_study",
        "§9.6 — production cluster case study",
        "benchmarks/bench_case_study.py",
        "Always-on reservation 75% → 30% of peak; allocation wait −85%; "
        "instance initialization −72%.",
        "Reservation ratio ~0.3-0.4, wait and init reductions of the same "
        "order.",
    ),
    ExperimentEntry(
        "ablations",
        "Ablations — FlexPipe mechanism contributions",
        "benchmarks/bench_ablations.py",
        "(No paper table; DESIGN.md calls these out.)  Refactoring, warm "
        "cache, HRG coordination and affinity each carry measurable weight.",
        "Disabling each mechanism regresses its metric (latency, init time, "
        "warm-start rate).",
    ),
    ExperimentEntry(
        "queueing",
        "Eq. 1 / Insight 3 — queueing model validation",
        "benchmarks/bench_queueing.py",
        "Deeper pipelines win above CV≈3; optimal depth scales like "
        "S ∝ √CV.",
        "G/G/S model tracks simulated latency ordering; optimum depth "
        "grows with CV.",
    ),
    ExperimentEntry(
        "migration",
        "§8 ablation — hierarchical transfer vs NCCL",
        "benchmarks/bench_migration.py",
        "NCCL connection establishment costs seconds, so FlexPipe uses "
        "RDMA with a sendfile fallback for KV migration.",
        "Forced-NCCL makespan ≥5× the hierarchy; KV shards complete in "
        "milliseconds under the hierarchy; sendfile degrades gracefully.",
    ),
    ExperimentEntry(
        "sensitivity_alpha",
        "Sensitivity — Eq. 4 α (throughput-latency weight)",
        "benchmarks/bench_sensitivity.py",
        "(Design-choice sweep; no paper table.)",
        "Granularity selection is monotone-deeper in CV for every α; "
        "pure-latency and pure-throughput weightings pick different rungs.",
    ),
    ExperimentEntry(
        "sensitivity_sigma",
        "Sensitivity — Eq. 4 σ (adaptation sensitivity)",
        "benchmarks/bench_sensitivity.py",
        "(Design-choice sweep; no paper table.)",
        "Tight σ tracks the CV setpoints closely; large σ flattens "
        "selection.",
    ),
    ExperimentEntry(
        "sensitivity_eq11",
        "Sensitivity — Eq. 11 scaling-unit sigmoid",
        "benchmarks/bench_sensitivity.py",
        "(Design-choice sweep; no paper table.)",
        "Monotone in CV and queue occupancy; calm/empty systems scale "
        "with coarse units, bursty/congested ones with the finest.",
    ),
]

#: Where the reproduction's shape knowingly diverges from the paper, and why.
DIVERGENCES = """\
## Known divergences (and why they are expected)

* **Fig. 8 / Fig. 9 — AlpaServe's standing**: our AlpaServe provisions 75%
  of an estimated 3× peak *at the granularity its offline optimiser
  chose*, which on the simulated substrate amounts to roughly 2.25× mean
  capacity always-on.  Under extreme bursts (CV=8) that overprovisioned
  static fleet rides out spikes that FlexPipe must scale into, so
  AlpaServe's mean latency beats FlexPipe's in Fig. 9 (the paper shows
  FlexPipe ahead).  The gap traces to the substrate's batch-wave execution
  model: elastic capacity pays a load + startup latency on every burst
  while static capacity pays only idle cost — which Fig. 12 charges it
  for: FlexPipe delivers its goodput at a fraction of AlpaServe's GPU
  holding.
* **Queue-length aggregates at extreme CV** (Fig. 3b): MMPP burst
  workloads spend most wall-clock time quiet, so *time-averaged* queue
  statistics dilute at CV=8; congestion shows up instead in the stall-
  cycle blow-up (reproduced at ~46×, paper ~22×) and in the queue tail at
  moderate CV.  The paper's queue series is a loaded-period measurement.
* **Absolute latencies** are not comparable anywhere: the substrate
  serialises a batch's decode across stages (batch-wave granularity)
  rather than interleaving token iterations, which inflates execution
  time for generation-heavy requests uniformly across all systems.
* **Fig. 9 cross-model interference**: with both tenants deployed and the
  cluster near its anti-affinity capacity, burst-driven scale-outs force
  cross-model colocation, and the Eq. 9 penalty (quadratic in CV) then
  throttles exactly the system that scaled hardest.  This emergent
  behaviour is faithful to the paper's model but sized to our 82-GPU
  simulated cluster.
* **Fig. 11 absolute recovery times** are hundreds of ms rather than the
  paper's tens: the §9.3 stall methodology keys off completion-latency
  percentiles, and our batch-wave substrate quantises completions at
  batch granularity, so recovery resolves no finer than roughly one batch
  service time.  The orderings the assertions check (MuxServe degrading
  hard from CV=1→2, FlexPipe comparable to AlpaServe) survive; the
  paper's 9 ms headline does not reproduce at this substrate resolution.
* **Fig. 13 margins** are a few percent rather than 6-24%: all systems
  share one calibrated cost model, so prefill-latency differences come
  only from placement and queueing, not from the kernel-level effects the
  paper also captures.  The qualitative claim that survives is the trend:
  FlexPipe's advantage is largest on the largest model (OPT-66B), where
  it beats the static baseline on both mean prefill and P95.
"""


def render_experiments_md(results_dir: pathlib.Path | None = None) -> str:
    """Build the EXPERIMENTS.md text from bench outputs on disk."""
    results_dir = results_dir or DEFAULT_RESULTS_DIR
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every table and figure in the paper's evaluation, reproduced on the",
        "simulated substrate (see DESIGN.md for the substitution table). Per",
        "the reproduction brief we match *shapes and ratios*, not testbed-",
        "absolute numbers: the substrate is a calibrated simulator, not the",
        "authors' 82-GPU cluster.",
        "",
        "Regenerate the measured blocks with:",
        "",
        "```bash",
        "pytest benchmarks/ --benchmark-only   # writes benchmarks/_results/",
        "python -m repro report                # rebuilds this file",
        "```",
        "",
    ]
    missing = []
    for entry in ENTRIES:
        lines.append(f"## {entry.artefact}")
        lines.append("")
        lines.append(f"*Bench:* `{entry.bench}`")
        lines.append("")
        lines.append(f"**Paper:** {entry.paper_claim}")
        lines.append("")
        lines.append(f"**Shape target:** {entry.shape_target}")
        lines.append("")
        result_path = results_dir / f"{entry.result_stem}.txt"
        if result_path.exists():
            lines.append("**Measured:**")
            lines.append("")
            lines.append("```")
            lines.append(result_path.read_text().rstrip("\n"))
            lines.append("```")
        else:
            missing.append(entry.result_stem)
            lines.append(
                "**Measured:** _bench not yet run — execute the command above._"
            )
        lines.append("")
    if missing:
        lines.append(
            f"_Pending benches: {', '.join(missing)}._"
        )
        lines.append("")
    lines.append(DIVERGENCES)
    return "\n".join(lines)


def write_experiments_md(
    results_dir: pathlib.Path | None = None,
    output: pathlib.Path | None = None,
) -> pathlib.Path:
    """Render and write EXPERIMENTS.md; returns the output path."""
    output = output or DEFAULT_OUTPUT
    output.write_text(render_experiments_md(results_dir))
    return output
