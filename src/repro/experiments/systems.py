"""System factories with the paper's provisioning methodology.

Static systems (AlpaServe, MuxServe) provision for peak: ~75% of peak
capacity always-on (§3.1's "conservative scaling strategies").  Serverless
systems (FlexPipe, ServerlessLLM, Tetris) hold a smaller always-on share —
FlexPipe's headline is 30% — and rely on elasticity for the rest.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.baselines import (
    AlpaServeSystem,
    DistServeSystem,
    MuxServeSystem,
    ServerlessLLMSystem,
    TetrisSystem,
)
from repro.core.context import ServingContext
from repro.core.flexpipe import FlexPipeSystem
from repro.core.serving import ServingSystem
from repro.experiments.common import ExperimentConfig
from repro.refactoring.granularity import estimate_throughput

PEAK_MULTIPLIER = 3.0  # short-window peak rate over the mean at high CV
STATIC_FRACTION = 0.75  # always-on share for statically provisioned systems
SERVERLESS_FRACTION = 0.30  # FlexPipe's reduced always-on reservation
OPERATING_BATCH = 8  # planning batch (capacity planners do not assume max)


def replicas_for_fraction(
    ctx: ServingContext,
    cfg: ExperimentConfig,
    n_stages: int,
    fraction: float,
) -> int:
    """Replica count covering ``fraction`` of estimated peak demand.

    Capacity planning uses a conservative operating batch rather than the
    granularity's maximum: the latter is only reached during deep bursts.
    """
    profile = ctx.profile(cfg.spec)
    ladder = ctx.ladder(cfg.spec, (1, 2, 4, 8, 16, 32))
    counts = ladder.stage_counts
    stages = n_stages if n_stages in counts else min(
        counts, key=lambda c: abs(c - n_stages)
    )
    plan = ladder.plan(stages)
    throughput = estimate_throughput(
        profile,
        plan,
        batch=min(OPERATING_BATCH, plan.max_batch),
        prompt_tokens=cfg.prompt_median,
        output_tokens=cfg.output_median,
    )
    peak = cfg.qps * PEAK_MULTIPLIER
    return max(int(math.ceil(fraction * peak / throughput)), 1)


def make_flexpipe(
    ctx: ServingContext, cfg: ExperimentConfig, **overrides
) -> FlexPipeSystem:
    initial = overrides.pop(
        "initial_replicas",
        replicas_for_fraction(ctx, cfg, 4, SERVERLESS_FRACTION),
    )
    overrides.setdefault("batch_cap", cfg.batch_cap)
    return FlexPipeSystem(
        ctx,
        cfg.specs,
        initial_replicas=initial,
        prompt_tokens=cfg.prompt_median,
        output_tokens=cfg.output_median,
        slo_deadline=cfg.slo_latency,
        **overrides,
    )


def make_alpaserve(ctx: ServingContext, cfg: ExperimentConfig, **overrides) -> AlpaServeSystem:
    initial = overrides.pop("initial_replicas", None)
    overrides.setdefault("batch_cap", cfg.batch_cap)
    system = AlpaServeSystem(
        ctx,
        cfg.specs,
        initial_replicas=initial or 1,
        prompt_tokens=cfg.prompt_median,
        output_tokens=cfg.output_median,
        slo_deadline=cfg.slo_latency,
        **overrides,
    )
    if initial is None:
        # Provision for peak at the granularity the offline optimiser
        # actually chose (capacity planned at a different stage count
        # would systematically under- or over-provision).
        stages = system.plans[cfg.model].n_stages
        system.initial_replicas = replicas_for_fraction(
            ctx, cfg, stages, STATIC_FRACTION
        )
    return system


def make_muxserve(ctx: ServingContext, cfg: ExperimentConfig, **overrides) -> MuxServeSystem:
    initial = overrides.pop("initial_replicas", None)
    overrides.setdefault("batch_cap", cfg.batch_cap)
    system = MuxServeSystem(
        ctx,
        cfg.specs,
        initial_replicas=initial or 1,
        prompt_tokens=cfg.prompt_median,
        output_tokens=cfg.output_median,
        slo_deadline=cfg.slo_latency,
        **overrides,
    )
    if initial is None:
        stages = system.plans[cfg.model].n_stages
        system.initial_replicas = replicas_for_fraction(
            ctx, cfg, stages, STATIC_FRACTION
        )
    return system


def make_serverlessllm(
    ctx: ServingContext, cfg: ExperimentConfig, **overrides
) -> ServerlessLLMSystem:
    initial = overrides.pop(
        "initial_replicas",
        replicas_for_fraction(ctx, cfg, 4, SERVERLESS_FRACTION),
    )
    overrides.setdefault("batch_cap", cfg.batch_cap)
    return ServerlessLLMSystem(
        ctx,
        cfg.specs,
        initial_replicas=initial,
        prompt_tokens=cfg.prompt_median,
        output_tokens=cfg.output_median,
        slo_deadline=cfg.slo_latency,
        **overrides,
    )


def make_tetris(ctx: ServingContext, cfg: ExperimentConfig, **overrides) -> TetrisSystem:
    initial = overrides.pop(
        "initial_replicas",
        replicas_for_fraction(ctx, cfg, 1, SERVERLESS_FRACTION),
    )
    return TetrisSystem(
        ctx,
        cfg.specs,
        initial_replicas=initial,
        prompt_tokens=cfg.prompt_median,
        output_tokens=cfg.output_median,
        slo_deadline=cfg.slo_latency,
        **overrides,
    )


def make_distserve(
    ctx: ServingContext, cfg: ExperimentConfig, **overrides
) -> DistServeSystem:
    initial = overrides.pop(
        "initial_replicas",
        replicas_for_fraction(ctx, cfg, 4, STATIC_FRACTION),
    )
    overrides.setdefault("batch_cap", cfg.batch_cap)
    return DistServeSystem(
        ctx,
        cfg.specs,
        initial_replicas=initial,
        prompt_tokens=cfg.prompt_median,
        output_tokens=cfg.output_median,
        slo_deadline=cfg.slo_latency,
        **overrides,
    )


# The registry the paper-figure sweeps iterate.  DistServe is kept out of
# it (the paper's headline comparisons exclude it) but is exercised by
# the chaos audit via ``repro.validation.chaos.CHAOS_SYSTEMS``.
SYSTEM_FACTORIES: dict[str, Callable[..., ServingSystem]] = {
    "FlexPipe": make_flexpipe,
    "AlpaServe": make_alpaserve,
    "MuxServe": make_muxserve,
    "ServerlessLLM": make_serverlessllm,
    "Tetris": make_tetris,
}


def make_system(name: str, ctx: ServingContext, cfg: ExperimentConfig, **overrides):
    try:
        factory = SYSTEM_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; available: {sorted(SYSTEM_FACTORIES)}"
        ) from None
    return factory(ctx, cfg, **overrides)
