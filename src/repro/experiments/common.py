"""Shared experiment harness.

Every run builds a fresh simulator + fragmented cluster from the same
seed, deploys one serving system, lets it settle (initial loads), replays
the seeded workload, then allows a drain window before summarising.  Seeded
random streams are per-subsystem, so two systems compared under the same
config observe byte-identical arrival processes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.cluster.cluster import Cluster, make_paper_cluster, make_small_cluster
from repro.cluster.fragmentation import FragmentationModel
from repro.core.context import ServingContext
from repro.core.serving import ServingSystem
from repro.metrics.collector import RunSummary
from repro.models.zoo import ModelSpec, get_model
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.workloads.arrivals import ArrivalProcess, MMPPArrivals, make_arrivals
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.requests import (
    LengthDistribution,
    RequestSampler,
    rid_namespace,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One workload scenario (model + arrival process + horizon)."""

    model: str = "OPT-66B"
    qps: float = 20.0  # the paper's baseline QPS (§9.1)
    cv: float = 1.0
    duration: float = 240.0
    seed: int = 0
    slo_latency: float = 10.0
    settle_time: float = 150.0  # initial loads complete before traffic starts
    warmup_time: float = 60.0  # traffic before the measured epoch begins
    drain_time: float = 40.0
    prompt_median: int = 128
    output_median: int = 8
    batch_cap: int = 32  # uniform serving batch limit across systems
    cluster: str = "paper"  # "paper" | "small"
    fragmentation: bool = True
    # Sustained MMPP bursts (the "varying peak loads" of §9.1) rather than
    # renewal-process micro-clumping; applies for cv > 1.
    use_mmpp: bool = True
    burst_cycle: float = 60.0
    # Optional second tenant: gives GPU-sharing systems (MuxServe, Tetris)
    # something to multiplex with, as in the paper's multi-model cluster.
    background_model: str | None = None
    background_qps: float = 6.0
    # Additional co-resident tenants beyond the primary (and optional
    # background) model: the scenario engine and multi-model chaos cases
    # deploy a whole fleet through the same factories.
    extra_models: tuple[str, ...] = ()
    max_events: int = 30_000_000

    @property
    def spec(self) -> ModelSpec:
        return get_model(self.model)

    @property
    def specs(self) -> list[ModelSpec]:
        out = [get_model(self.model)]
        if self.background_model is not None:
            out.append(get_model(self.background_model))
        for name in self.extra_models:
            if name != self.model and name != self.background_model:
                out.append(get_model(name))
        return out


def build_environment(
    cfg: ExperimentConfig,
    *,
    server_indices=None,
) -> tuple[Simulator, Cluster, RandomStreams, FragmentationModel | None]:
    """Build one run's world.  ``server_indices`` (sharded execution)
    restricts the cluster to that subset of the named topology's servers —
    same names, racks and RDMA striping as the full build."""
    sim = Simulator()
    streams = RandomStreams(cfg.seed)
    if server_indices is not None:
        from repro.cluster.cluster import make_cluster_subset

        cluster = make_cluster_subset(sim, cfg.cluster, server_indices)
    elif cfg.cluster == "paper":
        cluster = make_paper_cluster(sim)
    elif cfg.cluster == "small":
        cluster = make_small_cluster(sim)
    else:
        raise ValueError(f"unknown cluster kind {cfg.cluster!r}")
    fragmentation = None
    if cfg.fragmentation:
        fragmentation = FragmentationModel(sim, cluster, streams)
        fragmentation.warm_up()
    return sim, cluster, streams, fragmentation


def make_workload_sampler(
    cfg: ExperimentConfig,
    streams: RandomStreams,
    model: str | None = None,
    tag: str = "",
    slo_class: str | None = None,
) -> RequestSampler:
    """Build one tenant's request sampler.

    ``slo_class`` stamps requests with a QoS class and replaces the
    config's SLO latency with the class's own target, so a classed
    tenant's goodput is judged against the deadline its class promises.
    """
    slo_latency = cfg.slo_latency
    if slo_class is not None:
        from repro.qos.classes import get_slo_class

        slo_latency = get_slo_class(slo_class).latency_target
    return RequestSampler(
        model or cfg.model,
        streams.stream(f"requests{tag}"),
        prompt=LengthDistribution(median=cfg.prompt_median, sigma=0.6, lo=16, hi=4096),
        output=LengthDistribution(median=cfg.output_median, sigma=0.7, lo=1, hi=256),
        slo_latency=slo_latency,
        # Tagged samplers (background/extra tenants) mint rids in their own
        # namespace so multi-tenant runs keep ids globally unique.
        rid_base=rid_namespace(tag),
        slo_class=slo_class,
    )


def make_arrival_process(
    cfg: ExperimentConfig, streams: RandomStreams, tag: str = ""
) -> ArrivalProcess:
    rng = streams.stream(f"arrivals{tag}")
    if cfg.use_mmpp and cfg.cv > 1.0:
        return MMPPArrivals.with_cv(cfg.qps, cfg.cv, rng, mean_cycle=cfg.burst_cycle)
    return make_arrivals(cfg.qps, cfg.cv, rng)


def run_system(
    system_factory: Callable[[ServingContext, ExperimentConfig], ServingSystem],
    cfg: ExperimentConfig,
) -> tuple[RunSummary, ServingSystem]:
    """Run one system under one workload; returns (summary, system).

    The system object is returned for experiment-specific introspection
    (refactor counts, warm-start rates, per-request records).
    """
    sim, cluster, streams, fragmentation = build_environment(cfg)
    ctx = ServingContext.create(sim, cluster, streams)
    system = system_factory(ctx, cfg)
    system.start()
    sim.run(until=cfg.settle_time, max_events=cfg.max_events)
    # The measured epoch begins after a traffic warm-up, so steady-state
    # numbers are not polluted by initial scale-to-fit transients.
    sim.schedule(cfg.warmup_time, system.reset_measurement_epoch)
    generator = WorkloadGenerator(
        sim,
        make_arrival_process(cfg, streams),
        make_workload_sampler(cfg, streams),
        system.submit,
        cfg.duration,
    )
    if cfg.background_model is not None:
        WorkloadGenerator(
            sim,
            make_arrivals(cfg.background_qps, cfg.cv, streams.stream("arrivals_bg")),
            make_workload_sampler(cfg, streams, model=cfg.background_model, tag="_bg"),
            system.submit,
            cfg.duration,
        )
    horizon = cfg.settle_time + cfg.duration + cfg.drain_time
    sim.run(until=horizon, max_events=cfg.max_events)
    system.shutdown()
    if fragmentation is not None:
        fragmentation.stop()
    measured = max(cfg.duration - cfg.warmup_time, 1.0) + cfg.drain_time
    summary = system.summarize(measured)
    return summary, system


def run_comparison(
    factories: dict[str, Callable[[ServingContext, ExperimentConfig], ServingSystem]],
    cfg: ExperimentConfig,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
) -> dict[str, RunSummary]:
    """Run every system against an identical seeded workload.

    Registered factories fan out through the parallel runner (and its
    result cache); ad-hoc callables — closures a test or figure cooked up
    — run in-process, since they cannot cross the pool boundary.
    """
    from repro.experiments.runner import as_task, make_runner

    exp_runner = make_runner(runner, jobs=jobs, use_cache=use_cache)
    entries = [
        (name, factory, as_task(name, factory, cfg))
        for name, factory in factories.items()
    ]
    results = iter(
        exp_runner.run_tasks([task for _, _, task in entries if task is not None])
    )
    out: dict[str, RunSummary] = {}
    for name, factory, task in entries:
        if task is None:
            out[name], _ = run_system(factory, cfg)
        else:
            out[name] = next(results).summary
    return out


def sweep_cv(
    factories: dict[str, Callable],
    cfg: ExperimentConfig,
    cvs: tuple[float, ...],
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
) -> dict[float, dict[str, RunSummary]]:
    """The common CV-sweep pattern of Figs. 3, 4, 8, 10, 11, 12.

    The whole (cv x system) grid is flattened into one runner batch so a
    4-way pool stays saturated across CV levels, not just within one.
    """
    from repro.experiments.runner import as_task, make_runner

    exp_runner = make_runner(runner, jobs=jobs, use_cache=use_cache)
    grid = [
        (cv, name, factory, as_task(name, factory, replace(cfg, cv=cv)))
        for cv in cvs
        for name, factory in factories.items()
    ]
    results = iter(
        exp_runner.run_tasks([task for *_, task in grid if task is not None])
    )
    out: dict[float, dict[str, RunSummary]] = {cv: {} for cv in cvs}
    for cv, name, factory, task in grid:
        if task is None:
            out[cv][name], _ = run_system(factory, replace(cfg, cv=cv))
        else:
            out[cv][name] = next(results).summary
    return out
