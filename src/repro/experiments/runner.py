"""Parallel experiment runner with an on-disk result cache.

Every paper figure replays the same seeded workload against 4-6 systems;
the runs are independent (per-run ``Simulator`` + ``RandomStreams`` built
from the config seed), so they fan out across processes with byte-identical
results to a sequential sweep.  A content-addressed cache keyed by the
experiment config, the system + overrides, and a fingerprint of the
``repro`` source tree means re-running a figure only recomputes cells whose
inputs actually changed — edit one baseline and only its runs rerun.

Environment knobs (CLI flags take precedence):

* ``REPRO_JOBS``       — default worker count (``1`` = sequential);
* ``REPRO_CACHE_DIR``  — cache location (default ``<repo>/.runcache``);
* ``REPRO_NO_CACHE``   — set (non-empty) to disable the cache.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable

from repro.experiments.common import ExperimentConfig, run_system
from repro.metrics.collector import RunSummary

_CACHE_VERSION = 1


# ----------------------------------------------------------------------
# Task description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunTask:
    """One (system, config) cell of a figure sweep.

    ``system`` names a factory in ``SYSTEM_FACTORIES``; ``overrides`` are
    keyword arguments forwarded to it (sorted tuple so the task hashes).
    ``extract`` optionally names a ``module:function`` run on
    ``(task, summary, system)`` inside the worker to pull extra *picklable*
    data out of the live system (per-request records, scaling events) that
    the system object itself — full of simulator state — cannot carry
    across the process boundary.
    """

    system: str
    cfg: ExperimentConfig
    overrides: tuple[tuple[str, Any], ...] = ()
    extract: str | None = None

    @classmethod
    def create(
        cls,
        system: str,
        cfg: ExperimentConfig,
        overrides: dict[str, Any] | None = None,
        extract: str | None = None,
    ) -> "RunTask":
        return cls(system, cfg, tuple(sorted((overrides or {}).items())), extract)


@dataclass
class RunResult:
    task: RunTask
    summary: RunSummary
    extra: Any = None
    cached: bool = False


def as_task(
    name: str, factory: Callable, cfg: ExperimentConfig
) -> RunTask | None:
    """Map a ``(name, factory)`` pair back to a registry task, if possible.

    ``run_comparison`` accepts arbitrary factory callables; only the ones
    that *are* the registered factories can cross a process boundary (and
    be cache-keyed by name).  Others run in-process.
    """
    from repro.experiments.systems import SYSTEM_FACTORIES

    if SYSTEM_FACTORIES.get(name) is factory:
        return RunTask.create(name, cfg)
    return None


# ----------------------------------------------------------------------
# Worker entry point (must be module-level for pickling)
# ----------------------------------------------------------------------
def _resolve_extractor(spec: str) -> Callable:
    module_name, _, func_name = spec.partition(":")
    if not func_name:
        raise ValueError(f"extract spec must be 'module:function', got {spec!r}")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def execute_task(task: RunTask) -> tuple[RunSummary, Any]:
    """Run one task to completion; the worker-side body of the pool."""
    from repro.experiments.systems import SYSTEM_FACTORIES

    factory = SYSTEM_FACTORIES[task.system]
    overrides = dict(task.overrides)
    summary, system = run_system(
        lambda ctx, cfg: factory(ctx, cfg, **overrides), task.cfg
    )
    extra = None
    if task.extract is not None:
        extra = _resolve_extractor(task.extract)(task, summary, system)
    return summary, extra


# ----------------------------------------------------------------------
# Content-addressed result cache
# ----------------------------------------------------------------------
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file: the cache's invalidation key.

    Any edit anywhere in the package invalidates all cached results —
    coarse, but sound: no stale figure can survive a code change.  Not
    memoized at module level on purpose: each ``ExperimentRunner``
    snapshots it once at construction, so a long-lived process that edits
    code and builds a fresh runner gets a fresh fingerprint.
    """
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # src/repro/experiments/runner.py -> repo root is four levels up when
    # running from a source checkout; installed packages land in a user
    # cache dir instead of site-packages' parent.
    root = Path(__file__).resolve().parents[3]
    if (root / "setup.py").exists() or (root / ".git").exists():
        return root / ".runcache"
    base = os.environ.get("XDG_CACHE_HOME")
    return (Path(base) if base else Path.home() / ".cache") / "repro-flexpipe"


def cache_key(task: RunTask, fingerprint: str | None = None) -> str:
    payload = {
        "version": _CACHE_VERSION,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
        "system": task.system,
        "overrides": list(task.overrides),
        "extract": task.extract,
        "cfg": asdict(task.cfg),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Pickle-per-key cache of ``(value, reserved)`` pairs.

    Figure cells store ``value = (RunSummary, extra)``; scenario cells
    store their report.  The second slot is reserved (always ``None``)
    so a ``None`` value stays distinguishable from a miss.
    """

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> tuple[RunSummary, Any] | None:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None  # missing or unreadable: treat as a miss

    def put(self, key: str, value: tuple[RunSummary, Any]) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_name(path.name + f".tmp{os.getpid()}")
            try:
                with tmp.open("wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                tmp.replace(path)  # atomic: concurrent writers settle on one
            except BaseException:
                tmp.unlink(missing_ok=True)  # no orphan on a failed write
                raise
        except OSError:
            pass  # the cache is best-effort: an unwritable dir must not kill a run

    def clear(self) -> int:
        """Delete every cached result (and stray tmp files); returns the
        number of results removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in self.root.glob("*.pkl.tmp*"):
                path.unlink(missing_ok=True)
        return removed


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
def default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(int(env), 1)
    return 1


class ExperimentRunner:
    """Fans independent runs across processes, consulting the cache first.

    Results are position-stable and byte-identical to a sequential sweep:
    each run seeds its own ``RandomStreams``, so execution order cannot
    leak between cells.
    """

    def __init__(
        self,
        jobs: int | None = None,
        use_cache: bool | None = None,
        cache_dir: Path | str | None = None,
    ):
        self.jobs = max(jobs if jobs is not None else default_jobs(), 1)
        if use_cache is None:
            use_cache = not os.environ.get("REPRO_NO_CACHE")
        self.use_cache = use_cache
        self.cache = ResultCache(cache_dir)
        # Snapshotted once per runner: a long-lived process that edits the
        # source and builds a new runner re-keys its cache entries.
        self._fingerprint = code_fingerprint() if self.use_cache else ""
        self._pool: ProcessPoolExecutor | None = None
        self.simulations_run = 0
        self.cache_hits = 0

    def _get_pool(self) -> ProcessPoolExecutor:
        """Lazily create — and then keep — the worker pool.

        Reusing workers across ``run_tasks`` batches preserves their warm
        module-level graph/profile/ladder caches (the Eq. 2 DP cold start)
        instead of re-forking a cold pool per figure.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the interpreter's own
        exit handling covers runners that are never closed explicitly)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ------------------------------------------------------------------
    def run_tasks(self, tasks: list[RunTask]) -> list[RunResult]:
        """Run every task, returning results in task order."""
        pairs = self._cached_map(execute_task, tasks, cache_key)
        return [
            RunResult(task, summary, extra, cached=cached)
            for task, ((summary, extra), cached) in zip(tasks, pairs)
        ]

    def run_task(self, task: RunTask) -> RunResult:
        return self.run_tasks([task])[0]

    def map(self, fn: Callable, items: list) -> list:
        """Fan an arbitrary pure function over items on this runner's pool.

        Generic counterpart of :meth:`run_tasks` for work that is not a
        figure cell (e.g. chaos-audit cases): order-stable, no caching.
        ``fn`` and every item must be picklable when ``jobs > 1``.
        """
        items = list(items)
        if self.jobs > 1 and len(items) > 1:
            return list(self._get_pool().map(fn, items))
        return [fn(item) for item in items]

    def cached_map(
        self,
        fn: Callable,
        items: list,
        key_fn: Callable,
        *,
        cacheable: Callable[[Any], bool] | None = None,
    ) -> list:
        """Like :meth:`map`, but consulting the result cache per item.

        ``key_fn(item, fingerprint)`` must return the item's content
        hash.  Figure cells (:meth:`run_tasks`) and ad-hoc workloads
        (scenario cells) both run through the same underlying protocol,
        so fingerprint epoch, hit/run counters and get/put ordering live
        in exactly one place.  ``cacheable(value)`` may veto persisting
        an individual result (e.g. a report describing a transient
        harness crash, which must re-execute next time).
        """
        return [
            value
            for value, _ in self._cached_map(
                fn, items, key_fn, cacheable=cacheable
            )
        ]

    def _cached_map(
        self,
        fn: Callable,
        items: list,
        key_fn: Callable,
        *,
        cacheable: Callable[[Any], bool] | None = None,
    ) -> list[tuple[Any, bool]]:
        """The cache protocol: ``(value, was_cached)`` per item, in order.

        Values round-trip on disk as ``(value, None)`` pairs (the second
        slot is reserved), so a legitimately-``None`` value is still
        distinguishable from a cache miss.
        """
        items = list(items)
        results: list[tuple[Any, bool] | None] = [None] * len(items)
        pending: list[int] = []
        for i, item in enumerate(items):
            if self.use_cache:
                hit = self.cache.get(key_fn(item, self._fingerprint))
                if hit is not None:
                    results[i] = (hit[0], True)
                    self.cache_hits += 1
                    continue
            pending.append(i)
        if pending:
            outcomes = self.map(fn, [items[i] for i in pending])
            for i, value in zip(pending, outcomes):
                self.simulations_run += 1
                results[i] = (value, False)
                if self.use_cache and (cacheable is None or cacheable(value)):
                    self.cache.put(
                        key_fn(items[i], self._fingerprint), (value, None)
                    )
        return results  # type: ignore[return-value]


def make_runner(
    runner: ExperimentRunner | None = None,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
) -> ExperimentRunner:
    """Use the caller-provided runner, or build one from the knobs."""
    if runner is not None:
        return runner
    return ExperimentRunner(jobs=jobs, use_cache=use_cache)


# ----------------------------------------------------------------------
# Persistent stateful workers (sharded simulation hosts)
# ----------------------------------------------------------------------
class WorkerError(RuntimeError):
    """An exception raised inside a persistent worker, re-raised here."""


def _worker_main(conn, factory: Callable, args: tuple) -> None:
    """Worker body: build one object, then serve method calls over the pipe."""
    try:
        obj = factory(*args)
        conn.send(("ok", None))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))
        conn.close()
        return
    while True:
        try:
            request = conn.recv()
        except EOFError:
            return  # parent went away: exit quietly
        if request is None:
            conn.close()
            return
        method, call_args = request
        try:
            conn.send(("ok", getattr(obj, method)(*call_args)))
        except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            )


class PersistentWorkerPool:
    """One long-lived process per entry, each hosting a *stateful* object.

    ``ProcessPoolExecutor.map`` fans out pure functions; sharded
    simulation needs the opposite shape — K live simulators that keep
    their heaps between synchronization windows.  Each worker builds its
    object from ``factory(*args)`` once, then serves ``(method, args)``
    calls over a private pipe.  ``call_all`` writes every request before
    reading any reply, so workers genuinely run concurrently.

    The fork start method is preferred: factories then capture their
    closure state for free (no pickling of the factory itself) and
    workers inherit warm module caches.
    """

    def __init__(self, factories: list[tuple[Callable, tuple]]):
        if not factories:
            raise ValueError("need at least one worker factory")
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._conns = []
        self._procs = []
        try:
            for factory, args in factories:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child, factory, args), daemon=True
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
            for conn in self._conns:
                self._recv(conn)  # construction ack (or error)
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return len(self._procs)

    def _recv(self, conn) -> Any:
        try:
            status, value = conn.recv()
        except EOFError as exc:
            raise WorkerError("worker died without replying") from exc
        if status == "error":
            raise WorkerError(value)
        return value

    def call_all(self, method: str, args_list: list[tuple]) -> list:
        """Invoke ``method(*args)`` on every worker's object, in parallel."""
        if len(args_list) != len(self._conns):
            raise ValueError(
                f"expected {len(self._conns)} argument tuples, "
                f"got {len(args_list)}"
            )
        for conn, args in zip(self._conns, args_list):
            conn.send((method, args))
        return [self._recv(conn) for conn in self._conns]

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
