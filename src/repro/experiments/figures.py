"""Experiment drivers: one function per table/figure of the paper.

Each driver runs the relevant simulation(s) and returns printable rows;
the benchmarks under ``benchmarks/`` wrap these with pytest-benchmark and
paper-vs-measured reporting.  EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations


import numpy as np

from repro.core.context import ServingContext
from repro.experiments.common import ExperimentConfig, build_environment
from repro.experiments.runner import RunTask, make_runner
from repro.experiments.systems import (
    SERVERLESS_FRACTION,
    STATIC_FRACTION,
    SYSTEM_FACTORIES,
)
from repro.models.costs import CostModel
from repro.models.zoo import OPT_66B
from repro.partitioning.batch_scaling import activation_bytes
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.workloads.cv import count_cv
from repro.workloads.traces import DiurnalTrace, DiurnalTraceConfig

# Shorter horizons for the multi-run sweeps so the full benchmark suite
# stays tractable; single-run experiments use longer horizons.
SWEEP = dict(duration=180.0, settle_time=150.0, warmup_time=40.0, drain_time=30.0)

# Every multi-run driver below accepts (jobs, use_cache, runner): the runs
# fan out across processes through repro.experiments.runner and land in its
# on-disk cache, so re-rendering a figure recomputes nothing unless the
# config or the code changed.


# ----------------------------------------------------------------------
# Table 1 / Fig. 2 — cluster fragmentation statistics
# ----------------------------------------------------------------------
def table1_rows(seed: int = 0) -> dict:
    """Simulated cluster utilization statistics vs the paper's Table 1."""
    sim = Simulator()
    cfg = ExperimentConfig(seed=seed)
    sim2, cluster, streams, frag = build_environment(cfg)
    # Let the churn run a while and sample repeatedly, like a fleet scrape.
    sm, mem = [], []
    for _ in range(20):
        sim2.run(until=sim2.now + 30.0)
        sm.extend(frag.sm_utilization_samples())
        mem.extend(frag.memory_utilization_samples())
    frag.stop()
    sm_arr, mem_arr = np.asarray(sm), np.asarray(mem)
    return {
        "sm_mean": float(sm_arr.mean()),
        "sm_p50": float(np.percentile(sm_arr, 50)),
        "sm_p95": float(np.percentile(sm_arr, 95)),
        "sm_10_30": float(((sm_arr >= 10) & (sm_arr <= 30)).mean() * 100),
        "mem_mean": float(mem_arr.mean()),
        "mem_p50": float(np.percentile(mem_arr, 50)),
        "mem_p95": float(np.percentile(mem_arr, 95)),
        "subscription": cluster.subscription_rate() * 100,
        "p_free_gpu": cluster.free_gpu_probability() * 100,
        "p_colocated4": cluster.colocated_probability(4) * 100,
    }


# ----------------------------------------------------------------------
# Table 2 — pipeline granularity profile (calibration check)
# ----------------------------------------------------------------------
TABLE2_PAPER = {
    4: (47.14, 69.94, 6.3, 128),
    8: (13.05, 36.63, 14.7, 256),
    16: (9.19, 18.67, 31.5, 512),
    32: (5.43, 9.67, 65.1, 1024),
}


def table2_rows() -> list[dict]:
    """Load/compute/comm/max-batch per granularity for OPT-66B."""
    cm = CostModel()
    sim = Simulator()
    streams = RandomStreams(0)
    from repro.cluster.cluster import make_small_cluster

    ctx = ServingContext.create(sim, make_small_cluster(sim), streams)
    ladder = ctx.ladder(OPT_66B, (4, 8, 16, 32))
    profile = ctx.profile(OPT_66B)
    rows = []
    for k in (4, 8, 16, 32):
        plan = ladder.plan(k)
        biggest = max(s.param_bytes for s in plan.stages)
        compute = max(
            profile.stage_compute_time(s.profile, 1) for s in plan.stages
        )
        act = activation_bytes(
            128 * plan.stages[0].profile.boundary_act_bytes_per_token, 128
        )
        paper = TABLE2_PAPER[k]
        rows.append(
            {
                "stages": k,
                "load_s": cm.cold_load_time(biggest),
                "compute_ms": compute * 1e3,
                "comm_ms": (k - 1) * cm.hop_time(act) * 1e3,
                "max_batch": plan.max_batch,
                "paper_load": paper[0],
                "paper_compute": paper[1],
                "paper_comm": paper[2],
                "paper_batch": paper[3],
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 1 — CV depends on the measurement window
# ----------------------------------------------------------------------
def fig1_rows(seed: int = 0, duration_hours: float = 24.0) -> list[dict]:
    rng = RandomStreams(seed).stream("trace")
    trace = DiurnalTrace(rng, DiurnalTraceConfig())
    ts = trace.generate(duration_hours * 3600.0)
    rows = []
    for window, label in ((180.0, "180s"), (3 * 3600.0, "3h"), (12 * 3600.0, "12h")):
        rows.append({"window": label, "cv": count_cv(ts, window)})
    values = [r["cv"] for r in rows]
    spread = max(values) / max(min(values), 1e-9)
    rows.append({"window": "max/min spread", "cv": spread})
    return rows


# ----------------------------------------------------------------------
# Fig. 3 — static pipeline vs request-distribution CV
# ----------------------------------------------------------------------
def fig3_rows(
    cvs=(0.1, 1.0, 2.0, 4.0, 8.0),
    seed: int = 0,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
) -> list[dict]:
    """A static 4-stage OPT-66B deployment under growing burstiness."""
    # historical_cv=1.0 is the Eq. 4 setpoint of a 4-stage pipeline
    # ((eta/4)^2), i.e. the paper's static 4-stage configuration.
    tasks = [
        RunTask.create(
            "AlpaServe",
            ExperimentConfig(cv=cv, seed=seed, **SWEEP),
            {"n_stages": 4, "historical_cv": 1.0},
        )
        for cv in cvs
    ]
    results = make_runner(runner, jobs=jobs, use_cache=use_cache).run_tasks(tasks)
    rows = []
    for cv, result in zip(cvs, results):
        summary = result.summary
        rows.append(
            {
                "cv": cv,
                "goodput_rps": summary.goodput / summary.duration,
                "queue_len": summary.mean_queue_length,
                # Burst congestion shows in the queue's upper tail: MMPP
                # workloads alternate quiet and burst phases, so the time
                # average dilutes what the paper's loaded-period queue shows.
                "queue_p95": summary.p95_queue_length,
                "stall_cycle_s": summary.stall_cycle,
                "mean_latency": summary.mean_latency,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 4 — latency of 4/8/16-stage pipelines across CVs
# ----------------------------------------------------------------------
def fig4_rows(
    cvs=(0.1, 1.0, 2.0, 4.0),
    stage_counts=(4, 8, 16),
    seed: int = 0,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
):
    grid = [(cv, k) for cv in cvs for k in stage_counts]
    tasks = [
        RunTask.create(
            "AlpaServe",
            ExperimentConfig(cv=cv, seed=seed, **SWEEP),
            {"n_stages": k, "historical_cv": (k / 4.0) ** 2},
        )
        for cv, k in grid
    ]
    results = make_runner(runner, jobs=jobs, use_cache=use_cache).run_tasks(tasks)
    return [
        {
            "cv": cv,
            "stages": k,
            "mean_latency": result.summary.mean_latency,
            "p95": result.summary.latency_percentiles[95],
        }
        for (cv, k), result in zip(grid, results)
    ]


# ----------------------------------------------------------------------
# Fig. 8 / 10 / 11 / 12 — the five-system CV sweep
# ----------------------------------------------------------------------
def system_sweep(
    cvs=(1.0, 2.0, 4.0),
    systems: tuple[str, ...] | None = None,
    seed: int = 0,
    background_model: str | None = "BERT-21B",
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
) -> dict[float, dict[str, object]]:
    """Run the comparison systems across CVs; reused by Figs. 8, 10-12.

    The full (cv x system) grid goes through the parallel runner as one
    batch — 15 independent full-cluster simulations.
    """
    chosen = systems or tuple(SYSTEM_FACTORIES)
    grid = [(cv, name) for cv in cvs for name in chosen]
    tasks = [
        RunTask.create(
            name,
            ExperimentConfig(
                cv=cv, seed=seed, background_model=background_model, **SWEEP
            ),
        )
        for cv, name in grid
    ]
    results = make_runner(runner, jobs=jobs, use_cache=use_cache).run_tasks(tasks)
    out: dict[float, dict[str, object]] = {cv: {} for cv in cvs}
    for (cv, name), result in zip(grid, results):
        out[cv][name] = result.summary
    return out


def fig8_rows(sweep) -> list[dict]:
    rows = []
    for cv, results in sweep.items():
        for name, s in results.items():
            rows.append(
                {
                    "cv": cv,
                    "system": name,
                    "response_s": s.mean_latency,
                    "queue_s": s.breakdown.queue,
                    "exec_s": s.breakdown.execution,
                    "comm_s": s.breakdown.communication,
                    "goodput_pct": s.goodput_rate * 100,
                }
            )
    return rows


def fig10_rows(sweep) -> list[dict]:
    rows = []
    for cv, results in sweep.items():
        for name in ("FlexPipe", "ServerlessLLM", "Tetris"):
            if name not in results:
                continue
            ps = results[name].latency_percentiles
            rows.append(
                {"cv": cv, "system": name, **{f"p{q}": ps[q] for q in (50, 75, 90, 95, 99)}}
            )
    return rows


def fig11_rows(sweep) -> list[dict]:
    return [
        {
            "cv": cv,
            "system": name,
            "median_recovery_ms": s.median_recovery * 1e3,
        }
        for cv, results in sweep.items()
        for name, s in results.items()
    ]


def fig12_rows(sweep) -> list[dict]:
    return [
        {
            "cv": cv,
            "system": name,
            "gpu_util_pct": s.gpu_utilization * 100,
            "goodput_rps": s.goodput / s.duration,
            "efficiency": (s.goodput / s.duration) / max(s.gpu_utilization * 100, 1e-9),
        }
        for cv, results in sweep.items()
        for name, s in results.items()
    ]


# ----------------------------------------------------------------------
# Fig. 9 — burst absorption timeline at CV=8
# ----------------------------------------------------------------------
def extract_completed_records(task, summary, system) -> list[tuple]:
    """Worker-side extractor: per-request (arrival, completion, latency).

    Runs inside the pool worker where the live system object exists; only
    these plain tuples cross the process boundary (and enter the cache).
    """
    return [
        (r.arrival_time, r.completion_time, r.latency)
        for r in system.metrics.records
        if r.completed
    ]


def fig9_series(
    seed: int = 0,
    window: float = 15.0,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
) -> dict:
    # The paper plots a 300 s slice of a long-running (warm) deployment, so
    # traffic runs 150 s before the plotted window opens; the second tenant
    # gives MuxServe something to multiplex with, as in the paper's cluster.
    cfg = ExperimentConfig(
        cv=8.0, seed=seed, duration=450.0, settle_time=150.0,
        warmup_time=150.0, drain_time=30.0, background_model="BERT-21B",
    )
    names = ("FlexPipe", "AlpaServe", "MuxServe")
    tasks = [
        RunTask.create(
            name, cfg, extract="repro.experiments.figures:extract_completed_records"
        )
        for name in names
    ]
    results = make_runner(runner, jobs=jobs, use_cache=use_cache).run_tasks(tasks)
    out = {}
    start = cfg.settle_time + cfg.warmup_time
    for name, result in zip(names, results):
        summary = result.summary
        records = sorted(
            (r for r in result.extra if r[1] >= start), key=lambda r: r[1]
        )
        buckets: dict[int, list[float]] = {}
        arrivals: dict[int, int] = {}
        for arrival_time, completion_time, latency in records:
            b = int((completion_time - start) // window)
            buckets.setdefault(b, []).append(latency)
            ab = int((arrival_time - start) // window)
            if ab >= 0:
                arrivals[ab] = arrivals.get(ab, 0) + 1
        out[name] = {
            "rt_series": {b: float(np.mean(v)) for b, v in sorted(buckets.items())},
            "arrival_counts": dict(sorted(arrivals.items())),
            "mean_latency": summary.mean_latency,
            "p99": summary.latency_percentiles[99],
        }
    return out


# ----------------------------------------------------------------------
# Fig. 13 — prefill latency across model scales
# ----------------------------------------------------------------------
def fig13_rows(
    seed: int = 0,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
) -> list[dict]:
    models = ("WHISPER-9B", "LLAMA2-7B", "BERT-21B", "OPT-66B")
    systems = ("FlexPipe", "AlpaServe", "ServerlessLLM")
    grid = [(model, name) for model in models for name in systems]
    tasks = [
        RunTask.create(
            name,
            ExperimentConfig(model=model, cv=2.0, seed=seed, qps=12.0, **SWEEP),
        )
        for model, name in grid
    ]
    results = make_runner(runner, jobs=jobs, use_cache=use_cache).run_tasks(tasks)
    return [
        {
            "model": model,
            "system": name,
            "prefill_s": result.summary.mean_prefill_latency,
            "p95_latency": result.summary.latency_percentiles[95],
        }
        for (model, name), result in zip(grid, results)
    ]


# ----------------------------------------------------------------------
# §9.6 — production case study: reservation, wait time, init latency
# ----------------------------------------------------------------------
def extract_initial_init_times(task, summary, system) -> list[float]:
    """Worker-side extractor: init durations of the initial replica loads."""
    return [
        e.init_time
        for e in system.metrics.events
        if e.kind == "initial" and e.init_time > 0
    ]


def case_study_rows(
    seed: int = 0,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
) -> dict:
    """§9.6: always-on reservation, service parity, wait and init latency.

    "Reservation" is the provisioning policy's always-on share of peak
    capacity (the paper's 75% -> 30%); what the experiment must *measure*
    is that the reduced reservation does not compromise service quality,
    and that elastic fine-grained scale-outs initialise much faster than a
    cold whole-pipeline deployment.
    """
    cfg = ExperimentConfig(cv=4.0, seed=seed, **SWEEP)
    flex_result, static_result = make_runner(
        runner, jobs=jobs, use_cache=use_cache
    ).run_tasks(
        [
            RunTask.create("FlexPipe", cfg),
            RunTask.create(
                "AlpaServe",
                cfg,
                extract="repro.experiments.figures:extract_initial_init_times",
            ),
        ]
    )
    flex, static = flex_result.summary, static_result.summary
    # Cold whole-pipeline deployment time, measured from the static
    # system's own initial loads (the baseline every elastic scale-out of
    # FlexPipe is compared against).
    initial_inits = static_result.extra
    cold_init = float(np.mean(initial_inits)) if initial_inits else 0.0
    init_reduction = 1.0 - flex.mean_init_time / cold_init if cold_init else 0.0
    return {
        "flex_reserved_frac": SERVERLESS_FRACTION,
        "static_reserved_frac": STATIC_FRACTION,
        "flex_gpus": flex.gpus_used,
        "static_gpus": static.gpus_used,
        "flex_alloc_wait": flex.mean_alloc_wait,
        "static_alloc_wait": static.mean_alloc_wait,
        "flex_init": flex.mean_init_time,
        "cold_init": cold_init,
        "init_reduction": init_reduction,
        "flex_warm_rate": flex.warm_start_rate,
        "flex_goodput": flex.goodput_rate,
        "static_goodput": static.goodput_rate,
    }


# ----------------------------------------------------------------------
# Ablations — each FlexPipe mechanism removed in turn
# ----------------------------------------------------------------------
def ablation_rows(
    seed: int = 0,
    cv: float = 4.0,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    runner=None,
) -> list[dict]:
    variants = {
        "full": {},
        "no-refactoring": {"enable_refactoring": False},
        "no-warm-cache": {"enable_warm_cache": False},
        "no-hrg": {"enable_hrg": False},
        "no-affinity": {"enable_affinity": False},
    }
    cfg = ExperimentConfig(cv=cv, seed=seed, **SWEEP)
    tasks = [
        RunTask.create("FlexPipe", cfg, overrides)
        for overrides in variants.values()
    ]
    results = make_runner(runner, jobs=jobs, use_cache=use_cache).run_tasks(tasks)
    return [
        {
            "variant": name,
            "goodput_pct": result.summary.goodput_rate * 100,
            "mean_latency": result.summary.mean_latency,
            "p99": result.summary.latency_percentiles[99],
            "refactors": result.summary.refactor_count,
            "warm_rate": result.summary.warm_start_rate,
            "mean_init": result.summary.mean_init_time,
        }
        for name, result in zip(variants, results)
    ]
