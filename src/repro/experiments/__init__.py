"""Experiment drivers: one per table/figure of the paper's evaluation.

``common`` holds the shared run harness (same seeded workload replayed
against every system on a fresh cluster); ``systems`` builds the five
comparison systems with the paper's provisioning policy (static systems
hold 75% of peak capacity always-on, serverless systems 30% + elastic).
"""

from repro.experiments.common import (
    ExperimentConfig,
    run_comparison,
    run_system,
)
from repro.experiments.systems import SYSTEM_FACTORIES, make_system

__all__ = [
    "ExperimentConfig",
    "run_system",
    "run_comparison",
    "SYSTEM_FACTORIES",
    "make_system",
]
