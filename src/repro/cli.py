"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every reproducible experiment with its paper artefact.
``run EXPERIMENT``
    Run one experiment driver and print its paper-vs-measured table
    (figures also render an ASCII shape preview).
``demo``
    A 60-second FlexPipe serving run on a small fragmented cluster —
    the quickest end-to-end sanity check.
``report``
    Regenerate ``EXPERIMENTS.md`` from the bench outputs in
    ``benchmarks/_results/``.
``audit``
    Seeded chaos fuzz of lifecycle interleavings (single-model small
    cluster and multi-model paper cluster), asserting the invariants.
``scenario list`` / ``scenario run``
    The declarative scenario engine: scripted multi-model runs (phased
    arrivals + timed disturbances) against any system, audited.
``qos``
    The QoS control-plane report: one scenario run twice (control plane
    on vs the null policy) over identical traffic, per-tenant attainment
    and shed tables, gated on the interactive tenants actually winning.
``fuzz``
    Direct migration/link-layer fuzzing (scheduling invariants, link
    physics).

The heavy experiments (full five-system sweeps) are the same code the
benches call; expect minutes of wall-clock for those.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable

from repro.metrics.ascii_plot import bar_chart, sparkline
from repro.metrics.report import format_table


@dataclass(frozen=True)
class Experiment:
    """One runnable reproduction target."""

    name: str
    artefact: str
    runner: Callable[[argparse.Namespace], str]
    heavy: bool = False


def _rows_table(rows: list[dict], title: str) -> str:
    """Generic dict-rows renderer used by drivers without bespoke tables."""
    if not rows:
        return f"{title}\n(no rows)"
    headers = list(rows[0])
    body = [[row.get(h, "") for h in headers] for row in rows]
    return format_table(headers, body, title=title)


def _choose(
    requested: list | None, available: dict, what: str = "system"
) -> list[str] | None:
    """Resolve a requested-vs-available selection (default: everything);
    None (after a stderr message) if any name is unknown."""
    chosen = list(requested) if requested else sorted(available)
    unknown = [s for s in chosen if s not in available]
    if unknown:
        print(
            f"unknown {what}(s) {', '.join(unknown)}; "
            f"choose from: {', '.join(sorted(available))}",
            file=sys.stderr,
        )
        return None
    return chosen


def _report_violations(failures: list, describe) -> int:
    """Dump each failing report's violations to stderr; 1 if any, else 0.

    ``describe(report)`` renders the reproducer label for one report.
    """
    if not failures:
        return 0
    print("\ninvariant violations:", file=sys.stderr)
    for report in failures:
        for violation in report.violations:
            print(f"  {describe(report)}: {violation}", file=sys.stderr)
    return 1


# ----------------------------------------------------------------------
# Runners (import drivers lazily: each pulls in heavy modules)
# ----------------------------------------------------------------------
def _runner_from(args):
    """Build the parallel experiment runner the CLI flags describe."""
    from repro.experiments.runner import ExperimentRunner

    return ExperimentRunner(
        jobs=getattr(args, "jobs", None),
        use_cache=False if getattr(args, "no_cache", False) else None,
    )


def _run_table1(args) -> str:
    from repro.experiments import figures

    stats = figures.table1_rows(seed=args.seed)
    rows = [{"metric": k, "value": v} for k, v in stats.items()]
    return _rows_table(rows, "Table 1 - simulated cluster utilization statistics")


def _run_table2(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.table2_rows(), "Table 2 - OPT-66B granularity profile"
    )


def _run_fig1(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.fig1_rows(seed=args.seed),
        "Fig. 1 - request CV across measurement windows",
    )


def _run_fig3(args) -> str:
    from repro.experiments import figures

    rows = figures.fig3_rows(seed=args.seed, runner=_runner_from(args))
    table = _rows_table(rows, "Fig. 3 - static 4-stage pipeline vs workload CV")
    chart = bar_chart(
        [str(r["cv"]) for r in rows],
        [r["goodput_rps"] for r in rows],
        title="goodput (req/s) by CV",
        width=34,
    )
    return f"{table}\n\n{chart}"


def _run_fig4(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.fig4_rows(seed=args.seed, runner=_runner_from(args)),
        "Fig. 4 - latency by pipeline granularity and CV",
    )


def _sweep_figs(args) -> dict:
    from repro.experiments import figures

    return figures.system_sweep(seed=args.seed, runner=_runner_from(args))


def _run_fig8(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.fig8_rows(_sweep_figs(args)), "Fig. 8 - E2E latency breakdown"
    )


def _run_fig9(args) -> str:
    from repro.experiments import figures

    data = figures.fig9_series(seed=args.seed, runner=_runner_from(args))
    lines = ["Fig. 9 - response time under CV=8 burst workload (300 s, 15 s windows)"]
    for system, stats in data.items():
        values = list(stats["rt_series"].values())
        lines.append(
            f"{system:>10}: {sparkline(values, width=60)}  "
            f"mean={stats['mean_latency']:.2f}s p99={stats['p99']:.2f}s"
        )
    return "\n".join(lines)


def _run_fig10(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.fig10_rows(_sweep_figs(args)), "Fig. 10 - latency percentiles"
    )


def _run_fig11(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.fig11_rows(_sweep_figs(args)), "Fig. 11 - stall recovery times"
    )


def _run_fig12(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.fig12_rows(_sweep_figs(args)),
        "Fig. 12 - goodput vs GPU utilization",
    )


def _run_fig13(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.fig13_rows(seed=args.seed, runner=_runner_from(args)),
        "Fig. 13 - prefill latency by model",
    )


def _run_case_study(args) -> str:
    from repro.experiments import figures

    stats = figures.case_study_rows(seed=args.seed, runner=_runner_from(args))
    rows = [{"metric": k, "value": v} for k, v in stats.items()]
    return _rows_table(rows, "§9.6 case study - production rollout")


def _run_ablations(args) -> str:
    from repro.experiments import figures

    return _rows_table(
        figures.ablation_rows(seed=args.seed, runner=_runner_from(args)),
        "Ablations - FlexPipe mechanisms",
    )


def _run_demo(args) -> str:
    from repro.experiments.common import ExperimentConfig, run_system
    from repro.experiments.systems import make_flexpipe

    cfg = ExperimentConfig(
        cv=2.0,
        qps=10.0,
        duration=60.0,
        settle_time=120.0,
        warmup_time=20.0,
        drain_time=20.0,
        seed=args.seed,
    )
    started = time.time()
    summary, _system = run_system(make_flexpipe, cfg)
    elapsed = time.time() - started
    rows = [
        {"metric": "offered requests", "value": summary.offered},
        {"metric": "completed", "value": summary.completed},
        {"metric": "goodput rate", "value": f"{summary.goodput_rate:.1%}"},
        {"metric": "mean latency (s)", "value": f"{summary.mean_latency:.3f}"},
        {
            "metric": "p99 latency (s)",
            "value": f"{summary.latency_percentiles[99]:.3f}",
        },
        {"metric": "GPU utilization", "value": f"{summary.gpu_utilization:.1%}"},
        {"metric": "wall-clock (s)", "value": f"{elapsed:.1f}"},
    ]
    return _rows_table(rows, "FlexPipe demo - 60 s of CV=2 traffic at 10 QPS")


def _run_report(args) -> str:
    from repro.experiments.report import write_experiments_md

    path = write_experiments_md()
    return f"wrote {path}"


def _run_audit(args) -> int:
    """``repro audit``: the seeded chaos audit of lifecycle invariants."""
    from repro.validation.chaos import CHAOS_SYSTEMS, audit_seeds

    systems = _choose(args.systems, CHAOS_SYSTEMS)
    if systems is None:
        return 2
    reports = audit_seeds(
        seeds=args.seeds,
        systems=systems,
        runner=_runner_from(args),
        case_kwargs={"duration": args.duration},
    )
    rows = []
    for name in systems:
        mine = [r for r in reports if r.case.system == name]
        bad = [r for r in mine if not r.ok]
        rows.append(
            {
                "system": name,
                "seeds": len(mine),
                "violations": sum(len(r.violations) for r in mine),
                "failing seeds": ", ".join(str(r.case.seed) for r in bad) or "-",
                "offered": sum(r.offered for r in mine),
                "completed": sum(r.completed for r in mine),
                "shed": sum(r.shed for r in mine),
            }
        )
    print(
        _rows_table(
            rows,
            f"Chaos audit - {args.seeds} seed(s)/system, "
            "lifecycle invariants at quiesce",
        )
    )
    if _report_violations(
        [r for r in reports if not r.ok],
        lambda r: f"{r.case.system} seed={r.case.seed}",
    ):
        return 1
    print("\nall invariants held across every seeded interleaving.")
    return 0


def _run_scenario(args) -> int:
    """``repro scenario``: the declarative multi-model scenario engine."""
    from repro.scenarios import SCENARIOS, run_scenarios
    from repro.validation.chaos import CHAOS_SYSTEMS

    if args.scenario_command == "list":
        rows = [
            {
                "scenario": spec.name,
                "cluster": spec.cluster,
                "models": ", ".join(spec.model_names),
                "events": len(spec.events),
                "traffic (s)": f"{spec.duration:g}",
                "description": spec.description,
            }
            for spec in SCENARIOS.values()
        ]
        print(
            _rows_table(
                rows, "Scenario catalog (python -m repro scenario run <name>)"
            )
        )
        return 0

    # run
    if args.all and args.scenarios:
        print(
            "pass scenario names or --all, not both",
            file=sys.stderr,
        )
        return 2
    if not args.all and not args.scenarios:
        print(
            "no scenarios selected: name one or more, or pass --all "
            f"(available: {', '.join(sorted(SCENARIOS))})",
            file=sys.stderr,
        )
        return 2
    names = _choose(args.scenarios, SCENARIOS, what="scenario")
    if names is None:
        return 2
    systems = _choose(args.systems, CHAOS_SYSTEMS)
    if systems is None:
        return 2
    reports = run_scenarios(
        [SCENARIOS[n] for n in names],
        systems,
        seed=args.seed,
        quick=args.quick,
        runner=_runner_from(args),
        shards=args.shards,
    )
    rows = []
    for report in reports:
        rows.append(
            {
                "scenario": report.scenario,
                "system": report.system,
                "shards": (
                    f"{report.shards}*"
                    if report.shard_fallback
                    else str(report.shards)
                )
                if args.shards
                else "-",
                "violations": len(report.violations),
                "offered": report.offered,
                "completed": report.completed,
                "shed": report.shed,
                "goodput": f"{report.aggregate.goodput_rate:.1%}"
                if report.aggregate
                else "-",
                "p99 (s)": f"{report.aggregate.latency_percentiles[99]:.2f}"
                if report.aggregate
                else "-",
                "events": ", ".join(
                    f"{k}x{v}" for k, v in report.events.items()
                )
                or "-",
            }
        )
    print(
        _rows_table(
            rows,
            f"Scenario sweep - {len(names)} scenario(s) x "
            f"{len(systems)} system(s), invariants audited",
        )
    )
    if args.per_model:
        model_rows = []
        for report in reports:
            for model, summary in report.per_model.items():
                tenant = report.tenants.get(model)
                model_rows.append(
                    {
                        "scenario": report.scenario,
                        "system": report.system,
                        "model": model,
                        "class": summary.slo_class or "-",
                        # Per-model rows count *admitted* work (gate-shed
                        # requests never reach a tenant); the sweep table's
                        # "offered" is everything generated, shed included.
                        "admitted": summary.offered,
                        "shed": summary.shed,
                        "completed": summary.completed,
                        "goodput": f"{summary.goodput_rate:.1%}",
                        # Attainment charges sheds as misses (goodput over
                        # everything the tenant offered).
                        "attainment": f"{summary.slo_attainment:.1%}",
                        "shed rate": f"{tenant.shed_rate:.1%}" if tenant else "-",
                        "mean lat (s)": f"{summary.mean_latency:.2f}",
                        "p99 (s)": f"{summary.latency_percentiles[99]:.2f}",
                    }
                )
        print()
        print(_rows_table(model_rows, "Per-model breakdown"))
    if _report_violations(
        [r for r in reports if not r.ok],
        lambda r: f"{r.scenario} x {r.system} seed={r.seed}",
    ):
        return 1
    print("\nall scenario runs held every lifecycle invariant.")
    return 0


def _run_qos(args) -> int:
    """``repro qos``: the control-plane on/off comparison report.

    Runs one scenario twice against the same system and seed — QoS
    control plane enabled vs the null policy (one shared queue-cap gate,
    FIFO routing) — over byte-identical traffic, prints the per-tenant
    QoS tables, and gates: both runs must hold every lifecycle invariant,
    and every interactive-class tenant must attain strictly more of its
    SLO with the control plane than without (the point of having one).
    """
    from dataclasses import replace as dc_replace

    from repro.scenarios import SCENARIOS, run_scenarios
    from repro.validation.chaos import CHAOS_SYSTEMS

    if _choose([args.scenario], SCENARIOS, what="scenario") is None:
        return 2
    if _choose([args.system], CHAOS_SYSTEMS) is None:
        return 2
    base = SCENARIOS[args.scenario]
    specs = [dc_replace(base, qos="on"), dc_replace(base, qos="off")]
    enabled, null = run_scenarios(
        specs,
        [args.system],
        seed=args.seed,
        quick=args.quick,
        runner=_runner_from(args),
    )

    rows = []
    for label, report in (("qos", enabled), ("null", null)):
        for model, tenant in report.tenants.items():
            rows.append(
                {
                    "policy": label,
                    "model": model,
                    "class": tenant.slo_class or "-",
                    "offered": tenant.offered,
                    "admitted": tenant.admitted,
                    "shed": tenant.shed,
                    "shed rate": f"{tenant.shed_rate:.1%}",
                    "goodput": tenant.goodput,
                    "attainment": f"{tenant.attainment:.1%}",
                    # Per-tenant GPU-share row: high-water fraction of
                    # fleet memory vs the tenant's configured cap.
                    "gpu peak": f"{tenant.gpu_share_peak:.1%}",
                    "cap": f"{tenant.share_cap:.0%}"
                    if tenant.share_cap is not None
                    else "-",
                    # Arbitration + elastic-contract traffic: preemptions
                    # this tenant won/lost at the allocator, borrow
                    # grants received, reclaim demands issued.
                    "pre w/l": f"{tenant.preemptions_won}/"
                    f"{tenant.preemptions_lost}",
                    "borrows": tenant.borrows,
                    "reclaims": tenant.reclaims,
                }
            )
    print(
        _rows_table(
            rows,
            f"QoS control plane vs null policy - {base.name} x "
            f"{args.system}, seed {args.seed}, identical traffic",
        )
    )
    failures = [r for r in (enabled, null) if not r.ok]
    if _report_violations(
        failures, lambda r: f"{r.scenario} x {r.system} seed={r.seed}"
    ):
        return 1
    interactive = [
        m
        for m, t in enabled.tenants.items()
        if t.slo_class == "interactive"
    ]
    # Strict improvement required — except when both policies already
    # saturate at full attainment, where there is no headroom to win.
    losers = [
        m
        for m in interactive
        if enabled.tenants[m].attainment <= null.tenants[m].attainment
        and not (
            enabled.tenants[m].attainment >= 1.0
            and null.tenants[m].attainment >= 1.0
        )
    ]
    if losers:
        print(
            f"\nQoS control plane did NOT improve interactive attainment "
            f"for: {', '.join(losers)}",
            file=sys.stderr,
        )
        return 1
    if interactive:
        gains = ", ".join(
            f"{m} {null.tenants[m].attainment:.1%} -> "
            f"{enabled.tenants[m].attainment:.1%}"
            for m in interactive
        )
        print(f"\ninteractive SLO attainment improved: {gains}")
    else:
        print("\n(no interactive-class tenant in this scenario; no gate)")
    return 0


def _run_coldstart(args) -> int:
    """``repro coldstart``: the cold-start economy comparison report.

    Runs the ``coldstart-economy`` scenario three times on FlexPipe over
    byte-identical traffic — cost-aware GDSF eviction with pipelined
    loading (the shipped configuration), recency-only LRU eviction, and
    load-then-activate (non-pipelined) loading — and gates: every run
    must hold all lifecycle invariants, GDSF must beat LRU on the hot
    tenants' mean p99 TTFT and warm-start rate, and pipelined loading
    must beat load-then-activate on the same TTFT stat.
    """
    from dataclasses import replace as dc_replace
    from statistics import mean

    from repro.scenarios import SCENARIOS, run_scenarios

    base = SCENARIOS["coldstart-economy"]
    variants = {
        "gdsf+pipelined": base,
        "lru+pipelined": dc_replace(
            base, name="coldstart-economy-lru", cache_policy="lru"
        ),
        "gdsf+sequential": dc_replace(
            base, name="coldstart-economy-seq", pipelined_loading=False
        ),
    }
    reports = dict(
        zip(
            variants,
            run_scenarios(
                list(variants.values()),
                ["FlexPipe"],
                seed=args.seed,
                quick=args.quick,
                runner=_runner_from(args),
            ),
        )
    )

    def hot_p99(report) -> float:
        # The hot tenants (FLEET-0..7) are the ones whose restarts the
        # cache policy decides; tail sweepers are cold by construction.
        return mean(
            stats.p99_ttft
            for model, stats in report.per_model.items()
            if int(model.split("-")[1]) < 100
        )

    rows = [
        {
            "variant": label,
            "violations": len(report.violations),
            "completed": f"{report.completed}/{report.offered}",
            "warm rate": f"{report.aggregate.warm_start_rate:.2f}"
            if report.aggregate
            else "-",
            "mean init (s)": f"{report.aggregate.mean_init_time:.2f}"
            if report.aggregate
            else "-",
            "hot p99 TTFT (s)": f"{hot_p99(report):.2f}"
            if report.aggregate
            else "-",
        }
        for label, report in reports.items()
    ]
    print(
        _rows_table(
            rows,
            f"Cold-start economy - coldstart-economy x FlexPipe, "
            f"seed {args.seed}, identical traffic",
        )
    )
    failures = [r for r in reports.values() if not r.ok]
    if _report_violations(
        failures, lambda r: f"{r.scenario} x {r.system} seed={r.seed}"
    ):
        return 1
    gdsf, lru, seq = (
        reports["gdsf+pipelined"],
        reports["lru+pipelined"],
        reports["gdsf+sequential"],
    )
    losses = []
    if hot_p99(gdsf) >= hot_p99(lru):
        losses.append(
            f"GDSF did not beat LRU on hot p99 TTFT "
            f"({hot_p99(gdsf):.2f} vs {hot_p99(lru):.2f})"
        )
    if gdsf.aggregate.warm_start_rate < lru.aggregate.warm_start_rate:
        losses.append(
            f"GDSF warm-start rate below LRU "
            f"({gdsf.aggregate.warm_start_rate:.2f} vs "
            f"{lru.aggregate.warm_start_rate:.2f})"
        )
    if hot_p99(gdsf) >= hot_p99(seq):
        losses.append(
            f"pipelined loading did not beat load-then-activate "
            f"({hot_p99(gdsf):.2f} vs {hot_p99(seq):.2f})"
        )
    if losses:
        for loss in losses:
            print(f"\ncold-start gate failed: {loss}", file=sys.stderr)
        return 1
    print(
        f"\ncold-start gates held: GDSF {hot_p99(gdsf):.2f}s < "
        f"LRU {hot_p99(lru):.2f}s, pipelined {hot_p99(gdsf):.2f}s < "
        f"sequential {hot_p99(seq):.2f}s hot p99 TTFT"
    )
    return 0


def _run_fuzz(args) -> int:
    """``repro fuzz``: direct migration/link-layer fuzzing."""
    from repro.validation.migration_fuzz import fuzz_seeds

    reports = fuzz_seeds(seeds=args.seeds, runner=_runner_from(args))
    rows = [
        {
            "seed": r.case.seed,
            "schedules": r.schedules,
            "items": r.items,
            "link workloads": r.transfers,
            "in-place resizes": r.inplace,
            "violations": len(r.violations),
        }
        for r in reports
    ]
    print(
        _rows_table(
            rows,
            f"Migration-layer fuzz - {args.seeds} seed(s): LPT scheduling "
            "invariants + fair-share link physics + in-place resize deltas",
        )
    )
    if _report_violations(
        [r for r in reports if not r.ok],
        lambda r: f"seed={r.case.seed}",
    ):
        return 1
    print("\nall migration schedules and link workloads held their invariants.")
    return 0


def _run_trace(args) -> str:
    """``repro trace``: synthesise or inspect Azure-style trace bundles."""
    import numpy as np

    from repro.workloads.azure import (
        AzureSynthConfig,
        TraceBundle,
        fig1_report,
        synthesize_azure_like,
    )

    if args.trace_command == "synth2019":
        from repro.workloads.azure2019 import (
            synthesize_2019_dataset,
            write_2019_dataset,
        )

        seed = args.seed if args.seed else 2019
        dataset = synthesize_2019_dataset(
            seed=seed, n_functions=args.functions, days=args.days
        )
        paths = write_2019_dataset(args.directory, dataset)
        return (
            f"wrote {len(paths)} file(s) to {args.directory}: "
            f"{len(dataset.functions)} functions x {dataset.days} day(s) "
            f"in the AzureFunctionsDataset2019 layout "
            f"({int(dataset.counts.sum())} invocations, seed {seed})"
        )
    if args.trace_command == "synth":
        rng = np.random.default_rng(args.seed)
        bundle = synthesize_azure_like(
            rng,
            AzureSynthConfig(
                n_apps=args.apps, days=args.days, mean_total_rate=args.rate
            ),
        )
        bundle.write_csv(args.output)
        total = bundle.total_trace()
        return (
            f"wrote {args.output}: {len(bundle)} functions / "
            f"{len(bundle.app_ids())} apps, {total.total_invocations} "
            f"invocations over {bundle.duration / 3600:.1f} h "
            f"({total.mean_rate:.1f} req/s mean)"
        )
    # stats
    bundle = TraceBundle.read_csv(args.trace_file)
    lines = [f"{args.trace_file}: {len(bundle)} functions, "
             f"{bundle.duration / 3600:.1f} h"]
    report = fig1_report(bundle)
    lines.append("multi-window CV (the Fig. 1 measurement):")
    for name, cvs in report.items():
        parts = []
        for window, cv in cvs.items():
            label = f"{window / 3600:g}h" if window >= 3600 else f"{window:g}s"
            parts.append(f"{label}={cv:.2f}")
        lines.append(f"  {name:>6}: " + "  ".join(parts))
    top = bundle.top_apps(1)[0]
    lines.append(
        f"top app: {top.app} ({top.total_invocations} invocations, "
        f"{top.mean_rate:.2f} req/s)"
    )
    lines.append("rate: " + sparkline(top.rate_series().tolist(), width=72))
    return "\n".join(lines)


def _run_trace_attr(args) -> int:
    """``repro trace <scenario>``: causal tracing + tail attribution.

    Runs one catalog scenario with the span tracer and fleet flight
    recorder armed, decomposes the p99/p999 TTFT and p99 latency tails
    into cause buckets (cold-load vs queue vs refactor vs preemption vs
    compute), and gates on the observability contract: zero
    ``span-conservation`` violations and >= 95% of tail seconds
    attributed to a concrete cause bucket.
    """
    import json as json_mod

    from repro.observability import (
        attribute_tail,
        conservation_violations,
        perfetto_trace,
    )
    from repro.scenarios import SCENARIOS
    from repro.scenarios.driver import ScenarioCase, run_scenario_case

    if _choose([args.scenario], SCENARIOS, what="scenario") is None:
        return 2
    spec = SCENARIOS[args.scenario]
    if args.quick:
        spec = spec.quick()
    case = ScenarioCase(
        spec, args.system, args.seed, shards=max(args.shards, 0), trace=True
    )
    report = run_scenario_case(case)
    traces = report.traces

    sharded = f", {report.shards} shard(s)" if report.shards else ""
    print(
        f"Traced {report.scenario} x {report.system} seed={report.seed}"
        f"{sharded}: {len(traces)} request trace(s), "
        f"{len(report.fleet_events)} control-plane event(s)"
    )

    tails = [
        attribute_tail(traces, metric="ttft", percentile=99.0),
        attribute_tail(traces, metric="ttft", percentile=99.9),
        attribute_tail(traces, metric="latency", percentile=99.0),
    ]
    for tail in tails:
        rows = [
            {
                "cause": bucket,
                "seconds": f"{seconds:.2f}",
                "share": f"{seconds / tail.total_seconds:.1%}"
                if tail.total_seconds
                else "-",
            }
            for bucket, seconds in sorted(
                tail.buckets.items(), key=lambda kv: -kv[1]
            )
            if seconds > 0.0
        ]
        print()
        print(
            _rows_table(
                rows,
                f"p{tail.percentile:g} {tail.metric.upper()} tail - "
                f"{tail.tail_count} request(s) >= {tail.threshold:.2f}s, "
                f"{tail.total_seconds:.1f}s total, "
                f"{tail.attributed_fraction:.1%} attributed",
            )
        )
    ttft99 = tails[0]
    if ttft99.by_tenant:
        rows = []
        for tenant, buckets in sorted(ttft99.by_tenant.items()):
            total = sum(buckets.values())
            top = max(buckets, key=buckets.get) if total else "-"
            rows.append(
                {
                    "tenant": tenant,
                    "tail seconds": f"{total:.2f}",
                    "dominant cause": top,
                    "dominant share": f"{buckets[top] / total:.1%}"
                    if total
                    else "-",
                }
            )
        print()
        print(_rows_table(rows, "p99 TTFT tail by tenant"))

    kinds: dict[str, int] = {}
    for event in report.fleet_events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    if kinds:
        summary = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        print(f"\nflight recorder: {summary}")

    if args.json:
        payload = perfetto_trace(traces, report.fleet_events)
        with open(args.json, "w") as fh:
            json_mod.dump(payload, fh)
        print(
            f"wrote {args.json}: {len(payload['traceEvents'])} trace_event "
            f"row(s) (load in Perfetto UI / chrome://tracing)"
        )

    if _report_violations(
        [report] if not report.ok else [],
        lambda r: f"{r.scenario} x {r.system} seed={r.seed}",
    ):
        return 1
    leaks = conservation_violations(traces)
    if leaks:
        print("\nspan-conservation violations:", file=sys.stderr)
        for leak in leaks[:10]:
            print(f"  {leak}", file=sys.stderr)
        return 1
    if ttft99.attributed_fraction < 0.95:
        print(
            f"\ntrace gate failed: only {ttft99.attributed_fraction:.1%} "
            f"of p99 TTFT seconds attributed to a cause bucket",
            file=sys.stderr,
        )
        return 1
    print(
        f"\ntrace gates held: spans tile every latency interval and "
        f"{ttft99.attributed_fraction:.1%} of p99 TTFT seconds carry a cause."
    )
    return 0


def _run_docs_cli(args) -> int:
    """``repro docs-cli``: render (or verify) the CLI reference."""
    from repro.docs import render_cli_markdown

    rendered = render_cli_markdown()
    if args.check is not None:
        try:
            with open(args.check) as fh:
                committed = fh.read()
        except OSError as exc:
            print(f"docs drift check failed: {exc}", file=sys.stderr)
            return 1
        if committed != rendered:
            print(
                f"docs drift: {args.check} does not match the argparse "
                f"tree; regenerate with `python -m repro docs-cli "
                f"--output {args.check}`",
                file=sys.stderr,
            )
            return 1
        print(f"{args.check} matches the CLI ({len(rendered)} bytes).")
        return 0
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(rendered)
        print(f"wrote {args.output} ({len(rendered)} bytes)")
        return 0
    print(rendered, end="")
    return 0


EXPERIMENTS: dict[str, Experiment] = {
    e.name: e
    for e in [
        Experiment("table1", "Table 1 (cluster stats)", _run_table1),
        Experiment("table2", "Table 2 (granularity profile)", _run_table2),
        Experiment("fig1", "Fig. 1 (CV vs window)", _run_fig1),
        Experiment("fig3", "Fig. 3 (static pipeline vs CV)", _run_fig3, heavy=True),
        Experiment("fig4", "Fig. 4 (granularity vs CV)", _run_fig4, heavy=True),
        Experiment("fig8", "Fig. 8 (latency breakdown)", _run_fig8, heavy=True),
        Experiment("fig9", "Fig. 9 (burst absorption)", _run_fig9, heavy=True),
        Experiment("fig10", "Fig. 10 (percentiles)", _run_fig10, heavy=True),
        Experiment("fig11", "Fig. 11 (stall recovery)", _run_fig11, heavy=True),
        Experiment("fig12", "Fig. 12 (resource efficiency)", _run_fig12, heavy=True),
        Experiment("fig13", "Fig. 13 (prefill latency)", _run_fig13, heavy=True),
        Experiment("case-study", "§9.6 production case study", _run_case_study, heavy=True),
        Experiment("ablations", "mechanism ablations", _run_ablations, heavy=True),
    ]
}


def _cmd_list(_args) -> int:
    rows = [
        {
            "experiment": e.name,
            "paper artefact": e.artefact,
            "cost": "minutes" if e.heavy else "seconds",
        }
        for e in EXPERIMENTS.values()
    ]
    print(_rows_table(rows, "Reproducible experiments (python -m repro run <name>)"))
    return 0


def _cmd_run(args) -> int:
    experiment = EXPERIMENTS.get(args.experiment)
    if experiment is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    if experiment.heavy:
        print(f"[{experiment.name}] full simulation sweep - this takes minutes...")
    print(experiment.runner(args))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexPipe reproduction: run the paper's experiments.",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for experiment sweeps "
        "(default: $REPRO_JOBS or 1; results are identical at any level)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every run, ignoring and not writing the "
        "on-disk result cache (.runcache/)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible experiments")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see `repro list`)")
    sub.add_parser("demo", help="quick FlexPipe end-to-end run")
    sub.add_parser("report", help="regenerate EXPERIMENTS.md from bench results")
    audit = sub.add_parser(
        "audit",
        help="seeded chaos audit: fuzz refactor/scale/drain/failure "
        "interleavings and assert the lifecycle invariants",
    )
    audit.add_argument(
        "--seeds", type=int, default=10, help="seeds per system (default 10)"
    )
    audit.add_argument(
        "--systems",
        nargs="+",
        default=None,
        help="systems to audit (default: FlexPipe and every baseline)",
    )
    audit.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="traffic/chaos window per case in simulated seconds",
    )
    scenario = sub.add_parser(
        "scenario",
        help="declarative multi-model scenarios: list the catalog or run "
        "scripted runs (phased arrivals + timed disturbances) with the "
        "invariant auditor attached",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="show the scenario catalog")
    scenario_run = scenario_sub.add_parser("run", help="run scenarios")
    scenario_run.add_argument(
        "scenarios", nargs="*", help="scenario names (see `repro scenario list`)"
    )
    scenario_run.add_argument(
        "--all", action="store_true", help="run every catalog scenario"
    )
    scenario_run.add_argument(
        "--systems",
        nargs="+",
        default=None,
        help="systems to run (default: FlexPipe and every baseline)",
    )
    scenario_run.add_argument(
        "--quick",
        action="store_true",
        help="time-compressed variants (up to ~3x shorter traffic "
        "windows; compression is capped so no segment drops below 5 s)",
    )
    scenario_run.add_argument(
        "--per-model",
        action="store_true",
        help="also print the per-model breakdown table",
    )
    scenario_run.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run each case through the shard partitioner with N worker "
        "processes (0 = classic monolithic driver).  N only sets "
        "parallelism: the shard decomposition is a pure function of the "
        "scenario, so results are identical for every N >= 1; scenarios "
        "that cannot partition (fleet-global QoS, single tenant, tiny "
        "cluster) fall back to one shard, marked '*' in the table",
    )
    qos = sub.add_parser(
        "qos",
        help="per-tenant QoS report: run one scenario with the control "
        "plane on vs the null policy over identical traffic and compare "
        "per-class SLO attainment (fails unless interactive tenants "
        "strictly improve and all invariants hold)",
    )
    qos.add_argument(
        "--scenario",
        default="priority-inversion",
        help="catalog scenario to compare on (default: priority-inversion)",
    )
    qos.add_argument(
        "--system", default="FlexPipe", help="serving system (default: FlexPipe)"
    )
    qos.add_argument(
        "--quick",
        action="store_true",
        help="time-compressed variant (for smoke runs; the full scenario "
        "is the meaningful comparison window)",
    )
    coldstart = sub.add_parser(
        "coldstart",
        help="cold-start economy report: run coldstart-economy on "
        "FlexPipe with GDSF vs LRU eviction and pipelined vs "
        "load-then-activate loading over identical traffic (fails "
        "unless GDSF and pipelined loading win and all invariants hold)",
    )
    coldstart.add_argument(
        "--quick",
        action="store_true",
        help="time-compressed variant (for smoke runs; the full scenario "
        "is the meaningful comparison window)",
    )
    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the transfer/migration layer directly: random "
        "MigrationItem sets vs LPT scheduling invariants, random "
        "contention vs link physics",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=10, help="seeded cases (default 10)"
    )
    trace = sub.add_parser(
        "trace",
        help="causal request tracing: run a scenario with the span tracer "
        "+ fleet flight recorder armed and attribute the latency tail to "
        "cause buckets (also: synthesise / inspect Azure-style traces)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_run = trace_sub.add_parser(
        "run",
        help="trace one catalog scenario and print the tail-latency "
        "attribution report (`repro trace <scenario>` is shorthand)",
    )
    trace_run.add_argument(
        "scenario", help="catalog scenario name (see `repro scenario list`)"
    )
    trace_run.add_argument(
        "--system", default="FlexPipe", help="serving system (default: FlexPipe)"
    )
    trace_run.add_argument(
        "--quick",
        action="store_true",
        help="time-compressed variant (for smoke runs)",
    )
    trace_run.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run through the shard partitioner with N workers; merged "
        "spans carry their shard of origin (0 = monolithic driver)",
    )
    trace_run.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the Perfetto/Chrome trace_event JSON to PATH",
    )
    synth = trace_sub.add_parser("synth", help="write a synthetic trace CSV")
    synth.add_argument("output", help="CSV path to write")
    synth.add_argument("--apps", type=int, default=40)
    synth.add_argument("--days", type=float, default=2.0)
    synth.add_argument("--rate", type=float, default=20.0, help="mean req/s")
    synth2019 = trace_sub.add_parser(
        "synth2019",
        help="write a deterministic synthetic dataset in the real "
        "AzureFunctionsDataset2019 layout (per-minute invocation counts "
        "plus duration/memory percentile tables) — the same fixture the "
        "azure-replay-2019 scenario replays",
    )
    synth2019.add_argument("directory", help="directory to write the day files into")
    synth2019.add_argument(
        "--functions", type=int, default=260, help="functions to synthesise"
    )
    synth2019.add_argument(
        "--days", type=int, default=1, help="day files to write (d01..dNN)"
    )
    stats = trace_sub.add_parser("stats", help="summarise a trace CSV")
    stats.add_argument("trace_file", help="CSV path to read")
    docs_cli = sub.add_parser(
        "docs-cli",
        help="render docs/cli.md (the CLI reference) from this argparse "
        "tree; --check verifies the committed file instead",
    )
    docs_cli.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the rendered markdown to PATH instead of stdout",
    )
    docs_cli.add_argument(
        "--check",
        default=None,
        metavar="PATH",
        help="exit 1 unless the file at PATH matches the rendered output "
        "(the docs drift gate; use docs/cli.md)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `repro trace <scenario>` sugar: anything after `trace` that is not
    # one of its literal subcommands (or a help flag) routes through
    # `trace run`, so the worked examples read naturally.
    if "trace" in argv:
        i = argv.index("trace")
        nxt = argv[i + 1] if i + 1 < len(argv) else None
        if nxt is not None and nxt not in (
            "run", "synth", "synth2019", "stats", "-h", "--help",
        ):
            argv.insert(i + 1, "run")
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "demo":
        print(_run_demo(args))
        return 0
    if args.command == "report":
        print(_run_report(args))
        return 0
    if args.command == "audit":
        return _run_audit(args)
    if args.command == "scenario":
        return _run_scenario(args)
    if args.command == "qos":
        return _run_qos(args)
    if args.command == "coldstart":
        return _run_coldstart(args)
    if args.command == "fuzz":
        return _run_fuzz(args)
    if args.command == "trace":
        if args.trace_command == "run":
            return _run_trace_attr(args)
        print(_run_trace(args))
        return 0
    if args.command == "docs-cli":
        return _run_docs_cli(args)
    raise AssertionError(f"unhandled command {args.command!r}")
