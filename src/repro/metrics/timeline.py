"""Time-series recording and export.

The figure benches need per-window series (Fig. 9's response-time
timeline, Fig. 1's CV-vs-window measurement, the case study's reservation
curve).  :class:`Timeline` records named scalar series against simulated
time and exports them as CSV/JSON for offline plotting; window helpers
aggregate raw event times into the binned statistics the figures show.
"""

from __future__ import annotations

import csv
import json
import pathlib
from dataclasses import dataclass, field

import numpy as np


@dataclass
class Series:
    """One named time series: (time, value) samples in arrival order."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        # Coerce to builtin floats at the door: callers routinely hand in
        # numpy scalars, whose repr ("np.float64(1.5)" under numpy >= 2)
        # breaks the CSV round-trip and whose 32-bit variants are not
        # JSON-serialisable.  Coercion also keeps the round-trip exact —
        # repr(float) parses back bit-identically.
        time = float(time)
        value = float(value)
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time {time} before last {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window_mean(self, window: float, duration: float | None = None) -> "Series":
        """Aggregate into per-window means (Fig. 9's 15 s RT windows)."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not self.times:
            return Series(f"{self.name}/mean{window:g}s")
        end = duration if duration is not None else self.times[-1] + 1e-9
        n_bins = max(int(np.ceil(end / window)), 1)
        sums = np.zeros(n_bins)
        counts = np.zeros(n_bins)
        for t, v in zip(self.times, self.values):
            b = min(int(t / window), n_bins - 1)
            sums[b] += v
            counts[b] += 1
        out = Series(f"{self.name}/mean{window:g}s")
        for b in range(n_bins):
            if counts[b] > 0:
                out.record((b + 0.5) * window, sums[b] / counts[b])
        return out

    def percentile(self, q: float) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.percentile(self.values, q))

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.mean(self.values))


class Timeline:
    """A bundle of named series sharing one simulated clock."""

    def __init__(self):
        self._series: dict[str, Series] = {}

    def series(self, name: str) -> Series:
        """Get (creating on first use) the series called ``name``."""
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).record(time, value)

    def names(self) -> list[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self, path: str | pathlib.Path) -> None:
        """Long-format CSV: series,time,value (one row per sample)."""
        path = pathlib.Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["series", "time", "value"])
            for name in self.names():
                s = self._series[name]
                for t, v in zip(s.times, s.values):
                    writer.writerow([name, repr(t), repr(v)])

    @classmethod
    def from_csv(cls, path: str | pathlib.Path) -> "Timeline":
        path = pathlib.Path(path)
        timeline = cls()
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if header != ["series", "time", "value"]:
                raise ValueError(f"{path} is not a Timeline CSV (header {header})")
            for name, t, v in reader:
                timeline.record(name, float(t), float(v))
        return timeline

    def to_json(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        payload = {
            name: {"times": s.times, "values": s.values}
            for name, s in self._series.items()
        }
        path.write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: str | pathlib.Path) -> "Timeline":
        payload = json.loads(pathlib.Path(path).read_text())
        timeline = cls()
        for name, data in payload.items():
            for t, v in zip(data["times"], data["values"]):
                timeline.record(name, t, v)
        return timeline
