"""Measurement: goodput, latency breakdowns, stalls, utilization.

Implements the paper's metric definitions: goodput = throughput under the
SLO constraint (§9), the queue/execution/communication latency breakdown of
Fig. 8, and the stall/recovery methodology of §9.3 (stall when latency
exceeds 1.5x the P25 baseline, recovered when back under 1.2x).
"""

from repro.metrics.collector import MetricsCollector, RunSummary
from repro.metrics.latency import LatencyBreakdown, percentile, percentiles
from repro.metrics.stalls import StallEpisode, detect_stalls, recovery_times
from repro.metrics.report import format_table, ratio_str
from repro.metrics.timeline import Series, Timeline
from repro.metrics.ascii_plot import (
    bar_chart,
    grouped_bar_chart,
    histogram,
    sparkline,
)

__all__ = [
    "MetricsCollector",
    "RunSummary",
    "LatencyBreakdown",
    "percentile",
    "percentiles",
    "StallEpisode",
    "detect_stalls",
    "recovery_times",
    "format_table",
    "ratio_str",
    "Series",
    "Timeline",
    "sparkline",
    "bar_chart",
    "grouped_bar_chart",
    "histogram",
]
