"""Plain-text table formatting for benchmark harness output."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def ratio_str(measured: float, paper: float) -> str:
    """'measured (paper X, ratio Y)' comparison cell."""
    if paper == 0:
        return f"{measured:.3g} (paper 0)"
    return f"{measured:.3g} (paper {paper:.3g}, x{measured / paper:.2f})"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
