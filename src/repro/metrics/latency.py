"""Latency statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def percentile(values, q: float) -> float:
    """q-th percentile (q in [0, 100]); 0.0 for empty input."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def percentiles(values, qs=(50, 75, 90, 95, 99)) -> dict[int, float]:
    """The Fig. 10 percentile set."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {int(q): 0.0 for q in qs}
    return {int(q): float(np.percentile(arr, q)) for q in qs}


@dataclass(frozen=True)
class LatencyBreakdown:
    """Mean response time split into the Fig. 8 components."""

    queue: float
    execution: float
    communication: float

    @property
    def total(self) -> float:
        return self.queue + self.execution + self.communication

    def __str__(self) -> str:
        return (
            f"total={self.total:.3f}s (queue={self.queue:.3f}, "
            f"exec={self.execution:.3f}, comm={self.communication:.3f})"
        )
