"""Terminal rendering of the paper's figures.

Every bench prints its table; the CLI additionally renders the *shape* of
each figure as ASCII so the reproduction can be eyeballed without a
plotting stack (the evaluation environment has no display).  Three
renderers cover the paper's figure types:

* :func:`sparkline` — one-line series (Fig. 9 timelines, Fig. 1 CV);
* :func:`bar_chart` — grouped bars (Fig. 8 latency breakdown, Fig. 11);
* :func:`histogram` — distribution shape (Fig. 4b, Fig. 13b).
"""

from __future__ import annotations

import math

import numpy as np

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR_CHAR = "█"


def sparkline(values: list[float], width: int | None = None) -> str:
    """Render a series as a one-line unicode sparkline.

    Values are min-max normalised; NaNs render as spaces.  ``width``
    resamples the series by bucket means so long series fit a terminal.
    """
    if not values:
        return ""
    data = np.asarray(values, dtype=float)
    if width is not None and width > 0 and data.shape[0] > width:
        edges = np.linspace(0, data.shape[0], width + 1).astype(int)
        data = np.array(
            [
                np.nanmean(data[a:b]) if b > a else math.nan
                for a, b in zip(edges[:-1], edges[1:])
            ]
        )
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return " " * data.shape[0]
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for v in data:
        if not math.isfinite(v):
            chars.append(" ")
            continue
        level = 0 if span == 0 else int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def bar_chart(
    labels: list[str],
    values: list[float],
    *,
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal bar chart with aligned labels and value annotations."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels for {len(values)} values"
        )
    if not labels:
        return title or ""
    vmax = max(max(values), 0.0)
    label_w = max(len(str(l)) for l in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        n = 0 if vmax == 0 else int(round(value / vmax * width))
        bar = _BAR_CHAR * max(n, 0)
        lines.append(f"{str(label):<{label_w}} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: list[str],
    series: dict[str, list[float]],
    *,
    width: int = 30,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Several series per group (Fig. 8's stacked system comparison).

    Bars are scaled against the global maximum so groups are comparable.
    """
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(groups)} groups"
            )
    vmax = max((max(v) for v in series.values() if v), default=0.0)
    name_w = max((len(n) for n in series), default=0)
    lines = []
    if title:
        lines.append(title)
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            v = values[gi]
            n = 0 if vmax == 0 else int(round(v / vmax * width))
            lines.append(f"  {name:<{name_w}} | {_BAR_CHAR * n} {v:.3g}{unit}")
    return "\n".join(lines)


def histogram(
    values: list[float],
    *,
    bins: int = 12,
    width: int = 40,
    title: str | None = None,
) -> str:
    """Vertical-label histogram of a latency (or any scalar) distribution."""
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    data = np.asarray(values, dtype=float)
    data = data[np.isfinite(data)]
    lines = []
    if title:
        lines.append(title)
    if data.size == 0:
        lines.append("(no data)")
        return "\n".join(lines)
    counts, edges = np.histogram(data, bins=bins)
    cmax = counts.max()
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        n = 0 if cmax == 0 else int(round(count / cmax * width))
        lines.append(f"[{lo:9.3g}, {hi:9.3g}) | {_BAR_CHAR * n} {count}")
    return "\n".join(lines)
