"""Pipeline-stall detection and recovery measurement (§9.3).

The paper's methodology: a stall begins when response latency exceeds
1.5x the baseline (P25 latency under normal operation) and has recovered
when latency returns under 1.2x baseline.  We evaluate this over the
completion-ordered latency series, smoothed with a short moving median so
single outlier completions do not open/close episodes spuriously.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StallEpisode:
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _moving_median(values: np.ndarray, window: int) -> np.ndarray:
    if window <= 1 or values.size <= window:
        return values
    out = np.empty_like(values)
    half = window // 2
    for i in range(values.size):
        lo = max(i - half, 0)
        hi = min(i + half + 1, values.size)
        out[i] = np.median(values[lo:hi])
    return out


def detect_stalls(
    completion_times,
    latencies,
    *,
    stall_factor: float = 1.5,
    recover_factor: float = 1.2,
    baseline_quantile: float = 25.0,
    smooth_window: int = 5,
) -> list[StallEpisode]:
    """Find stall episodes in a latency series (per the §9.3 definitions)."""
    t = np.asarray(list(completion_times), dtype=float)
    lat = np.asarray(list(latencies), dtype=float)
    if t.size != lat.size:
        raise ValueError("completion_times and latencies must align")
    if t.size < 8:
        return []
    order = np.argsort(t)
    t, lat = t[order], lat[order]
    baseline = float(np.percentile(lat, baseline_quantile))
    if baseline <= 0:
        return []
    smoothed = _moving_median(lat, smooth_window)
    stall_at = baseline * stall_factor
    recover_at = baseline * recover_factor
    episodes: list[StallEpisode] = []
    start: float | None = None
    for ti, li in zip(t, smoothed):
        if start is None and li > stall_at:
            start = ti
        elif start is not None and li < recover_at:
            episodes.append(StallEpisode(start, ti))
            start = None
    if start is not None:
        episodes.append(StallEpisode(start, float(t[-1])))
    return episodes


def recovery_times(episodes: list[StallEpisode]) -> list[float]:
    return [e.duration for e in episodes]


def median_recovery(episodes: list[StallEpisode]) -> float:
    times = recovery_times(episodes)
    if not times:
        return 0.0
    return float(np.median(times))
