"""Per-run metric collection shared by all serving systems."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.latency import LatencyBreakdown, percentiles
from repro.metrics.stalls import detect_stalls, recovery_times
from repro.workloads.requests import Request


@dataclass
class ScalingEvent:
    time: float
    kind: str  # "scale_out" | "scale_in" | "refactor"
    detail: str = ""
    wait_time: float = 0.0  # allocation wait
    init_time: float = 0.0  # load/transition duration
    warm: bool = False


@dataclass
class RunSummary:
    """Final numbers for one (system, workload) run."""

    system: str
    duration: float
    offered: int
    completed: int
    goodput: int
    goodput_rate: float
    breakdown: LatencyBreakdown
    latency_percentiles: dict[int, float]
    mean_latency: float
    mean_prefill_latency: float
    gpu_utilization: float
    gpus_used: int
    mean_queue_length: float
    p95_queue_length: float
    stall_cycle: float
    median_recovery: float
    refactor_count: int
    scale_out_count: int
    warm_start_rate: float
    mean_init_time: float
    mean_alloc_wait: float
    # Time-to-first-token tail (prefill latency includes any deploy/queue
    # wait, so cold starts land here) — the cold-start economy headline.
    p99_ttft: float = 0.0
    # --- QoS (filled by multi-tenant drivers; defaults = unclassed) ---
    slo_class: str = ""  # the tenant's SLO class name, "" when unclassed
    shed: int = 0  # admission sheds charged to this tenant
    # Goodput over *everything offered* (sheds count as misses); the
    # plain goodput_rate above is goodput over admitted work only.
    slo_attainment: float = 0.0
    # Arbitration / elastic-contract traffic for this tenant (zeros when
    # the control plane or elastic contracts are off).
    preemptions_won: int = 0
    preemptions_lost: int = 0
    borrows: int = 0
    reclaims: int = 0


class MetricsCollector:
    """Accumulates request records, queue samples and operational events."""

    def __init__(self, system: str):
        self.system = system
        self.records: list[Request] = []
        self.submit_times: list[float] = []
        self.queue_samples: list[tuple[float, int]] = []
        self.events: list[ScalingEvent] = []

    @property
    def offered(self) -> int:
        return len(self.submit_times)

    # ------------------------------------------------------------------
    def on_submit(self, request: Request) -> None:
        self.submit_times.append(request.arrival_time)

    def on_complete(self, request: Request) -> None:
        self.records.append(request)

    def sample_queue(self, now: float, length: int) -> None:
        self.queue_samples.append((now, length))

    def on_event(self, event: ScalingEvent) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------
    def summarize(
        self,
        duration: float,
        *,
        gpu_busy_seconds: float = 0.0,
        gpus_used: int = 0,
        total_gpus: int = 0,
        measure_from: float = 0.0,
    ) -> RunSummary:
        """Summarise requests arriving at/after ``measure_from`` (warm-up
        transients excluded from the measured epoch)."""
        offered = sum(1 for t in self.submit_times if t >= measure_from)
        done = [
            r
            for r in self.records
            if r.completed and r.arrival_time >= measure_from
        ]
        latencies = np.array([r.latency for r in done]) if done else np.array([])
        goodput = sum(1 for r in done if r.slo_met)
        queue = np.array([r.queue_time for r in done]) if done else np.array([])
        execution = np.array([r.exec_time for r in done]) if done else np.array([])
        comm = np.array([r.comm_time for r in done]) if done else np.array([])
        prefill = np.array(
            [r.prefill_latency for r in done if r.prefill_latency is not None]
        )
        qlens = np.array(
            [q for t, q in self.queue_samples if t >= measure_from]
        )
        episodes = detect_stalls(
            [r.completion_time for r in done], [r.latency for r in done]
        )
        recoveries = recovery_times(episodes)
        # Events obey the measurement epoch like every other population:
        # warm-up deploys must not pollute warm_start_rate / init-time /
        # alloc-wait means (nor refactor_count) of the measured window.
        scale_outs = [
            e
            for e in self.events
            if e.kind == "scale_out" and e.time >= measure_from
        ]
        refactors = [
            e
            for e in self.events
            if e.kind == "refactor" and e.time >= measure_from
        ]
        denominator = max(gpus_used, 1) * duration
        return RunSummary(
            system=self.system,
            duration=duration,
            offered=offered,
            completed=len(done),
            goodput=goodput,
            goodput_rate=goodput / offered if offered else 0.0,
            breakdown=LatencyBreakdown(
                queue=float(queue.mean()) if queue.size else 0.0,
                execution=float(execution.mean()) if execution.size else 0.0,
                communication=float(comm.mean()) if comm.size else 0.0,
            ),
            latency_percentiles=percentiles(latencies),
            mean_latency=float(latencies.mean()) if latencies.size else 0.0,
            mean_prefill_latency=float(prefill.mean()) if prefill.size else 0.0,
            gpu_utilization=min(gpu_busy_seconds / denominator, 1.0)
            if denominator > 0
            else 0.0,
            gpus_used=gpus_used,
            mean_queue_length=float(qlens.mean()) if qlens.size else 0.0,
            p95_queue_length=float(np.percentile(qlens, 95)) if qlens.size else 0.0,
            stall_cycle=float(np.mean(recoveries)) if recoveries else 0.0,
            median_recovery=float(np.median(recoveries)) if recoveries else 0.0,
            refactor_count=len(refactors),
            scale_out_count=len(scale_outs),
            warm_start_rate=(
                sum(1 for e in scale_outs if e.warm) / len(scale_outs)
                if scale_outs
                else 0.0
            ),
            mean_init_time=(
                float(np.mean([e.init_time for e in scale_outs]))
                if scale_outs
                else 0.0
            ),
            mean_alloc_wait=(
                float(np.mean([e.wait_time for e in scale_outs]))
                if scale_outs
                else 0.0
            ),
            p99_ttft=float(np.percentile(prefill, 99)) if prefill.size else 0.0,
        )
