"""GPU placement objective with the multiplexing penalty (Eq. 6-9).

The allocator enforces the hard constraints (memory, Eq. 7; same-model
anti-affinity, §6.2); this module supplies the *soft* objective: maximise
per-GPU throughput efficiency minus the CV-dependent multiplexing penalty
applied when models share a GPU (Eq. 9).
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.gpu import GPU


def multiplexing_penalty(
    cv: float, *, gamma0: float = 0.08, alpha: float = 0.25
) -> float:
    """Eq. 9: gamma(CV) = gamma0 * (1 + alpha * CV^2)."""
    if gamma0 < 0 or alpha < 0:
        raise ValueError("penalty coefficients must be non-negative")
    return gamma0 * (1.0 + alpha * cv * cv)


def interference_multiplier(
    gpu: GPU, cv: float, *, gamma0: float = 0.08, alpha: float = 0.25
) -> float:
    """Execution-time inflation on a shared GPU.

    The indicator of Eq. 6 applies the penalty only when more than one
    model is resident; each additional co-located model adds one penalty
    unit (concurrent demand spikes compound).
    """
    others = max(gpu.colocated_model_count - 1, 0)
    if others == 0:
        return 1.0
    return 1.0 + multiplexing_penalty(cv, gamma0=gamma0, alpha=alpha) * others


def make_eq6_scorer(
    cv_of_model: Callable[[], float],
    *,
    gamma0: float = 0.08,
    alpha: float = 0.25,
    prefer_colocation: bool = False,
) -> Callable[[GPU], float]:
    """Placement scorer implementing the Eq. 6 objective.

    Default behaviour (FlexPipe): prefer empty GPUs when the workload is
    bursty — the penalty term dominates — but tolerate consolidation for
    stable workloads.  ``prefer_colocation=True`` flips the sign of the
    sharing term (MuxServe-style statistical multiplexing).
    """

    def score(gpu: GPU) -> float:
        free_frac = gpu.free_fraction  # throughput-per-memory proxy (T/m)
        shared = gpu.colocated_model_count > 0
        penalty = multiplexing_penalty(cv_of_model(), gamma0=gamma0, alpha=alpha)
        if prefer_colocation:
            return free_frac + (0.5 if shared else 0.0)
        return free_frac - (penalty if shared else 0.0)

    return score
