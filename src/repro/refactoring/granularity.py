"""Granularity adaptation (Eq. 4) and multi-granular instance counts (Eq. 5).

Per-rung throughput/latency estimates come from the calibrated cost model
("cached performance profiles" in §6.3); the Eq. 4 score trades them off
and aligns the choice with the live CV via the exponential matching term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.profiler import ModelProfile
from repro.partitioning.batch_scaling import activation_bytes
from repro.partitioning.ladder import GranularityLadder
from repro.partitioning.plan import PartitionPlan


def estimate_throughput(
    profile: ModelProfile,
    plan: PartitionPlan,
    *,
    batch: int | None = None,
    prompt_tokens: int = 512,
    output_tokens: int = 16,
) -> float:
    """Steady-state requests/second of one replica of ``plan``.

    The pipeline admits a new batch every bottleneck-stage busy period, so
    throughput = batch / max_k busy_k(batch).
    """
    b = batch or plan.max_batch
    b = max(min(b, plan.max_batch), 1)
    cm = profile.cost_model
    bottleneck = 0.0
    for stage in plan.stages:
        busy = cm.prefill_time(
            stage.profile.flops_per_token, b * prompt_tokens
        ) + output_tokens * cm.decode_iter_time(stage.param_bytes, b)
        bottleneck = max(bottleneck, busy)
    return b / bottleneck


def estimate_latency(
    profile: ModelProfile,
    plan: PartitionPlan,
    *,
    batch: int = 1,
    prompt_tokens: int = 512,
    output_tokens: int = 16,
) -> float:
    """Unloaded single-batch response time of ``plan`` (exec + comm)."""
    cm = profile.cost_model
    total = 0.0
    stages = plan.stages
    for k, stage in enumerate(stages):
        total += cm.prefill_time(stage.profile.flops_per_token, batch * prompt_tokens)
        total += output_tokens * cm.decode_iter_time(stage.param_bytes, batch)
        if k < len(stages) - 1:
            act_ptok = stage.profile.boundary_act_bytes_per_token
            base = 128 * act_ptok
            total += cm.hop_time(activation_bytes(base * prompt_tokens, batch))
            total += output_tokens * cm.hop_time(activation_bytes(base, batch))
    return total


def instance_count(
    required_rate: float,
    rung_throughput: float,
    n_stages: int,
    *,
    beta1: float = 1.0,
    beta2: float = 0.02,
) -> int:
    """Eq. 5: M(g_k) = ceil(mu_total / mu_k), mu_k = T_k / (b1 + b2*eta_k)."""
    if rung_throughput <= 0:
        raise ValueError("rung_throughput must be positive")
    mu_k = rung_throughput / (beta1 + beta2 * n_stages)
    return max(int(math.ceil(required_rate / mu_k)), 1)


@dataclass(frozen=True)
class RungEstimate:
    """Cached performance profile of one granularity rung."""

    n_stages: int
    batch: int
    throughput: float  # T_k (req/s per replica at full batch)
    latency: float  # L_k (unloaded single-request response time)
    cv_setpoint: float  # ν_k


class GranularityPolicy:
    """Eq. 4 selection over the ladder's rungs."""

    def __init__(
        self,
        profile: ModelProfile,
        ladder: GranularityLadder,
        *,
        alpha: float = 0.5,
        sigma: float = 1.2,
        cv_setpoint_scale: float = 4.0,
        prompt_tokens: int = 512,
        output_tokens: int = 16,
        batch_cap: int | None = None,
    ):
        if not 0 <= alpha <= 1:
            raise ValueError("alpha must be in [0, 1]")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.profile = profile
        self.ladder = ladder
        self.alpha = alpha
        self.sigma = sigma
        self.estimates: dict[int, RungEstimate] = {}
        for count in ladder.stage_counts:
            plan = ladder.plan(count)
            batch = min(plan.max_batch, batch_cap or plan.max_batch)
            self.estimates[count] = RungEstimate(
                n_stages=count,
                batch=batch,
                throughput=estimate_throughput(
                    profile,
                    plan,
                    batch=batch,
                    prompt_tokens=prompt_tokens,
                    output_tokens=output_tokens,
                ),
                latency=estimate_latency(
                    profile,
                    plan,
                    prompt_tokens=prompt_tokens,
                    output_tokens=output_tokens,
                ),
                cv_setpoint=(count / cv_setpoint_scale) ** 2,
            )
        self._t_max = max(e.throughput for e in self.estimates.values())
        self._l_min = min(e.latency for e in self.estimates.values())

    # ------------------------------------------------------------------
    def score(self, n_stages: int, cv: float) -> float:
        """Eq. 4 score of one rung at the current ν_t."""
        est = self.estimates[n_stages]
        quality = self.alpha * (est.throughput / self._t_max) + (
            1 - self.alpha
        ) * (self._l_min / est.latency)
        match = math.exp(-abs(cv - est.cv_setpoint) / self.sigma)
        return quality * match

    def select(self, cv: float) -> int:
        """g* = argmax over the candidate set G (Eq. 4)."""
        return max(self.estimates, key=lambda k: self.score(k, cv))

    def scores(self, cv: float) -> dict[int, float]:
        return {k: self.score(k, cv) for k in self.estimates}
