"""Inflight refactoring executor (Fig. 6, §6.3).

Transition between ladder rungs without pausing service:

1. **Plan** — map every target stage onto the fine-stage lattice; stages
   whose leading fine range already resides on a GPU *reuse* it (splits
   load nothing on the retained GPU; merges load only the complement).
2. **Prepare** — reserve target memory (transiently co-resident with the
   old stage, falling back to fresh GPUs when a device cannot hold both),
   load missing parameters from the best source (peer GPU via RDMA /
   sendfile, host-memory warm cache, or cold storage), and migrate KV
   shards asynchronously while the old chain keeps serving.
3. **Switch** — a metadata gateway update plus a delta KV sync pause of a
   few milliseconds; new batches run on the new chain, in-flight batches
   finish on the old one, old reservations release as their stages retire.

The Eq. 10 consistency protocol is exercised for a representative request
on every migration (snapshot -> decode continues -> delta sync) and the
invariant is asserted.

Two opt-in extensions (both inert until their flag is set):

* **In-place transitions** (``enable_inplace``) — following PipeLive,
  a transition whose target stages mostly survive on their current GPUs
  resizes the *live* reservations in place instead of standing up a full
  second chain: only the parameter/KV delta moves, reused devices hold
  old + delta (not old + full new stage), and unchanged stages serve
  throughout.  A cost model picks in-place vs. chain per transition from
  the delta bytes, the tenant's share headroom, and disturbance risk.
* **Preemptible prepared claims** (``preemptible_claims``) — the
  prepared chain registers as a first-class ``PendingClaim`` with the
  allocator, so QoS preempt-or-wait can cancel a lower-class tenant's
  in-flight preparation; the executor rolls back to the still-serving
  old chain through the normal exactly-once release path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cluster.allocator import (
    AllocationError,
    PendingClaim,
    StageReservation,
    degrade_until_fit,
)
from repro.core.context import ServingContext
from repro.metrics.collector import MetricsCollector, ScalingEvent
from repro.models.profiler import ModelProfile
from repro.partitioning.ladder import GranularityLadder
from repro.pipeline.kvcache import KVCacheState, delta_sync, snapshot_transfer
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.scaling.warm_cache import HostParamCache


@dataclass
class TransitionPlan:
    """Everything needed to execute one granularity transition."""

    target_stages: int
    reservations: list[StageReservation]
    load_duration: float
    kv_duration: float
    kv_bytes: float
    reused_gpus: int
    fresh_gpus: int
    # Batch the target chain was sized for; under memory degradation this
    # is below the rung's max_batch and becomes the post-switch batch cap.
    batch: int
    # Prepared-chain claim (preemptible-claims mode) and a unique token
    # the auditor uses to assert switched/aborted disjointness.
    claim: PendingClaim | None = None
    token: int = 0
    # Per-stage load completion times (pipelined mode): the switch happens
    # once stage 0 is ready; later stages open their gates as they land.
    stage_load_times: tuple[float, ...] = ()

    @property
    def duration(self) -> float:
        return max(self.load_duration, self.kv_duration)


@dataclass
class InPlaceTransition:
    """A live transition that mutates the serving chain's reservations.

    Reused stages keep their ``StageReservation`` object — grown by the
    parameter/KV delta for the co-residency window and shrunk back to the
    target footprint when the old chain retires — so the replica never
    holds a second full copy of the pipeline.  ``fresh`` lists the stages
    that could not survive in place and were allocated normally.
    """

    target_stages: int
    reservations: list[StageReservation]
    # (reservation, bytes before the transition, target bytes) per reused
    # stage; rollback restores the first, retirement shrinks to the second.
    resized: list[tuple[StageReservation, float, float]]
    fresh: list[StageReservation]
    load_duration: float
    kv_duration: float
    kv_bytes: float
    delta_bytes: float
    reused_gpus: int
    fresh_gpus: int
    batch: int
    started_at: float = 0.0
    claim: PendingClaim | None = None
    token: int = 0

    @property
    def duration(self) -> float:
        return max(self.load_duration, self.kv_duration)


def plan_inplace_delta(
    old_groups: list[tuple[int, int]],
    new_groups: list[tuple[int, int]],
    unit_param_bytes: list[float],
    unit_kv_bytes: list[float],
) -> list[dict]:
    """Pure in-place planning math over a fine-stage lattice.

    ``old_groups``/``new_groups`` are ``(first_fine, last_fine_exclusive)``
    spans; the byte vectors are per fine unit.  Returns one dict per new
    stage: whether it reuses its leading owner's device, the parameter
    bytes that must move (the delta beyond what is already resident), and
    the KV bytes that change devices.  The executor and the migration
    fuzzer share this function, so the fuzzer exercises exactly the
    delta rule the executor plans with.
    """
    fine_owner: dict[int, int] = {}
    for j, (lo, hi) in enumerate(old_groups):
        for f in range(lo, hi):
            fine_owner[f] = j
    claimed: set[int] = set()
    out: list[dict] = []
    for lo, hi in new_groups:
        owner = fine_owner[lo]
        owner_group = old_groups[owner]
        reused = owner_group[0] == lo and owner not in claimed
        new_params = float(sum(unit_param_bytes[lo:hi]))
        stage_kv = float(sum(unit_kv_bytes[lo:hi]))
        if reused:
            claimed.add(owner)
            stay_hi = min(hi, owner_group[1])
            resident = float(sum(unit_param_bytes[lo:stay_hi]))
            kv_stays = float(sum(unit_kv_bytes[lo:stay_hi]))
        else:
            resident = 0.0
            kv_stays = 0.0
        out.append(
            {
                "reused": reused,
                "owner": owner,
                "resident_param_bytes": resident,
                "param_delta_bytes": max(new_params - resident, 0.0),
                "kv_moved_bytes": max(stage_kv - kv_stays, 0.0),
                "kv_total_bytes": stage_kv,
            }
        )
    return out


class RefactoringExecutor:
    """Performs live split/merge transitions for one model's replicas."""

    def __init__(
        self,
        ctx: ServingContext,
        profile: ModelProfile,
        ladder: GranularityLadder,
        metrics: MetricsCollector,
        *,
        warm_cache: HostParamCache | None = None,
        decision_latency: float = 0.002,
        switch_pause: float = 0.001,
        batch_cap: int | None = None,
        # Pipelined chain transitions: switch to the new chain as soon as
        # its first stage has loaded, gating later stages until their own
        # loads complete (mirrors ReplicaFactory's pipelined deploys).
        pipelined_loading: bool = False,
    ):
        self.ctx = ctx
        self.profile = profile
        self.ladder = ladder
        self.metrics = metrics
        self.warm_cache = warm_cache
        self.decision_latency = decision_latency
        self.switch_pause = switch_pause
        self.batch_cap = batch_cap
        self.pipelined_loading = pipelined_loading
        self.transitions_started = 0
        self.transitions_completed = 0
        self.transitions_aborted = 0
        self.consistency_checks = 0
        self._inflight: set[str] = set()
        # In-flight transitions by replica name; kept so a platform
        # reclamation can abort them (and free their prepared
        # reservations) the moment a victim GPU is cordoned.
        self._transitions: dict[str, tuple[PipelineReplica, object, object]] = {}
        # --- opt-in extensions (inert until armed) ---
        self.enable_inplace = False
        self.preemptible_claims = False
        self.transitions_inplace = 0
        self.transitions_chain = 0
        self._token_counter = itertools.count(1)
        # Auditor evidence: a cancelled preparation must never switch in.
        self.switched_tokens: set[int] = set()
        self.aborted_tokens: set[int] = set()
        # (replica, start, end) per completed in-place transition — the
        # auditor asserts the replica never left ACTIVE inside the span.
        self.inplace_spans: list[tuple[PipelineReplica, float, float]] = []
        # Shared reservations awaiting their post-retirement trim.
        self._shrink_to: dict[str, float] = {}

    # ------------------------------------------------------------------
    def refactoring(self, replica: PipelineReplica) -> bool:
        return replica.name in self._inflight

    def refactor(self, replica: PipelineReplica, target_stages: int) -> bool:
        """Begin an inflight transition; returns False if not possible now."""
        if replica.state is not ReplicaState.ACTIVE:
            return False
        if replica.name in self._inflight:
            return False
        if target_stages == replica.plan.n_stages:
            return False
        plan = None
        for mode in self._mode_attempts(replica, target_stages):
            try:
                if mode == "inplace":
                    plan = self._prepare_inplace(replica, target_stages)
                else:
                    plan = self._prepare(replica, target_stages)
                break
            except AllocationError:
                continue
        if plan is None:
            return False
        plan.token = next(self._token_counter)
        self._inflight.add(replica.name)
        self.transitions_started += 1
        # Decision latency, then the asynchronous preparation window (old
        # chain keeps serving), then the switch pause.
        total = self.decision_latency + plan.duration + self.switch_pause
        event = self.ctx.sim.schedule(total, self._switch, replica, plan)
        self._transitions[replica.name] = (replica, plan, event)
        self._register_claim(replica, plan)
        sim = self.ctx.sim
        if sim.tracer is not None:
            sim.tracer.refactor_begin(replica.name, sim.now)
        if sim.recorder is not None:
            sim.recorder.record(
                sim.now,
                "refactor_started",
                replica=replica.name,
                model=self.profile.spec.name,
                target_stages=plan.target_stages,
                inplace=isinstance(plan, InPlaceTransition),
                expected_latency=total,
            )
        return True

    def _mode_attempts(
        self, replica: PipelineReplica, target_stages: int
    ) -> tuple[str, ...]:
        """Preferred mode first; with in-place armed the other mode is the
        fallback when preparation cannot place."""
        if not self.enable_inplace:
            return ("chain",)
        mode = self._choose_mode(replica, target_stages)
        return (mode, "inplace" if mode == "chain" else "chain")

    def _choose_mode(self, replica: PipelineReplica, target_stages: int) -> str:
        """Cost-model choice between in-place and prepared-chain.

        Inputs: the transient byte cost of each mode (in-place pays only
        the delta on surviving devices; chain pays a full second copy),
        the tenant's share headroom (a chain that cannot fit under the
        cap forces in-place), and disturbance risk (in-place mutates the
        serving chain's reservations, so it must buy a real byte saving
        when plenty of KV is in flight).
        """
        est = self._estimate_modes(replica, target_stages)
        if est is None:
            return "chain"
        inplace_bytes, chain_bytes, reuse_frac = est
        if reuse_frac <= 0.0:
            return "chain"  # nothing survives: in-place degenerates to a chain
        headroom = self.ctx.allocator.share_headroom(self.profile.spec.name)
        if headroom < chain_bytes:
            return "inplace"
        total_params = max(self.profile.graph.param_bytes(0, None), 1.0)
        risk = min(replica.kv_bytes_in_flight() / total_params, 1.0)
        return "inplace" if inplace_bytes * (1.0 + risk) < chain_bytes else "chain"

    def _estimate_modes(
        self, replica: PipelineReplica, target_stages: int
    ) -> tuple[float, float, float] | None:
        """(in-place transient bytes, chain transient bytes, reuse fraction)
        for the full-batch target — estimated without reserving anything."""
        old_rung = self.ladder.rung(replica.plan.n_stages)
        new_rung = self.ladder.rung(target_stages)
        new_plan = new_rung.plan
        batch = max(
            min(new_plan.max_batch, self.batch_cap or new_plan.max_batch), 1
        )
        mems = new_plan.memory_per_stage(
            batch, self.profile.spec.kv_bytes_per_request
        )
        fine_owner: dict[int, int] = {}
        for j, (lo, hi) in enumerate(old_rung.groups):
            for f in range(lo, hi):
                fine_owner[f] = j
        claimed: set[int] = set()
        inplace_bytes = 0.0
        reused = 0
        for k, (lo, hi) in enumerate(new_rung.groups):
            owner = fine_owner[lo]
            owner_group = old_rung.groups[owner]
            if owner_group[0] == lo and owner not in claimed:
                claimed.add(owner)
                reused += 1
                stage_plan = new_plan.stages[k]
                owner_plan = replica.stages[owner].plan
                resident_lo = max(stage_plan.start, owner_plan.start)
                resident_hi = min(stage_plan.end, owner_plan.end)
                resident = (
                    self.profile.graph.param_bytes(resident_lo, resident_hi)
                    if resident_lo < resident_hi
                    else 0.0
                )
                inplace_bytes += max(mems[k] - resident, 0.0)
            else:
                inplace_bytes += mems[k]
        chain_bytes = float(sum(mems))
        return inplace_bytes, chain_bytes, reused / max(len(new_rung.groups), 1)

    def _register_claim(self, replica: PipelineReplica, plan) -> None:
        """Register the preparation as a preemptible prepared-chain claim.

        Only the bytes a preemption could actually free are claimed: the
        whole prepared chain for a chain transition, the fresh stages for
        an in-place one (the shared reservations back the serving chain
        and are never preemptible).
        """
        if not self.preemptible_claims:
            return
        preemptible = (
            plan.fresh
            if isinstance(plan, InPlaceTransition)
            else plan.reservations
        )
        if not preemptible:
            return
        plan.claim = self.ctx.allocator.register_pending_deploy(
            self.profile.spec.name,
            preemptible,
            cancel=lambda n=replica.name, t=plan.token: self._abort_transition(
                n, "(preempted)", token=t
            ),
            kind="prepared-chain",
        )

    # ------------------------------------------------------------------
    def abort_on_cordon(self, gpu) -> int:
        """Abort every in-flight transition with a prepared stage on ``gpu``.

        A prepared reservation is not a stage of any replica, so a
        reclamation drain cannot reach it; without this hook the memory
        would sit on the reclaimed GPU until the (cancelled) switch fired.
        Serverless platforms notify instances at reclamation time, so the
        executor releases the prepared chain immediately — inside the
        downtime window — and the transition simply never happens.
        Returns the number of transitions aborted.
        """
        aborted = 0
        for name, (_replica, plan, _event) in list(self._transitions.items()):
            if not any(r.gpu is gpu for r in plan.reservations):
                continue
            if self._abort_transition(name, f"(reclaimed {gpu.gid})"):
                aborted += 1
        return aborted

    def _abort_transition(
        self, name: str, why: str, *, token: int | None = None
    ) -> bool:
        """Cancel an in-flight transition and roll back its preparation.

        Shared by reclamation (cordon) and prepared-claim preemption;
        ``token`` guards a stale preemption cancel against a newer
        transition that reused the replica name.
        """
        entry = self._transitions.get(name)
        if entry is None:
            return False
        replica, plan, event = entry
        if token is not None and plan.token != token:
            return False
        del self._transitions[name]
        event.cancel()
        # Resolving is a no-op for a preempted claim (its state must stay
        # "preempted" for the auditor) and for claim=None.
        self.ctx.allocator.claim_resolved(plan.claim, activated=False)
        self._rollback(plan)
        self._inflight.discard(name)
        self.transitions_aborted += 1
        if plan.token:
            self.aborted_tokens.add(plan.token)
        sim = self.ctx.sim
        if sim.tracer is not None:
            sim.tracer.refactor_end(name, sim.now)
        if sim.recorder is not None:
            sim.recorder.record(
                sim.now,
                "refactor_aborted",
                replica=name,
                model=self.profile.spec.name,
                target_stages=plan.target_stages,
                why=why,
            )
        self.metrics.on_event(
            ScalingEvent(
                time=self.ctx.sim.now,
                kind="refactor_aborted",
                detail=f"{replica.name} -> {plan.target_stages} stages {why}",
            )
        )
        return True

    def _rollback(self, plan) -> None:
        """Return a preparation's resources; the old chain keeps serving."""
        if isinstance(plan, InPlaceTransition):
            for reservation in plan.fresh:
                if not reservation.released:
                    self.ctx.allocator.release(reservation)
            for reservation, old_bytes, _final in plan.resized:
                if not reservation.released and reservation.nbytes > old_bytes:
                    self.ctx.allocator.resize(reservation, old_bytes)
        else:
            for reservation in plan.reservations:
                if not reservation.released:
                    self.ctx.allocator.release(reservation)

    # ------------------------------------------------------------------
    def _prepare(
        self, replica: PipelineReplica, target_stages: int
    ) -> TransitionPlan:
        mover = self.ctx.data_mover
        old_rung = self.ladder.rung(replica.plan.n_stages)
        new_rung = self.ladder.rung(target_stages)
        new_plan = new_rung.plan
        batch = max(min(new_plan.max_batch, self.batch_cap or new_plan.max_batch), 1)
        # Memory-aware degradation (same policy as ReplicaFactory.deploy):
        # when the fragmented cluster cannot host the target rung at the
        # full batch's KV reservation, halve the batch until it fits
        # rather than abandoning the transition outright.
        batch, (reservations, stage_times, kv_bytes_moving, reused, fresh) = (
            degrade_until_fit(
                batch,
                lambda b: self._reserve_target(replica, old_rung, new_rung, b),
            )
        )
        # Pipelined mode swaps once the first stage is ready (later stages
        # stay gated until their own loads land); classic mode waits for
        # the slowest stage.
        if self.pipelined_loading and stage_times:
            load_duration = stage_times[0]
        else:
            load_duration = max(stage_times, default=0.0)

        kv_plan = mover.plan(
            kv_bytes_moving, same_server=False, src_rdma=True, dst_rdma=True
        )
        self._exercise_consistency_protocol(replica)
        return TransitionPlan(
            target_stages=target_stages,
            reservations=reservations,
            load_duration=load_duration,
            kv_duration=kv_plan.duration if kv_bytes_moving > 0 else 0.0,
            kv_bytes=kv_bytes_moving,
            reused_gpus=reused,
            fresh_gpus=fresh,
            batch=batch,
            stage_load_times=tuple(stage_times),
        )

    def _reserve_target(
        self,
        replica: PipelineReplica,
        old_rung,
        new_rung,
        batch: int,
    ) -> tuple[list[StageReservation], list[float], float, int, int]:
        """Reserve the target chain at ``batch``; all-or-nothing.

        Returns the per-stage best-source load times (callers reduce them
        to a single duration depending on pipelined vs. classic mode).
        """
        model = self.profile.spec.name
        new_plan = new_rung.plan
        mems = new_plan.memory_per_stage(
            batch, self.profile.spec.kv_bytes_per_request
        )

        # Which old stage hosts each fine stage today?
        fine_owner: dict[int, int] = {}
        for j, (lo, hi) in enumerate(old_rung.groups):
            for f in range(lo, hi):
                fine_owner[f] = j
        old_stage_runtime = {j: replica.stages[j] for j in range(len(replica.stages))}

        reservations: list[StageReservation] = []
        claimed: set[str] = set()
        stage_times: list[float] = []
        kv_bytes_moving = 0.0
        reused = fresh = 0
        try:
            for k, (lo, hi) in enumerate(new_rung.groups):
                stage_plan = new_plan.stages[k]
                owner_idx = fine_owner[lo]
                owner_group = old_rung.groups[owner_idx]
                owner_stage = old_stage_runtime[owner_idx]
                gpu = owner_stage.gpu
                reservation = None
                # Reuse: the new stage leads on a GPU that already holds its
                # leading fine range, and no other new stage claimed it.
                if owner_group[0] == lo and gpu.gid not in claimed:
                    try:
                        reservation = self.ctx.allocator.reserve_on(
                            model, gpu, mems[k], allow_same_model=True
                        )
                        claimed.add(gpu.gid)
                        reused += 1
                    except AllocationError:
                        reservation = None  # cannot co-reside: fall through
                if reservation is None:
                    exclude = [
                        r.gpu for r in reservations
                    ] + [s.gpu for s in replica.stages]
                    got = self.ctx.allocator.allocate_stages(
                        model, [mems[k]], exclude=exclude
                    )
                    reservation = got[0]
                    fresh += 1
                reservations.append(reservation)
                stage_times.append(
                    self._stage_load_time(
                        stage_plan, reservation, owner_stage, reused=gpu is reservation.gpu
                    )
                )
                # Fine ranges that change GPUs carry their KV shards along.
                moved_fraction = self._moved_kv_fraction(
                    lo, hi, owner_group, reservation.gpu is gpu
                )
                kv_bytes_moving += (
                    replica.kv_bytes_in_flight()
                    * self.profile.kv_fraction(stage_plan.profile)
                    * moved_fraction
                )
        except AllocationError:
            for reservation in reservations:
                self.ctx.allocator.release(reservation)
            raise
        return reservations, stage_times, kv_bytes_moving, reused, fresh

    def _prepare_inplace(
        self, replica: PipelineReplica, target_stages: int
    ) -> InPlaceTransition:
        """Plan and reserve an in-place transition (PipeLive-style).

        Surviving stages grow their live reservation by the delta only;
        stages that cannot survive are allocated fresh.  The old chain
        serves untouched for the whole preparation window.
        """
        mover = self.ctx.data_mover
        old_rung = self.ladder.rung(replica.plan.n_stages)
        new_rung = self.ladder.rung(target_stages)
        new_plan = new_rung.plan
        batch = max(min(new_plan.max_batch, self.batch_cap or new_plan.max_batch), 1)
        batch, (reservations, resized, fresh_list, load_duration, kv_moving) = (
            degrade_until_fit(
                batch,
                lambda b: self._reserve_inplace(replica, old_rung, new_rung, b),
            )
        )
        if not resized:
            # Nothing survived in place — roll back and let the caller
            # fall through to the chain path, which handles this shape.
            for reservation in fresh_list:
                if not reservation.released:
                    self.ctx.allocator.release(reservation)
            raise AllocationError(
                f"in-place transition for {replica.name} reuses no stage"
            )
        kv_plan = mover.plan(
            kv_moving, same_server=False, src_rdma=True, dst_rdma=True
        )
        self._exercise_consistency_protocol(replica)
        delta_bytes = sum(
            res.nbytes - old_bytes for res, old_bytes, _final in resized
        ) + sum(res.nbytes for res in fresh_list)
        return InPlaceTransition(
            target_stages=target_stages,
            reservations=reservations,
            resized=resized,
            fresh=fresh_list,
            load_duration=load_duration,
            kv_duration=kv_plan.duration if kv_moving > 0 else 0.0,
            kv_bytes=kv_moving,
            delta_bytes=delta_bytes,
            reused_gpus=len(resized),
            fresh_gpus=len(fresh_list),
            batch=batch,
            started_at=self.ctx.sim.now,
        )

    def _reserve_inplace(
        self,
        replica: PipelineReplica,
        old_rung,
        new_rung,
        batch: int,
    ) -> tuple[
        list[StageReservation],
        list[tuple[StageReservation, float, float]],
        list[StageReservation],
        float,
        float,
    ]:
        """Grow surviving reservations / allocate the rest; all-or-nothing."""
        model = self.profile.spec.name
        new_plan = new_rung.plan
        mems = new_plan.memory_per_stage(
            batch, self.profile.spec.kv_bytes_per_request
        )
        fine_owner: dict[int, int] = {}
        for j, (lo, hi) in enumerate(old_rung.groups):
            for f in range(lo, hi):
                fine_owner[f] = j
        old_stage_runtime = {j: replica.stages[j] for j in range(len(replica.stages))}

        reservations: list[StageReservation] = []
        resized: list[tuple[StageReservation, float, float]] = []
        fresh_list: list[StageReservation] = []
        claimed: set[str] = set()
        load_duration = 0.0
        kv_bytes_moving = 0.0
        try:
            for k, (lo, hi) in enumerate(new_rung.groups):
                stage_plan = new_plan.stages[k]
                owner_idx = fine_owner[lo]
                owner_group = old_rung.groups[owner_idx]
                owner_stage = old_stage_runtime[owner_idx]
                gpu = owner_stage.gpu
                reservation = None
                live = owner_stage.reservation
                if (
                    owner_group[0] == lo
                    and gpu.gid not in claimed
                    and not live.released
                ):
                    # Survive in place: grow the live reservation by the
                    # target footprint minus what is already resident
                    # (old params + old KV stay until the chain retires).
                    resident_lo = max(stage_plan.start, owner_stage.plan.start)
                    resident_hi = min(stage_plan.end, owner_stage.plan.end)
                    resident = (
                        self.profile.graph.param_bytes(resident_lo, resident_hi)
                        if resident_lo < resident_hi
                        else 0.0
                    )
                    old_bytes = live.nbytes
                    grow_to = old_bytes + max(mems[k] - resident, 0.0)
                    try:
                        self.ctx.allocator.resize(live, grow_to)
                    except (AllocationError, ValueError):
                        # Share cap says no (AllocationError) or the
                        # device itself cannot hold the delta (the GPU's
                        # over-commit ValueError): place a fresh stage.
                        reservation = None
                    else:
                        reservation = live
                        resized.append((live, old_bytes, mems[k]))
                        claimed.add(gpu.gid)
                if reservation is None:
                    exclude = [
                        r.gpu for r in reservations
                    ] + [s.gpu for s in replica.stages]
                    got = self.ctx.allocator.allocate_stages(
                        model, [mems[k]], exclude=exclude
                    )
                    reservation = got[0]
                    fresh_list.append(reservation)
                reservations.append(reservation)
                load_duration = max(
                    load_duration,
                    self._stage_load_time(
                        stage_plan,
                        reservation,
                        owner_stage,
                        reused=reservation is live,
                    ),
                )
                moved_fraction = self._moved_kv_fraction(
                    lo, hi, owner_group, reservation is live
                )
                kv_bytes_moving += (
                    replica.kv_bytes_in_flight()
                    * self.profile.kv_fraction(stage_plan.profile)
                    * moved_fraction
                )
        except AllocationError:
            for reservation in fresh_list:
                if not reservation.released:
                    self.ctx.allocator.release(reservation)
            for reservation, old_bytes, _final in resized:
                if not reservation.released and reservation.nbytes > old_bytes:
                    self.ctx.allocator.resize(reservation, old_bytes)
            raise
        return reservations, resized, fresh_list, load_duration, kv_bytes_moving

    def _stage_load_time(
        self,
        stage_plan,
        reservation: StageReservation,
        owner_stage,
        *,
        reused: bool,
    ) -> float:
        """Best-source load time for one target stage's missing parameters."""
        cm = self.ctx.cost_model
        mover = self.ctx.data_mover
        resident_lo = max(stage_plan.start, owner_stage.plan.start)
        resident_hi = min(stage_plan.end, owner_stage.plan.end)
        resident = (
            self.profile.graph.param_bytes(resident_lo, resident_hi)
            if resident_lo < resident_hi and reused
            else 0.0
        )
        missing = max(stage_plan.param_bytes - resident, 0.0)
        if missing <= 0:
            return 0.0
        options = []
        # Peer GPUs of the same replica hold the missing ranges today.
        src_server = owner_stage.gpu.server
        dst_server = reservation.gpu.server
        peer = mover.plan(
            missing,
            same_server=src_server.sid == dst_server.sid,
            src_rdma=src_server.rdma,
            dst_rdma=dst_server.rdma,
        )
        options.append(peer.duration)
        if self.warm_cache is not None:
            host_warm, ssd_warm = self.warm_cache.coverage_by_tier(
                dst_server, self.profile, stage_plan.start, stage_plan.end
            )
            if host_warm >= missing:
                options.append(cm.warm_load_time(missing))
            elif host_warm + ssd_warm >= missing:
                # Partially demoted to the SSD tier: price the whole load
                # at NVMe bandwidth (conservative — host-resident bytes
                # would move faster).
                options.append(
                    cm.config.warm_load_overhead
                    + missing / dst_server.ssd_bandwidth
                )
        options.append(cm.cold_load_time(missing))
        return min(options)

    @staticmethod
    def _moved_kv_fraction(
        lo: int, hi: int, owner_group: tuple[int, int], reused: bool
    ) -> float:
        """Fraction of the new stage's fine ranges that changed GPUs."""
        if not reused:
            return 1.0
        span = hi - lo
        stay = max(min(hi, owner_group[1]) - max(lo, owner_group[0]), 0)
        return (span - stay) / span if span else 0.0

    def _exercise_consistency_protocol(self, replica: PipelineReplica) -> None:
        """Run the Eq. 10 snapshot/delta protocol for a representative shard."""
        source = KVCacheState(request_id=0, bytes_per_token=1.0)
        source.append_tokens(int(self.profile.spec.avg_context_tokens))
        target = snapshot_transfer(source)
        source.append_tokens(3)  # decode continues during the async window
        delta_sync(source, target)
        if not target.is_consistent():
            raise RuntimeError("Eq. 10 consistency invariant violated")
        self.consistency_checks += 1

    # ------------------------------------------------------------------
    def _retire_stage(self, stage) -> None:
        """Release a retired old-chain stage's memory — exactly once.

        A reservation shared with the new chain (in-place transition) is
        not released: it shrinks to the new stage's target footprint, the
        old params/KV it carried through the co-residency window going
        away with the resize.
        """
        reservation = stage.reservation
        final = self._shrink_to.pop(reservation.res_id, None)
        if reservation.released:
            return
        if final is not None:
            if reservation.nbytes > final:
                self.ctx.allocator.resize(reservation, final)
            return
        if self.warm_cache is not None:
            self.warm_cache.put(
                reservation.gpu.server,
                self.profile.spec.name,
                stage.plan.start,
                stage.plan.end,
                stage.plan.param_bytes,
                self.ctx.sim.now,
                load_cost=self.ctx.cost_model.cold_load_time(
                    stage.plan.param_bytes
                ),
            )
        self.ctx.allocator.release(reservation)

    def _switch(self, replica: PipelineReplica, plan) -> None:
        sim = self.ctx.sim
        self._inflight.discard(replica.name)
        self._transitions.pop(replica.name, None)
        if sim.tracer is not None:
            sim.tracer.refactor_end(replica.name, sim.now)
        inplace = isinstance(plan, InPlaceTransition)
        if replica.state in (ReplicaState.DRAINING, ReplicaState.RELEASED) or any(
            r.gpu.cordoned for r in plan.reservations
        ):
            # Two races resolve the same way.  Refactor-vs-drain: the
            # replica started dying during the preparation window, so a
            # fresh chain would sit on a replica that stops serving.
            # Refactor-vs-reclamation: the platform reclaimed (cordoned) a
            # GPU holding a prepared stage, so swapping would serve from a
            # reclaimed device for its whole downtime.  Either way, give
            # the prepared resources straight back instead of swapping.
            self.ctx.allocator.claim_resolved(plan.claim, activated=False)
            self._rollback(plan)
            return
        self.ctx.allocator.claim_resolved(plan.claim, activated=True)
        old_n = replica.plan.n_stages
        new_plan = self.ladder.plan(plan.target_stages)
        if inplace:
            for reservation, _old_bytes, final in plan.resized:
                self._shrink_to[reservation.res_id] = final
        replica.on_stage_retired = self._retire_stage
        # The prepared chain only holds KV for ``plan.batch`` requests; a
        # degraded transition therefore also caps the batcher until the
        # next transition re-sizes it.
        if inplace:
            replica.swap_stages_inplace(
                new_plan, plan.reservations, batch_cap=plan.batch
            )
        else:
            replica.swap_stages(new_plan, plan.reservations, batch_cap=plan.batch)
            if self.pipelined_loading and plan.stage_load_times:
                # The swap happened once stage 0 was ready; stages whose
                # loads outlast the preparation window stay gated (jobs
                # queue there) and open exactly when their load lands.
                elapsed = plan.duration + self.switch_pause
                for stage, load_time in zip(
                    replica.stages, plan.stage_load_times
                ):
                    extra = load_time - elapsed
                    if extra > 1e-9:
                        stage.gate_load()
                        sim.schedule(extra, stage.mark_loaded)
        self.transitions_completed += 1
        if plan.token:
            self.switched_tokens.add(plan.token)
        if inplace:
            self.transitions_inplace += 1
            self.inplace_spans.append((replica, plan.started_at, sim.now))
            detail = (
                f"{replica.name} {old_n}->{plan.target_stages} in-place "
                f"(resize {plan.reused_gpus}, fresh {plan.fresh_gpus}, "
                f"delta {plan.delta_bytes / 2**20:.1f} MiB, "
                f"kv {plan.kv_bytes / 2**20:.1f} MiB)"
            )
        else:
            self.transitions_chain += 1
            detail = (
                f"{replica.name} {old_n}->{plan.target_stages} "
                f"(reuse {plan.reused_gpus}, fresh {plan.fresh_gpus}, "
                f"kv {plan.kv_bytes / 2**20:.1f} MiB)"
            )
        if sim.recorder is not None:
            sim.recorder.record(
                sim.now,
                "refactor_switched",
                replica=replica.name,
                model=self.profile.spec.name,
                stages=f"{old_n}->{plan.target_stages}",
                inplace=inplace,
                reused_gpus=plan.reused_gpus,
                fresh_gpus=plan.fresh_gpus,
                kv_bytes=plan.kv_bytes,
            )
        self.metrics.on_event(
            ScalingEvent(
                time=sim.now,
                kind="refactor",
                detail=detail,
                # Full client-visible transition latency: the decision,
                # the asynchronous preparation window, and the switch
                # pause — matching what ``refactor`` actually scheduled.
                init_time=self.decision_latency + plan.duration + self.switch_pause,
                warm=plan.fresh_gpus == 0,
            )
        )
