"""Inflight refactoring executor (Fig. 6, §6.3).

Transition between ladder rungs without pausing service:

1. **Plan** — map every target stage onto the fine-stage lattice; stages
   whose leading fine range already resides on a GPU *reuse* it (splits
   load nothing on the retained GPU; merges load only the complement).
2. **Prepare** — reserve target memory (transiently co-resident with the
   old stage, falling back to fresh GPUs when a device cannot hold both),
   load missing parameters from the best source (peer GPU via RDMA /
   sendfile, host-memory warm cache, or cold storage), and migrate KV
   shards asynchronously while the old chain keeps serving.
3. **Switch** — a metadata gateway update plus a delta KV sync pause of a
   few milliseconds; new batches run on the new chain, in-flight batches
   finish on the old one, old reservations release as their stages retire.

The Eq. 10 consistency protocol is exercised for a representative request
on every migration (snapshot -> decode continues -> delta sync) and the
invariant is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.allocator import (
    AllocationError,
    StageReservation,
    degrade_until_fit,
)
from repro.core.context import ServingContext
from repro.metrics.collector import MetricsCollector, ScalingEvent
from repro.models.profiler import ModelProfile
from repro.partitioning.ladder import GranularityLadder
from repro.pipeline.kvcache import KVCacheState, delta_sync, snapshot_transfer
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.scaling.warm_cache import HostParamCache


@dataclass
class TransitionPlan:
    """Everything needed to execute one granularity transition."""

    target_stages: int
    reservations: list[StageReservation]
    load_duration: float
    kv_duration: float
    kv_bytes: float
    reused_gpus: int
    fresh_gpus: int
    # Batch the target chain was sized for; under memory degradation this
    # is below the rung's max_batch and becomes the post-switch batch cap.
    batch: int

    @property
    def duration(self) -> float:
        return max(self.load_duration, self.kv_duration)


class RefactoringExecutor:
    """Performs live split/merge transitions for one model's replicas."""

    def __init__(
        self,
        ctx: ServingContext,
        profile: ModelProfile,
        ladder: GranularityLadder,
        metrics: MetricsCollector,
        *,
        warm_cache: HostParamCache | None = None,
        decision_latency: float = 0.002,
        switch_pause: float = 0.001,
        batch_cap: int | None = None,
    ):
        self.ctx = ctx
        self.profile = profile
        self.ladder = ladder
        self.metrics = metrics
        self.warm_cache = warm_cache
        self.decision_latency = decision_latency
        self.switch_pause = switch_pause
        self.batch_cap = batch_cap
        self.transitions_started = 0
        self.transitions_completed = 0
        self.transitions_aborted = 0
        self.consistency_checks = 0
        self._inflight: set[str] = set()
        # In-flight transitions by replica name; kept so a platform
        # reclamation can abort them (and free their prepared
        # reservations) the moment a victim GPU is cordoned.
        self._transitions: dict[str, tuple[PipelineReplica, TransitionPlan, object]] = {}

    # ------------------------------------------------------------------
    def refactoring(self, replica: PipelineReplica) -> bool:
        return replica.name in self._inflight

    def refactor(self, replica: PipelineReplica, target_stages: int) -> bool:
        """Begin an inflight transition; returns False if not possible now."""
        if replica.state is not ReplicaState.ACTIVE:
            return False
        if replica.name in self._inflight:
            return False
        if target_stages == replica.plan.n_stages:
            return False
        try:
            plan = self._prepare(replica, target_stages)
        except AllocationError:
            return False
        self._inflight.add(replica.name)
        self.transitions_started += 1
        # Decision latency, then the asynchronous preparation window (old
        # chain keeps serving), then the switch pause.
        total = self.decision_latency + plan.duration + self.switch_pause
        event = self.ctx.sim.schedule(total, self._switch, replica, plan)
        self._transitions[replica.name] = (replica, plan, event)
        return True

    # ------------------------------------------------------------------
    def abort_on_cordon(self, gpu) -> int:
        """Abort every in-flight transition with a prepared stage on ``gpu``.

        A prepared reservation is not a stage of any replica, so a
        reclamation drain cannot reach it; without this hook the memory
        would sit on the reclaimed GPU until the (cancelled) switch fired.
        Serverless platforms notify instances at reclamation time, so the
        executor releases the prepared chain immediately — inside the
        downtime window — and the transition simply never happens.
        Returns the number of transitions aborted.
        """
        aborted = 0
        for name, (replica, plan, event) in list(self._transitions.items()):
            if not any(r.gpu is gpu for r in plan.reservations):
                continue
            event.cancel()
            for reservation in plan.reservations:
                if not reservation.released:
                    self.ctx.allocator.release(reservation)
            del self._transitions[name]
            self._inflight.discard(name)
            self.transitions_aborted += 1
            aborted += 1
            self.metrics.on_event(
                ScalingEvent(
                    time=self.ctx.sim.now,
                    kind="refactor_aborted",
                    detail=f"{replica.name} -> {plan.target_stages} stages "
                    f"(reclaimed {gpu.gid})",
                )
            )
        return aborted

    # ------------------------------------------------------------------
    def _prepare(
        self, replica: PipelineReplica, target_stages: int
    ) -> TransitionPlan:
        mover = self.ctx.data_mover
        old_rung = self.ladder.rung(replica.plan.n_stages)
        new_rung = self.ladder.rung(target_stages)
        new_plan = new_rung.plan
        batch = max(min(new_plan.max_batch, self.batch_cap or new_plan.max_batch), 1)
        # Memory-aware degradation (same policy as ReplicaFactory.deploy):
        # when the fragmented cluster cannot host the target rung at the
        # full batch's KV reservation, halve the batch until it fits
        # rather than abandoning the transition outright.
        batch, (reservations, load_duration, kv_bytes_moving, reused, fresh) = (
            degrade_until_fit(
                batch,
                lambda b: self._reserve_target(replica, old_rung, new_rung, b),
            )
        )

        kv_plan = mover.plan(
            kv_bytes_moving, same_server=False, src_rdma=True, dst_rdma=True
        )
        self._exercise_consistency_protocol(replica)
        return TransitionPlan(
            target_stages=target_stages,
            reservations=reservations,
            load_duration=load_duration,
            kv_duration=kv_plan.duration if kv_bytes_moving > 0 else 0.0,
            kv_bytes=kv_bytes_moving,
            reused_gpus=reused,
            fresh_gpus=fresh,
            batch=batch,
        )

    def _reserve_target(
        self,
        replica: PipelineReplica,
        old_rung,
        new_rung,
        batch: int,
    ) -> tuple[list[StageReservation], float, float, int, int]:
        """Reserve the target chain at ``batch``; all-or-nothing."""
        model = self.profile.spec.name
        new_plan = new_rung.plan
        mems = new_plan.memory_per_stage(
            batch, self.profile.spec.kv_bytes_per_request
        )

        # Which old stage hosts each fine stage today?
        fine_owner: dict[int, int] = {}
        for j, (lo, hi) in enumerate(old_rung.groups):
            for f in range(lo, hi):
                fine_owner[f] = j
        old_stage_runtime = {j: replica.stages[j] for j in range(len(replica.stages))}

        reservations: list[StageReservation] = []
        claimed: set[str] = set()
        load_duration = 0.0
        kv_bytes_moving = 0.0
        reused = fresh = 0
        try:
            for k, (lo, hi) in enumerate(new_rung.groups):
                stage_plan = new_plan.stages[k]
                owner_idx = fine_owner[lo]
                owner_group = old_rung.groups[owner_idx]
                owner_stage = old_stage_runtime[owner_idx]
                gpu = owner_stage.gpu
                reservation = None
                # Reuse: the new stage leads on a GPU that already holds its
                # leading fine range, and no other new stage claimed it.
                if owner_group[0] == lo and gpu.gid not in claimed:
                    try:
                        reservation = self.ctx.allocator.reserve_on(
                            model, gpu, mems[k], allow_same_model=True
                        )
                        claimed.add(gpu.gid)
                        reused += 1
                    except AllocationError:
                        reservation = None  # cannot co-reside: fall through
                if reservation is None:
                    exclude = [
                        r.gpu for r in reservations
                    ] + [s.gpu for s in replica.stages]
                    got = self.ctx.allocator.allocate_stages(
                        model, [mems[k]], exclude=exclude
                    )
                    reservation = got[0]
                    fresh += 1
                reservations.append(reservation)
                load_duration = max(
                    load_duration,
                    self._stage_load_time(
                        stage_plan, reservation, owner_stage, reused=gpu is reservation.gpu
                    ),
                )
                # Fine ranges that change GPUs carry their KV shards along.
                moved_fraction = self._moved_kv_fraction(
                    lo, hi, owner_group, reservation.gpu is gpu
                )
                kv_bytes_moving += (
                    replica.kv_bytes_in_flight()
                    * self.profile.kv_fraction(stage_plan.profile)
                    * moved_fraction
                )
        except AllocationError:
            for reservation in reservations:
                self.ctx.allocator.release(reservation)
            raise
        return reservations, load_duration, kv_bytes_moving, reused, fresh

    def _stage_load_time(
        self,
        stage_plan,
        reservation: StageReservation,
        owner_stage,
        *,
        reused: bool,
    ) -> float:
        """Best-source load time for one target stage's missing parameters."""
        cm = self.ctx.cost_model
        mover = self.ctx.data_mover
        resident_lo = max(stage_plan.start, owner_stage.plan.start)
        resident_hi = min(stage_plan.end, owner_stage.plan.end)
        resident = (
            self.profile.graph.param_bytes(resident_lo, resident_hi)
            if resident_lo < resident_hi and reused
            else 0.0
        )
        missing = max(stage_plan.param_bytes - resident, 0.0)
        if missing <= 0:
            return 0.0
        options = []
        # Peer GPUs of the same replica hold the missing ranges today.
        src_server = owner_stage.gpu.server
        dst_server = reservation.gpu.server
        peer = mover.plan(
            missing,
            same_server=src_server.sid == dst_server.sid,
            src_rdma=src_server.rdma,
            dst_rdma=dst_server.rdma,
        )
        options.append(peer.duration)
        if self.warm_cache is not None:
            warm = self.warm_cache.coverage(
                dst_server, self.profile, stage_plan.start, stage_plan.end
            )
            if warm >= missing:
                options.append(cm.warm_load_time(missing))
        options.append(cm.cold_load_time(missing))
        return min(options)

    @staticmethod
    def _moved_kv_fraction(
        lo: int, hi: int, owner_group: tuple[int, int], reused: bool
    ) -> float:
        """Fraction of the new stage's fine ranges that changed GPUs."""
        if not reused:
            return 1.0
        span = hi - lo
        stay = max(min(hi, owner_group[1]) - max(lo, owner_group[0]), 0)
        return (span - stay) / span if span else 0.0

    def _exercise_consistency_protocol(self, replica: PipelineReplica) -> None:
        """Run the Eq. 10 snapshot/delta protocol for a representative shard."""
        source = KVCacheState(request_id=0, bytes_per_token=1.0)
        source.append_tokens(int(self.profile.spec.avg_context_tokens))
        target = snapshot_transfer(source)
        source.append_tokens(3)  # decode continues during the async window
        delta_sync(source, target)
        if not target.is_consistent():
            raise RuntimeError("Eq. 10 consistency invariant violated")
        self.consistency_checks += 1

    # ------------------------------------------------------------------
    def _switch(self, replica: PipelineReplica, plan: TransitionPlan) -> None:
        sim = self.ctx.sim
        model = self.profile.spec.name
        self._inflight.discard(replica.name)
        self._transitions.pop(replica.name, None)
        if replica.state in (ReplicaState.DRAINING, ReplicaState.RELEASED) or any(
            r.gpu.cordoned for r in plan.reservations
        ):
            # Two races resolve the same way.  Refactor-vs-drain: the
            # replica started dying during the preparation window, so a
            # fresh chain would sit on a replica that stops serving.
            # Refactor-vs-reclamation: the platform reclaimed (cordoned) a
            # GPU holding a prepared stage, so swapping would serve from a
            # reclaimed device for its whole downtime.  Either way, give
            # the prepared reservations straight back instead of swapping.
            for reservation in plan.reservations:
                if not reservation.released:
                    self.ctx.allocator.release(reservation)
            return
        old_n = replica.plan.n_stages
        new_plan = self.ladder.plan(plan.target_stages)

        def retire(stage) -> None:
            reservation = stage.reservation
            if reservation.released:
                return
            if self.warm_cache is not None:
                self.warm_cache.put(
                    reservation.gpu.server,
                    model,
                    stage.plan.start,
                    stage.plan.end,
                    stage.plan.param_bytes,
                    sim.now,
                )
            self.ctx.allocator.release(reservation)

        replica.on_stage_retired = retire
        # The prepared chain only holds KV for ``plan.batch`` requests; a
        # degraded transition therefore also caps the batcher until the
        # next transition re-sizes it.
        replica.swap_stages(new_plan, plan.reservations, batch_cap=plan.batch)
        self.transitions_completed += 1
        self.metrics.on_event(
            ScalingEvent(
                time=sim.now,
                kind="refactor",
                detail=(
                    f"{replica.name} {old_n}->{plan.target_stages} "
                    f"(reuse {plan.reused_gpus}, fresh {plan.fresh_gpus}, "
                    f"kv {plan.kv_bytes / 2**20:.1f} MiB)"
                ),
                # Full client-visible transition latency: the decision,
                # the asynchronous preparation window, and the switch
                # pause — matching what ``refactor`` actually scheduled.
                init_time=self.decision_latency + plan.duration + self.switch_pause,
                warm=plan.fresh_gpus == 0,
            )
        )
