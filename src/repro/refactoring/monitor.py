"""Workload monitoring: the ν_t / λ_t signals of Algorithm 1."""

from __future__ import annotations

from collections import deque

from repro.workloads.cv import SlidingWindowCV


class WorkloadMonitor:
    """Tracks one model's arrival process online.

    Provides the inter-arrival CV ν_t over a sliding window, the arrival
    rate λ_t, and the intensity gradient ∂λ/∂t the paper uses for
    *proactive* adaptation (reacting to the rate trend before queues grow).
    """

    def __init__(self, window: float = 30.0, gradient_samples: int = 8):
        self._cv = SlidingWindowCV(window=window)
        self._rates: deque[tuple[float, float]] = deque(maxlen=gradient_samples)
        self.total_observed = 0

    def observe(self, timestamp: float) -> None:
        self._cv.observe(timestamp)
        self.total_observed += 1

    # ------------------------------------------------------------------
    def cv(self, now: float) -> float:
        return self._cv.value(now)

    def arrival_rate(self, now: float) -> float:
        return self._cv.arrival_rate(now)

    def sample_rate(self, now: float) -> None:
        """Record a rate sample (called once per control interval)."""
        self._rates.append((now, self.arrival_rate(now)))

    def intensity_gradient(self, now: float) -> float:
        """∂λ/∂t estimated over the recorded control-interval samples."""
        if len(self._rates) < 2:
            return 0.0
        (t0, r0), (t1, r1) = self._rates[0], self._rates[-1]
        if t1 <= t0:
            return 0.0
        return (r1 - r0) / (t1 - t0)

    def window_count(self, now: float) -> int:
        return self._cv.count(now)
