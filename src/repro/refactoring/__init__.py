"""Inflight pipeline refactoring (§6, Algorithm 1).

Monitoring (ν_t, q̂), the Eq. 4 granularity score and Eq. 5 instance
counts, the Eq. 6-9 placement objective with the multiplexing penalty, the
Eq. 10 KV consistency protocol, and the executor that performs live
split/merge transitions without dropping or pausing requests.
"""

from repro.refactoring.monitor import WorkloadMonitor
from repro.refactoring.granularity import (
    GranularityPolicy,
    RungEstimate,
    estimate_latency,
    estimate_throughput,
    instance_count,
)
from repro.refactoring.placement import make_eq6_scorer, multiplexing_penalty
from repro.refactoring.executor import RefactoringExecutor

__all__ = [
    "WorkloadMonitor",
    "GranularityPolicy",
    "RungEstimate",
    "estimate_throughput",
    "estimate_latency",
    "instance_count",
    "make_eq6_scorer",
    "multiplexing_penalty",
    "RefactoringExecutor",
]
