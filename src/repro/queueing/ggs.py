"""Extended G/G/S queueing model of pipeline latency (Eq. 1, §3.3).

    T_total = rho^S / (S! (1 - rho)) * (CV_a^2 + CV_s^2) / 2   [queue latency]
            + sum_i lambda_i / (mu_i - lambda_i)               [stage congestion]

The model explains the dynamic coupling between pipeline depth S and load
burstiness: when CV_a > ~3, finer segmentation (which raises each stage's
service rate) dominates the added register delays, and S ∝ sqrt(CV_a)
minimises latency — the paper's Insight 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def pipeline_delay(n_stages: int, stage_time: float, hop_time: float) -> float:
    """Deterministic pipeline latency: T = S*tau + (S-1)*delta."""
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    return n_stages * stage_time + (n_stages - 1) * hop_time


@dataclass(frozen=True)
class GGSModel:
    """Eq. 1 evaluated for an S-stage pipeline under G/G arrivals."""

    arrival_rate: float
    cv_arrival: float
    stage_service_rates: tuple[float, ...]
    cv_service: float = 0.5

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not self.stage_service_rates:
            raise ValueError("need at least one stage")
        if any(mu <= 0 for mu in self.stage_service_rates):
            raise ValueError("service rates must be positive")

    @property
    def n_stages(self) -> int:
        return len(self.stage_service_rates)

    @property
    def utilization(self) -> float:
        """rho against the bottleneck stage."""
        return self.arrival_rate / min(self.stage_service_rates)

    def queue_latency(self) -> float:
        """The Erlang-style burst term of Eq. 1 (inf when unstable)."""
        rho = self.utilization
        if rho >= 1.0:
            return math.inf
        s = self.n_stages
        burst = (self.cv_arrival**2 + self.cv_service**2) / 2.0
        return (rho**s) / (math.factorial(s) * (1.0 - rho)) * burst

    def congestion_delay(self) -> float:
        """Per-stage congestion: sum_i lambda / (mu_i - lambda)."""
        total = 0.0
        for mu in self.stage_service_rates:
            if mu <= self.arrival_rate:
                return math.inf
            total += self.arrival_rate / (mu - self.arrival_rate)
        return total

    def total_delay(self) -> float:
        return self.queue_latency() + self.congestion_delay()


def optimal_stage_count(
    cv_arrival: float, *, scale: float = 8.0, candidates=(2, 4, 8, 16, 32)
) -> int:
    """Insight 3: S ∝ sqrt(CV_a), snapped to the candidate set.

    With the default scale, CV=1 -> 8 stages and CV=4 -> 16 stages, matching
    the paper's observation that the 16-stage pipeline wins at CV=4.
    """
    if cv_arrival <= 0:
        return min(candidates)
    ideal = scale * math.sqrt(cv_arrival)
    return min(candidates, key=lambda s: abs(s - ideal))
