"""Analytic queueing models (Eq. 1 and the Insight-3 depth rule).

Besides the paper's extended G/G/S model, the package carries the classic
results the benches validate against: Kingman's G/G/1 approximation,
Erlang-B/C for M/M/s replica pools, and pipeline-bubble accounting.
"""

from repro.queueing.ggs import (
    GGSModel,
    optimal_stage_count,
    pipeline_delay,
)
from repro.queueing.kingman import GG1Station, capacity_for_wait, tandem_wait
from repro.queueing.erlang import (
    erlang_b,
    erlang_c,
    mms_mean_queue_length,
    mms_mean_wait,
    mms_wait_quantile,
    servers_for_wait,
)
from repro.queueing.bubbles import (
    StallModel,
    bubble_fraction,
    effective_throughput,
    microbatches_for_bubble,
)

__all__ = [
    "GGSModel",
    "optimal_stage_count",
    "pipeline_delay",
    "GG1Station",
    "capacity_for_wait",
    "tandem_wait",
    "erlang_b",
    "erlang_c",
    "mms_mean_wait",
    "mms_mean_queue_length",
    "mms_wait_quantile",
    "servers_for_wait",
    "bubble_fraction",
    "microbatches_for_bubble",
    "effective_throughput",
    "StallModel",
]
