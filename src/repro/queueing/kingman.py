"""Kingman's G/G/1 approximation (the VUT equation).

Eq. 1's queue-latency term is a multi-server generalisation of Kingman's
formula; the single-server form is useful on its own for per-stage
analysis because each pipeline stage is a G/G/1 station fed by the stage
upstream.  Kingman:

    W_q ≈ (rho / (1 - rho)) * ((CV_a^2 + CV_s^2) / 2) * tau_s

with service time ``tau_s``, utilization ``rho = lambda * tau_s`` and the
arrival/service coefficients of variation.  The formula is exact for
M/M/1 and asymptotically exact in heavy traffic, which is the regime where
the paper's stall blow-ups (Fig. 3) happen.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GG1Station:
    """One G/G/1 service station."""

    arrival_rate: float
    service_time: float
    cv_arrival: float = 1.0
    cv_service: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {self.arrival_rate}")
        if self.service_time <= 0:
            raise ValueError(f"service_time must be positive, got {self.service_time}")
        if self.cv_arrival < 0 or self.cv_service < 0:
            raise ValueError("coefficients of variation cannot be negative")

    @property
    def utilization(self) -> float:
        return self.arrival_rate * self.service_time

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    def mean_wait(self) -> float:
        """Kingman's approximation of the mean time in queue."""
        rho = self.utilization
        if rho >= 1.0:
            return float("inf")
        variability = (self.cv_arrival**2 + self.cv_service**2) / 2.0
        return (rho / (1.0 - rho)) * variability * self.service_time

    def mean_sojourn(self) -> float:
        """Mean time in system (queue + service)."""
        return self.mean_wait() + self.service_time

    def mean_queue_length(self) -> float:
        """Little's law applied to the waiting room."""
        wait = self.mean_wait()
        return float("inf") if wait == float("inf") else self.arrival_rate * wait


def capacity_for_wait(
    arrival_rate: float,
    target_wait: float,
    cv_arrival: float = 1.0,
    cv_service: float = 1.0,
) -> float:
    """Service rate needed so Kingman's mean wait meets ``target_wait``.

    Solving W_q = (rho/(1-rho)) * V * tau for the service rate ``mu`` with
    rho = lambda/mu and tau = 1/mu gives a quadratic in mu; we return the
    stable root.  Used by capacity-planning examples to size replica
    counts from a latency budget.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if target_wait <= 0:
        raise ValueError("target_wait must be positive")
    variability = (cv_arrival**2 + cv_service**2) / 2.0
    lam, w = arrival_rate, target_wait
    # W = V*lam / (mu * (mu - lam))  =>  w*mu^2 - w*lam*mu - V*lam = 0
    disc = (w * lam) ** 2 + 4.0 * w * variability * lam
    mu = (w * lam + disc**0.5) / (2.0 * w)
    return mu


def tandem_wait(stations: list[GG1Station]) -> float:
    """Total queueing delay through a tandem of G/G/1 stations.

    Uses the standard decomposition approximation: each station is
    analysed in isolation with its own CVs (departure-process corrections
    are second-order for the utilizations the benches exercise).
    """
    return sum(station.mean_wait() for station in stations)
