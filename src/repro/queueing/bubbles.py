"""Pipeline bubble accounting (§2.1's fill/drain overhead).

Pipeline parallelism pays an idle "bubble" while the pipe fills and
drains: with ``S`` stages and ``m`` micro-batches per scheduling round the
classic GPipe bound gives

    bubble_fraction = (S - 1) / (m + S - 1).

These helpers quantify that overhead, the micro-batch count needed to
amortise it, and the stall-cycle inflation under bursty arrivals that
Fig. 3(c) measures (stalls grow superlinearly with CV because a burst
empties and refills the pipe repeatedly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def bubble_fraction(n_stages: int, n_microbatches: int) -> float:
    """GPipe fill/drain bubble fraction for one scheduling round."""
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if n_microbatches < 1:
        raise ValueError(f"n_microbatches must be >= 1, got {n_microbatches}")
    return (n_stages - 1) / (n_microbatches + n_stages - 1)


def microbatches_for_bubble(n_stages: int, max_bubble: float) -> int:
    """Smallest micro-batch count keeping the bubble below ``max_bubble``."""
    if not 0.0 < max_bubble < 1.0:
        raise ValueError(f"max_bubble must be in (0, 1), got {max_bubble}")
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if n_stages == 1:
        return 1
    # (S-1)/(m+S-1) <= b  =>  m >= (S-1)(1-b)/b
    return max(int(math.ceil((n_stages - 1) * (1.0 - max_bubble) / max_bubble)), 1)


def effective_throughput(
    n_stages: int,
    n_microbatches: int,
    stage_time: float,
    hop_time: float = 0.0,
) -> float:
    """Steady-state micro-batches/second including fill/drain overhead.

    One round processes ``m`` micro-batches in ``(m + S - 1)`` stage slots
    of ``stage_time`` (plus the per-round handoff chain).
    """
    if stage_time <= 0:
        raise ValueError(f"stage_time must be positive, got {stage_time}")
    if hop_time < 0:
        raise ValueError("hop_time cannot be negative")
    slots = n_microbatches + n_stages - 1
    round_time = slots * stage_time + (n_stages - 1) * hop_time
    return n_microbatches / round_time


@dataclass(frozen=True)
class StallModel:
    """Stall-cycle inflation under bursty arrivals (Fig. 3c's mechanism).

    A stall happens when a burst gap empties the pipe (drain) and the next
    burst refills it (fill): each such cycle wastes ``(S-1) * stage_time``
    twice.  For a renewal process with inter-arrival CV ``cv``, the
    probability an inter-arrival gap exceeds the pipe's holding time grows
    with cv (heavy-tailed gaps), modelled here with a gamma tail — the
    same family the workload generator draws from.
    """

    n_stages: int
    stage_time: float
    arrival_rate: float

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ValueError("n_stages must be >= 1")
        if self.stage_time <= 0:
            raise ValueError("stage_time must be positive")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")

    @property
    def drain_threshold(self) -> float:
        """Gap long enough to empty the pipeline."""
        return self.n_stages * self.stage_time

    def gap_exceed_probability(self, cv: float) -> float:
        """P(inter-arrival gap > drain threshold) for a gamma renewal process.

        Gamma with shape k = 1/cv^2 and mean 1/lambda.  Note this tail
        *probability* is not monotone in cv (very bursty processes pack
        most gaps inside bursts); the monotone burstiness measure is the
        expected exceedance below.
        """
        if cv <= 0:
            raise ValueError("cv must be positive")
        shape = 1.0 / (cv * cv)
        rate = shape * self.arrival_rate  # so mean = 1/lambda
        return _gamma_sf(shape, rate * self.drain_threshold)

    def expected_gap_exceedance(self, cv: float) -> float:
        """E[(gap - drain_threshold)+]: mean pipe-empty time per gap.

        Uses the gamma identity ∫_t^∞ x f_{k,r}(x) dx = (k/r)·SF_{k+1,r}(t),
        so E[(X-t)+] = mean·SF_{k+1}(rt) - t·SF_k(rt).  Because gamma with
        fixed mean is convex-ordered in cv and (x-t)+ is convex, this is
        monotone increasing in cv — the property Fig. 3c's blow-up rests on.
        """
        if cv <= 0:
            raise ValueError("cv must be positive")
        shape = 1.0 / (cv * cv)
        rate = shape * self.arrival_rate
        t = self.drain_threshold
        mean = 1.0 / self.arrival_rate
        return mean * _gamma_sf(shape + 1.0, rate * t) - t * _gamma_sf(
            shape, rate * t
        )

    def stall_cycle_fraction(self, cv: float) -> float:
        """Expected fraction of time lost to drain+fill stall cycles.

        Two components per long gap: the pipe sits empty for the gap's
        exceedance over the drain threshold, and the next burst pays a
        fill of (S-1) stage slots.  Normalised by the mean inter-arrival
        time (gap frequency = lambda); saturates at 1.
        """
        idle = self.expected_gap_exceedance(cv)
        fill = self.gap_exceed_probability(cv) * (self.n_stages - 1) * self.stage_time
        return min((idle + fill) * self.arrival_rate, 1.0)


def _gamma_sf(shape: float, x: float) -> float:
    """Survival function of Gamma(shape, 1) at x (upper regularised gamma).

    Series expansion of the lower incomplete gamma for x < shape+1, and a
    Lentz continued fraction otherwise — the standard Numerical-Recipes
    split, accurate to ~1e-10 over the parameter range the stall model
    uses.
    """
    if x < 0 or shape <= 0:
        raise ValueError("invalid gamma parameters")
    if x == 0:
        return 1.0
    if x < shape + 1.0:
        # Lower series: P(a,x) = gamma(a,x)/Gamma(a)
        term = 1.0 / shape
        total = term
        a = shape
        for _ in range(500):
            a += 1.0
            term *= x / a
            total += term
            if abs(term) < abs(total) * 1e-12:
                break
        lower = total * math.exp(-x + shape * math.log(x) - math.lgamma(shape))
        return max(1.0 - lower, 0.0)
    # Upper continued fraction (modified Lentz).
    tiny = 1e-300
    b = x + 1.0 - shape
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - shape)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h * math.exp(-x + shape * math.log(x) - math.lgamma(shape))
