"""Erlang-B/C formulas for M/M/s replica pools.

A granularity level with M(g_k) data-parallel replicas (Eq. 5) behaves —
to first order — like an M/M/s pool, so Erlang-C gives the probability an
arriving request must queue, the mean wait, and the replica count needed
for a latency target.  Erlang-B covers the loss-system variant (admission
control that rejects rather than queues, the goodput-under-SLO view).

All formulas are computed with numerically stable recurrences, not
factorials, so they remain exact at hundreds of servers.
"""

from __future__ import annotations

import math


def _validate(arrival_rate: float, service_rate: float, servers: int) -> float:
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    return arrival_rate / service_rate  # offered load in Erlangs


def erlang_b(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Blocking probability of an M/M/s/s loss system.

    Stable recurrence: B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1)).
    """
    offered = _validate(arrival_rate, service_rate, servers)
    b = 1.0
    for k in range(1, servers + 1):
        b = offered * b / (k + offered * b)
    return b


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Probability an arrival waits in an M/M/s queue (P(W > 0)).

    Derived from Erlang-B: C = s*B / (s - a*(1-B)); returns 1.0 for
    overloaded systems (rho >= 1), where every arrival eventually waits.
    """
    offered = _validate(arrival_rate, service_rate, servers)
    if offered >= servers:
        return 1.0
    b = erlang_b(arrival_rate, service_rate, servers)
    return servers * b / (servers - offered * (1.0 - b))


def mms_mean_wait(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean queueing delay of an M/M/s system (infinite if unstable)."""
    offered = _validate(arrival_rate, service_rate, servers)
    if offered >= servers:
        return float("inf")
    c = erlang_c(arrival_rate, service_rate, servers)
    return c / (servers * service_rate - arrival_rate)


def mms_mean_queue_length(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean number waiting (not in service), by Little's law."""
    wait = mms_mean_wait(arrival_rate, service_rate, servers)
    return float("inf") if math.isinf(wait) else arrival_rate * wait


def mms_wait_quantile(
    arrival_rate: float, service_rate: float, servers: int, quantile: float
) -> float:
    """The ``quantile`` of waiting time W (conditional tail is exponential).

    P(W > t) = C * exp(-(s*mu - lambda) t), so the q-quantile is
    max(0, ln(C/(1-q)) / (s*mu - lambda)).  Useful for P99-style SLO
    sizing (Fig. 10's percentile view).
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    offered = _validate(arrival_rate, service_rate, servers)
    if offered >= servers:
        return float("inf")
    c = erlang_c(arrival_rate, service_rate, servers)
    slack = servers * service_rate - arrival_rate
    if c <= 1.0 - quantile:
        return 0.0
    return math.log(c / (1.0 - quantile)) / slack


def servers_for_wait(
    arrival_rate: float,
    service_rate: float,
    target_wait: float,
    max_servers: int = 4096,
) -> int:
    """Smallest replica count whose M/M/s mean wait meets the target.

    This is the Eq. 5 sizing question answered analytically; the adaptive
    scaler solves the same problem online from measured throughput.
    """
    if target_wait <= 0:
        raise ValueError("target_wait must be positive")
    base = max(int(math.ceil(arrival_rate / service_rate)), 1)
    for s in range(base, max_servers + 1):
        if mms_mean_wait(arrival_rate, service_rate, s) <= target_wait:
            return s
    raise ValueError(
        f"no server count up to {max_servers} meets wait target {target_wait}"
    )
