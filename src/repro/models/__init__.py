"""Operator-level LLM models and the calibrated analytic cost model.

The paper partitions models at operator granularity (§5); this package
builds operator-level computation graphs for the four evaluation models
(OPT-66B, LLAMA2-7B, BERT-21B, WHISPER-9B) and provides the cost model that
replaces real A100 execution.  All cost constants are calibrated against
the paper's own Table 2 profile of OPT-66B — see ``costs.py``.
"""

from repro.models.operators import Operator, OpKind
from repro.models.graph import ComputationGraph
from repro.models.transformer import build_transformer
from repro.models.zoo import (
    BERT_21B,
    LLAMA2_7B,
    MODEL_ZOO,
    OPT_66B,
    WHISPER_9B,
    ModelSpec,
    get_model,
)
from repro.models.costs import CostModel, CostModelConfig, floor_pow2
from repro.models.profiler import ModelProfile, Profiler, StageProfile
from repro.models.calibration import (
    ProfileRow,
    FitReport,
    fit_cost_model,
    TABLE2_ROWS,
)

__all__ = [
    "Operator",
    "OpKind",
    "ComputationGraph",
    "build_transformer",
    "ModelSpec",
    "MODEL_ZOO",
    "OPT_66B",
    "LLAMA2_7B",
    "BERT_21B",
    "WHISPER_9B",
    "get_model",
    "CostModel",
    "CostModelConfig",
    "floor_pow2",
    "Profiler",
    "ModelProfile",
    "StageProfile",
    "ProfileRow",
    "FitReport",
    "fit_cost_model",
    "TABLE2_ROWS",
]
