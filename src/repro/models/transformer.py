"""Build operator-level computation graphs for transformer models.

Per decoder layer the graph contains the canonical seven operators
(ln1, qkv, attention, attn_out, ln2, fc1, fc2); encoder-decoder models
(Whisper) prepend a conv frontend + encoder layers with cross-attention in
the decoder.  Operator parameter sizes are derived from the architecture and
then scaled so the total matches the declared checkpoint size exactly.
"""

from __future__ import annotations

from repro.models.graph import ComputationGraph
from repro.models.operators import Operator, OpKind
from repro.models.zoo import ModelSpec

_FP16 = 2  # bytes per parameter


def build_transformer(spec: ModelSpec) -> ComputationGraph:
    """Construct the operator graph for ``spec``."""
    raw: list[dict] = []
    h = spec.hidden

    def add(name, kind, layer, block, params, act_factor=1.0, kv=0.0):
        raw.append(
            dict(
                name=name,
                kind=kind,
                layer=layer,
                block=block,
                params=float(params) * _FP16,
                act=act_factor * h * _FP16,
                kv=kv,
            )
        )

    add("embed", OpKind.EMBED, -1, "embed", spec.vocab * h)
    if spec.encoder_layers:
        add("conv_frontend", OpKind.CONV_FRONTEND, -1, "encoder.stem", 4 * h * h)
        for layer in range(spec.encoder_layers):
            _add_layer(add, layer, h, prefix="enc", cross_attention=False, spec=spec)
    for layer in range(spec.n_layers):
        _add_layer(
            add,
            layer + spec.encoder_layers,
            h,
            prefix="dec" if spec.encoder_layers else "layer",
            cross_attention=bool(spec.encoder_layers),
            spec=spec,
        )
    add("final_norm", OpKind.FINAL_NORM, spec.total_layers, "head", 2 * h)
    add("lm_head", OpKind.LM_HEAD, spec.total_layers, "head", spec.vocab * h)

    # Scale parameter bytes so the graph total equals the declared checkpoint.
    raw_total = sum(r["params"] for r in raw)
    scale = spec.checkpoint_bytes / raw_total
    operators = []
    for i, r in enumerate(raw):
        params = r["params"] * scale
        operators.append(
            Operator(
                index=i,
                name=r["name"],
                kind=r["kind"],
                layer=r["layer"],
                block=r["block"],
                param_bytes=params,
                flops_per_token=params,  # 2 FLOPs/param, fp16 = 2 B/param
                activation_bytes_per_token=r["act"],
                kv_bytes_per_token=r["kv"],
            )
        )
    graph = ComputationGraph(spec.name, operators)
    graph.validate()
    return graph


def _add_layer(add, layer: int, h: int, *, prefix: str, cross_attention: bool, spec: ModelSpec):
    block_attn = f"{prefix}{layer}.attn"
    block_mlp = f"{prefix}{layer}.mlp"
    # KV cache lives where attention executes; per-layer KV = 4*h bytes/token.
    kv_per_layer = 4.0 * h if prefix != "enc" else 0.0
    add(f"{prefix}{layer}.ln1", OpKind.LAYERNORM, layer, block_attn, 2 * h)
    add(f"{prefix}{layer}.qkv", OpKind.QKV_PROJ, layer, block_attn, 3 * h * h)
    add(
        f"{prefix}{layer}.attn",
        OpKind.ATTENTION,
        layer,
        block_attn,
        0,
        kv=kv_per_layer,
    )
    add(f"{prefix}{layer}.attn_out", OpKind.ATTN_OUT, layer, block_attn, h * h)
    if cross_attention:
        add(f"{prefix}{layer}.xattn", OpKind.CROSS_ATTENTION, layer, block_attn, 2 * h * h)
    add(f"{prefix}{layer}.ln2", OpKind.LAYERNORM, layer, block_mlp, 2 * h)
    add(f"{prefix}{layer}.fc1", OpKind.MLP_FC1, layer, block_mlp, 4 * h * h)
    add(f"{prefix}{layer}.fc2", OpKind.MLP_FC2, layer, block_mlp, 4 * h * h)
