"""Operator-level profiling (the Profiling module of Fig. 5).

On the real system this measures each operator on hardware; here it
evaluates the calibrated cost model over the computation graph, producing
per-operator ``(t_c, s_p, s_a)`` and the stage-level aggregates the
partitioner (Eq. 2) and granularity policy (Eq. 4) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.costs import CostModel
from repro.models.graph import ComputationGraph
from repro.models.zoo import ModelSpec


@dataclass(frozen=True)
class StageProfile:
    """Aggregated profile of a contiguous operator range [start, end)."""

    start: int
    end: int
    param_bytes: float
    flops_per_token: float
    kv_bytes_per_token: float
    n_ops: int
    boundary_act_bytes_per_token: float
    boundary_quality: float

    @property
    def kv_fraction_of(self) -> float:
        """Placeholder for clarity; use ModelProfile.kv_fraction(stage)."""
        return self.kv_bytes_per_token


@dataclass
class ModelProfile:
    """Profile of a full model against one cost model.

    ``stage()`` and the per-stage capacity queries are memoized: the
    partitioner's Eq. 2 DP probes the same operator ranges repeatedly, and
    batch formation re-reads the same stage aggregates on every batch.
    Profiles are immutable once built (graph and cost model never change),
    so the caches are never invalidated.
    """

    spec: ModelSpec
    graph: ComputationGraph
    cost_model: CostModel
    _stage_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )
    _max_batch_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def stage(self, start: int, end: int) -> StageProfile:
        """Profile the operator range [start, end).  Memoized."""
        cached = self._stage_cache.get((start, end))
        if cached is not None:
            return cached
        if not (0 <= start < end <= len(self.graph)):
            raise ValueError(f"invalid stage range [{start}, {end})")
        last_op = self.graph.operators[end - 1]
        profile = StageProfile(
            start=start,
            end=end,
            param_bytes=self.graph.param_bytes(start, end),
            flops_per_token=self.graph.flops_per_token(start, end),
            kv_bytes_per_token=self.graph.kv_bytes_per_token(start, end),
            n_ops=end - start,
            boundary_act_bytes_per_token=last_op.activation_bytes_per_token,
            boundary_quality=(
                self.graph.boundary_quality(end - 1) if end < len(self.graph) else 1.0
            ),
        )
        self._stage_cache[(start, end)] = profile
        return profile

    def kv_fraction(self, stage: StageProfile) -> float:
        """Share of the model's KV cache resident in this stage."""
        total = self.graph.kv_bytes_per_token()
        if total <= 0:
            return 0.0
        return stage.kv_bytes_per_token / total

    def stage_compute_time(self, stage: StageProfile, batch: int) -> float:
        return self.cost_model.decode_iter_time(stage.param_bytes, batch)

    def stage_prefill_time(self, stage: StageProfile, batch: int, prompt: int) -> float:
        return self.cost_model.prefill_time(stage.flops_per_token, batch * prompt)

    def stage_max_batch(self, stage: StageProfile) -> int:
        key = (stage.start, stage.end)
        cached = self._max_batch_cache.get(key)
        if cached is None:
            kv_per_request = self.spec.kv_bytes_per_request * self.kv_fraction(stage)
            cached = self.cost_model.max_batch(stage.param_bytes, kv_per_request)
            self._max_batch_cache[key] = cached
        return cached


class Profiler:
    """Builds :class:`ModelProfile` objects (cache by model name)."""

    def __init__(self, cost_model: CostModel | None = None):
        self.cost_model = cost_model or CostModel()
        self._cache: dict[str, ModelProfile] = {}

    def profile(self, spec: ModelSpec, graph: ComputationGraph) -> ModelProfile:
        cached = self._cache.get(spec.name)
        if cached is not None and cached.graph is graph:
            return cached
        profile = ModelProfile(spec=spec, graph=graph, cost_model=self.cost_model)
        self._cache[spec.name] = profile
        return profile
