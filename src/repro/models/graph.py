"""Computation graph G=(V,E) over operators (§5).

LLM inference graphs are chain-structured at stage granularity (residual
connections stay inside blocks), so the graph stores a topologically ordered
operator list plus explicit edges, and exposes the prefix aggregates the
Eq. 2 dynamic program needs.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.models.operators import Operator


class ComputationGraph:
    """Topologically ordered operator graph for one model."""

    def __init__(self, model_name: str, operators: list[Operator]):
        if not operators:
            raise ValueError("computation graph needs at least one operator")
        for i, op in enumerate(operators):
            if op.index != i:
                raise ValueError(
                    f"operator {op.name!r} has index {op.index}, expected {i}"
                )
        self.model_name = model_name
        self.operators = list(operators)
        # Prefix sums for O(1) range aggregation in the partitioner.
        self._param_prefix = list(itertools.accumulate(
            [0.0] + [op.param_bytes for op in operators]
        ))
        self._flops_prefix = list(itertools.accumulate(
            [0.0] + [op.flops_per_token for op in operators]
        ))
        self._kv_prefix = list(itertools.accumulate(
            [0.0] + [op.kv_bytes_per_token for op in operators]
        ))

    def __len__(self) -> int:
        return len(self.operators)

    # ------------------------------------------------------------------
    # Range aggregates: [start, end) operator slices
    # ------------------------------------------------------------------
    def param_bytes(self, start: int = 0, end: int | None = None) -> float:
        end = len(self.operators) if end is None else end
        return self._param_prefix[end] - self._param_prefix[start]

    def flops_per_token(self, start: int = 0, end: int | None = None) -> float:
        end = len(self.operators) if end is None else end
        return self._flops_prefix[end] - self._flops_prefix[start]

    def kv_bytes_per_token(self, start: int = 0, end: int | None = None) -> float:
        end = len(self.operators) if end is None else end
        return self._kv_prefix[end] - self._kv_prefix[start]

    @property
    def total_param_bytes(self) -> float:
        return self.param_bytes()

    # ------------------------------------------------------------------
    # Partition boundaries
    # ------------------------------------------------------------------
    def cut_points(self) -> list[int]:
        """Indices ``i`` such that a stage may end after operator ``i``.

        A cut at ``i`` means stages split as ``[.. i] | [i+1 ..]``.
        """
        points = []
        ops = self.operators
        for i, op in enumerate(ops[:-1]):
            if op.cuttable_after:
                points.append(i)
        return points

    def boundary_quality(self, i: int) -> float:
        """Quality of a cut after operator ``i`` (see Operator docstring)."""
        ops = self.operators
        nxt = ops[i + 1] if i + 1 < len(ops) else None
        return ops[i].boundary_quality(nxt)

    def layer_boundaries(self) -> list[int]:
        """Cut indices that fall exactly on transformer layer boundaries."""
        return [i for i in self.cut_points() if self.boundary_quality(i) >= 1.0]

    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Explicit DiGraph view (chain + intra-block edges) for analysis."""
        g = nx.DiGraph()
        for op in self.operators:
            g.add_node(op.index, name=op.name, kind=op.kind.value, block=op.block)
        for a, b in zip(self.operators, self.operators[1:]):
            g.add_edge(a.index, b.index)
        return g

    def validate(self) -> None:
        """Sanity-check the graph structure (acyclic chain, positive sizes)."""
        g = self.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            raise ValueError(f"graph for {self.model_name} has a cycle")
        if self.total_param_bytes <= 0:
            raise ValueError(f"graph for {self.model_name} has no parameters")
