"""Analytic GPU cost model, calibrated against the paper's Table 2.

Table 2 profiles OPT-66B (120 GB) on A100s at four pipeline granularities.
We derive every constant from it:

* **Compute** (per-stage iteration time) fits an affine model
  ``t = 1.06 ms + 2.296 ms/GiB x stage_bytes`` with <3% error at all four
  rows — i.e. a ~0.435 TB/s effective weight-streaming rate plus a fixed
  per-stage dispatch cost.  Batch adds a compute-bound term
  ``batch x flops_per_token / peak_flops``.
* **Comm.** fits ``(K-1) x (1.9 ms + act_bytes/12.5 GB/s)`` exactly at the
  batch-128 operating point (2.1 ms per hop).
* **Load** times are log-log interpolated through the four measured points
  (47.14 s @ 30 GiB ... 5.43 s @ 3.75 GiB); other models reuse the curve by
  stage size.
* **Max batch** emerges from KV-capacity physics: per-GPU free memory
  divided by the per-stage KV footprint, floored to a power of two —
  reproducing 128/256/512/1024 exactly (see DESIGN.md §4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.transfer.links import GB


def floor_pow2(x: float) -> int:
    """Largest power of two <= x (0 if x < 1)."""
    if x < 1:
        return 0
    return 1 << (int(x).bit_length() - 1)


@dataclass(frozen=True)
class CostModelConfig:
    """Calibration constants (see module docstring for provenance)."""

    # Per-stage iteration: fixed dispatch + weight-streaming term.
    compute_fixed: float = 1.06e-3
    compute_per_byte: float = 2.296e-3 / GB  # ≈ 0.435 TB/s effective
    # Batch-dependent compute term (fp16: flops_per_token == param_bytes).
    peak_flops: float = 150e12
    # Prefill dispatch overhead per stage pass.
    prefill_overhead: float = 0.5e-3
    # Inter-stage hop: fixed serverless network-stack overhead + wire time.
    hop_overhead: float = 1.9e-3
    network_bandwidth: float = 12.5 * GB  # 100 Gbps
    # Cold parameter load curve (bytes, seconds), from Table 2's Load column.
    load_points: tuple = (
        (3.75 * GB, 5.43),
        (7.5 * GB, 9.19),
        (15.0 * GB, 13.05),
        (30.0 * GB, 47.14),
    )
    # Warm start: host-memory -> GPU over PCIe.
    warm_load_overhead: float = 0.05
    pcie_bandwidth: float = 24.0 * GB
    # Memory model.
    gpu_memory: float = 80.0 * GB
    runtime_reserved: float = 0.0 * GB
    max_batch_cap: int = 1024

    def __post_init__(self) -> None:
        if len(self.load_points) < 2:
            raise ValueError("load curve needs at least two calibration points")
        sizes = [p[0] for p in self.load_points]
        if sizes != sorted(sizes):
            raise ValueError("load curve points must be sorted by size")


class CostModel:
    """All hardware timing queries used by the simulator."""

    def __init__(self, config: CostModelConfig | None = None):
        self.config = config or CostModelConfig()
        pts = self.config.load_points
        self._log_sizes = [math.log(s) for s, _ in pts]
        self._log_times = [math.log(t) for _, t in pts]

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def decode_iter_time(self, stage_param_bytes: float, batch: int) -> float:
        """One decode iteration of a stage: weight stream + batched compute."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        cfg = self.config
        stream = cfg.compute_fixed + stage_param_bytes * cfg.compute_per_byte
        compute = batch * stage_param_bytes / cfg.peak_flops
        return stream + compute

    def prefill_time(self, stage_flops_per_token: float, total_tokens: float) -> float:
        """Prefill pass of a stage over ``total_tokens`` (= batch x prompt)."""
        cfg = self.config
        return cfg.prefill_overhead + total_tokens * stage_flops_per_token / cfg.peak_flops

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def hop_time(self, activation_bytes: float) -> float:
        """One inter-stage activation transfer."""
        cfg = self.config
        return cfg.hop_overhead + activation_bytes / cfg.network_bandwidth

    # ------------------------------------------------------------------
    # Parameter loading
    # ------------------------------------------------------------------
    def cold_load_time(self, stage_param_bytes: float) -> float:
        """Load a stage from shared checkpoint storage (cold start).

        Log-log interpolation through the Table 2 calibration points;
        extrapolates with the edge slopes.
        """
        if stage_param_bytes <= 0:
            return 0.0
        x = math.log(stage_param_bytes)
        xs, ys = self._log_sizes, self._log_times
        if x <= xs[0]:
            i = 0
        elif x >= xs[-1]:
            i = len(xs) - 2
        else:
            i = max(j for j in range(len(xs) - 1) if xs[j] <= x)
        slope = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i])
        return math.exp(ys[i] + slope * (x - xs[i]))

    def warm_load_time(self, stage_param_bytes: float) -> float:
        """Load a stage from the host-memory warm cache over PCIe."""
        cfg = self.config
        return cfg.warm_load_overhead + stage_param_bytes / cfg.pcie_bandwidth

    # ------------------------------------------------------------------
    # Memory / batching
    # ------------------------------------------------------------------
    def max_batch(
        self,
        stage_param_bytes: float,
        kv_bytes_per_request_stage: float,
    ) -> int:
        """KV-capacity-limited batch size for a stage, floored to a power of 2."""
        cfg = self.config
        free = cfg.gpu_memory - cfg.runtime_reserved - stage_param_bytes
        if free <= 0:
            return 0
        if kv_bytes_per_request_stage <= 0:
            return cfg.max_batch_cap
        raw = free / kv_bytes_per_request_stage
        return max(min(floor_pow2(raw), cfg.max_batch_cap), 0)
