"""Fit cost-model constants from Table-2-style profile measurements.

The shipped :class:`~repro.models.costs.CostModelConfig` is calibrated
against the paper's Table 2.  A user deploying this library against *their
own* hardware profile needs the inverse operation: given measured
(stage-size, compute-time) and (stage-count, per-hop-comm) rows from a
profiling run, recover the calibration constants.  This module provides
those fits plus goodness-of-fit reporting, so re-calibration is a
one-function call:

    >>> rows = [ProfileRow(stages=4, param_bytes=30 * GB,
    ...                    compute_time=69.94e-3, comm_time=6.3e-3,
    ...                    load_time=47.14), ...]
    >>> config = fit_cost_model(rows)
    >>> CostModel(config)

Fits are ordinary least squares on the affine compute model and on the
per-hop communication model — the same functional forms the forward model
uses, so a fit of the paper's own rows reproduces the shipped constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.models.costs import CostModelConfig


@dataclass(frozen=True)
class ProfileRow:
    """One granularity row of a Table-2-style profiling run.

    ``compute_time`` is the per-stage iteration time, ``comm_time`` the
    total inter-stage communication per iteration (the paper's "Comm."
    column, i.e. ``(stages - 1)`` hops), and ``load_time`` the cold
    parameter-load time of one stage.  Times are seconds, sizes bytes.
    """

    stages: int
    param_bytes: float
    compute_time: float
    comm_time: float
    load_time: float

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ValueError(f"stages must be >= 1, got {self.stages}")
        if self.param_bytes <= 0:
            raise ValueError("param_bytes must be positive")
        for name in ("compute_time", "comm_time", "load_time"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


@dataclass(frozen=True)
class FitReport:
    """A fitted configuration plus per-component relative errors."""

    config: CostModelConfig
    compute_max_rel_error: float
    comm_max_rel_error: float

    def acceptable(self, tolerance: float = 0.05) -> bool:
        """Did the affine forms explain the measurements to ``tolerance``?"""
        return (
            self.compute_max_rel_error <= tolerance
            and self.comm_max_rel_error <= tolerance
        )


def fit_compute(rows: list[ProfileRow]) -> tuple[float, float]:
    """Least-squares fit of ``t = fixed + per_byte * param_bytes``.

    Returns (fixed seconds, per-byte seconds).  Needs at least two rows
    with distinct stage sizes.
    """
    if len(rows) < 2:
        raise ValueError("compute fit needs at least two profile rows")
    sizes = np.array([r.param_bytes for r in rows])
    times = np.array([r.compute_time for r in rows])
    if np.allclose(sizes, sizes[0]):
        raise ValueError("compute fit needs distinct stage sizes")
    design = np.stack([np.ones_like(sizes), sizes], axis=1)
    (fixed, per_byte), *_ = np.linalg.lstsq(design, times, rcond=None)
    return float(fixed), float(per_byte)


def fit_comm(rows: list[ProfileRow]) -> float:
    """Fit the per-hop cost from total comm times: ``comm = (K-1) * hop``.

    Least squares through the origin in hop count; single-stage rows
    (zero hops, zero comm) contribute nothing but are accepted.
    """
    hops = np.array([r.stages - 1 for r in rows], dtype=float)
    comm = np.array([r.comm_time for r in rows])
    denom = float(np.dot(hops, hops))
    if denom == 0:
        raise ValueError("comm fit needs at least one multi-stage row")
    return float(np.dot(hops, comm) / denom)


def fit_cost_model(
    rows: list[ProfileRow],
    base: CostModelConfig | None = None,
    *,
    act_bytes_at_profile: float = 0.0,
) -> FitReport:
    """Recover calibration constants from a profiling run.

    ``act_bytes_at_profile`` is the boundary activation size at the
    profiling operating point; the wire-time share of each measured hop
    (``act_bytes / network_bandwidth``) is subtracted before fitting the
    fixed hop overhead, mirroring how the forward model composes the two.
    The load curve is taken directly from the measured (size, time) pairs.
    """
    if not rows:
        raise ValueError("need at least one profile row")
    base = base or CostModelConfig()
    fixed, per_byte = fit_compute(rows)
    wire = act_bytes_at_profile / base.network_bandwidth
    hop_total = fit_comm(rows)
    hop_overhead = max(hop_total - wire, 0.0)
    load_points = tuple(
        sorted({(r.param_bytes, r.load_time) for r in rows}, key=lambda p: p[0])
    )
    config = replace(
        base,
        compute_fixed=fixed,
        compute_per_byte=per_byte,
        hop_overhead=hop_overhead,
        load_points=load_points,
    )
    # Goodness of fit against the inputs.
    compute_errors = [
        abs((fixed + per_byte * r.param_bytes) / r.compute_time - 1.0)
        for r in rows
        if r.compute_time > 0
    ]
    comm_errors = [
        abs(((r.stages - 1) * hop_total) / r.comm_time - 1.0)
        for r in rows
        if r.comm_time > 0 and r.stages > 1
    ]
    return FitReport(
        config=config,
        compute_max_rel_error=max(compute_errors, default=0.0),
        comm_max_rel_error=max(comm_errors, default=0.0),
    )


#: The paper's Table 2, expressed as profile rows (OPT-66B, 120 GB total).
TABLE2_ROWS: tuple[ProfileRow, ...] = tuple(
    ProfileRow(
        stages=stages,
        param_bytes=120 / stages * 2**30 * 1.0,
        compute_time=compute,
        comm_time=comm,
        load_time=load,
    )
    for stages, load, compute, comm in (
        (4, 47.14, 69.94e-3, 6.3e-3),
        (8, 13.05, 36.63e-3, 14.7e-3),
        (16, 9.19, 18.67e-3, 31.5e-3),
        (32, 5.43, 9.67e-3, 65.1e-3),
    )
)
