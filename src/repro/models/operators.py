"""Operators: the vertices of the computation graph (§5).

Each operator carries the three metrics the paper's Profiling module
measures: computation time ``t_c`` (derived from the cost model), parameter
size ``s_p`` and activation size ``s_a``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    """Transformer operator taxonomy used for partition-boundary rules."""

    EMBED = "embed"
    LAYERNORM = "layernorm"
    QKV_PROJ = "qkv_proj"
    ATTENTION = "attention"
    ATTN_OUT = "attn_out"
    MLP_FC1 = "mlp_fc1"
    MLP_FC2 = "mlp_fc2"
    FINAL_NORM = "final_norm"
    LM_HEAD = "lm_head"
    CONV_FRONTEND = "conv_frontend"  # Whisper audio encoder stem
    CROSS_ATTENTION = "cross_attention"


# Operators after which the computation graph may NOT be cut: splitting
# between QKV projection and the attention kernel (or mid-attention) would
# break the attention block's intra-op data layout.  These encode the
# "preserved computational graph constraints" of §5.
_UNCUTTABLE_AFTER = {
    OpKind.QKV_PROJ,
    OpKind.LAYERNORM,
    OpKind.FINAL_NORM,
    OpKind.CONV_FRONTEND,
}


@dataclass(frozen=True)
class Operator:
    """A single operator in the model's computation graph.

    ``layer`` is the transformer layer index (-1 for pre/post ops);
    ``block`` names the logical group ("layer12.attn", "layer12.mlp") whose
    boundaries the Eq. 2 regulariser prefers to cut at.
    """

    index: int
    name: str
    kind: OpKind
    layer: int
    block: str
    param_bytes: float
    flops_per_token: float
    activation_bytes_per_token: float
    kv_bytes_per_token: float = 0.0

    def __post_init__(self) -> None:
        if self.param_bytes < 0 or self.flops_per_token < 0:
            raise ValueError(f"negative cost fields on operator {self.name!r}")

    @property
    def cuttable_after(self) -> bool:
        """Whether a pipeline partition boundary may follow this operator."""
        return self.kind not in _UNCUTTABLE_AFTER

    def boundary_quality(self, next_op: "Operator | None") -> float:
        """Refactoring-friendliness of a cut after this operator (Eq. 2 R-term).

        1.0 at layer boundaries (best for future merging), 0.5 at intra-layer
        block boundaries (attn/mlp), 0.0 where cutting is forbidden.
        """
        if not self.cuttable_after:
            return 0.0
        if next_op is None:
            return 1.0
        if next_op.layer != self.layer:
            return 1.0
        if next_op.block != self.block:
            return 0.5
        return 0.1  # legal but awkward (inside a block)
