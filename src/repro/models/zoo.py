"""Model specifications for the paper's four evaluation models (§9).

Parameter counts follow the paper's naming (e.g. "OPT-66B (120GB)" in
Table 2): the declared checkpoint size is authoritative and operator sizes
are scaled proportionally so the graph's total matches it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transfer.links import GB


@dataclass(frozen=True)
class ModelSpec:
    """Architecture hyper-parameters of one serving model."""

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    vocab: int
    checkpoint_bytes: float  # declared fp16 checkpoint size (authoritative)
    encoder_layers: int = 0  # >0 for encoder-decoder models (Whisper)
    # Average effective context used for KV sizing; calibrated so OPT-66B's
    # max-batch column in Table 2 (128/256/512/1024) is reproduced exactly.
    avg_context_tokens: int = 660

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.hidden <= 0:
            raise ValueError(f"invalid architecture for {self.name}")
        if self.checkpoint_bytes <= 0:
            raise ValueError(f"invalid checkpoint size for {self.name}")

    @property
    def total_layers(self) -> int:
        return self.n_layers + self.encoder_layers

    @property
    def kv_bytes_per_token(self) -> float:
        """fp16 K+V bytes per token across all decoder layers.

        2 (K,V) x 2 bytes x hidden x n_layers.
        """
        return 4.0 * self.hidden * self.n_layers

    @property
    def kv_bytes_per_request(self) -> float:
        """KV footprint of one request at the average effective context."""
        return self.kv_bytes_per_token * self.avg_context_tokens


OPT_66B = ModelSpec(
    name="OPT-66B",
    n_layers=64,
    hidden=9216,
    n_heads=72,
    vocab=50272,
    checkpoint_bytes=120.0 * GB,  # Table 2: "OPT-66B (120GB)"
)

LLAMA2_7B = ModelSpec(
    name="LLAMA2-7B",
    n_layers=32,
    hidden=4096,
    n_heads=32,
    vocab=32000,
    checkpoint_bytes=13.5 * GB,
)

BERT_21B = ModelSpec(
    name="BERT-21B",
    n_layers=48,
    hidden=6144,
    n_heads=48,
    vocab=30522,
    checkpoint_bytes=42.0 * GB,
)

WHISPER_9B = ModelSpec(
    name="WHISPER-9B",
    n_layers=32,
    hidden=4096,
    n_heads=32,
    vocab=51865,
    checkpoint_bytes=18.0 * GB,
    encoder_layers=12,
)

MODEL_ZOO: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (OPT_66B, LLAMA2_7B, BERT_21B, WHISPER_9B)
}


def get_model(name: str) -> ModelSpec:
    """Look up a model by its paper name; raises ``KeyError`` with options."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None
