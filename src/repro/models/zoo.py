"""Model specifications for the paper's four evaluation models (§9).

Parameter counts follow the paper's naming (e.g. "OPT-66B (120GB)" in
Table 2): the declared checkpoint size is authoritative and operator sizes
are scaled proportionally so the graph's total matches it exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.transfer.links import GB


@dataclass(frozen=True)
class ModelSpec:
    """Architecture hyper-parameters of one serving model."""

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    vocab: int
    checkpoint_bytes: float  # declared fp16 checkpoint size (authoritative)
    encoder_layers: int = 0  # >0 for encoder-decoder models (Whisper)
    # Average effective context used for KV sizing; calibrated so OPT-66B's
    # max-batch column in Table 2 (128/256/512/1024) is reproduced exactly.
    avg_context_tokens: int = 660

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.hidden <= 0:
            raise ValueError(f"invalid architecture for {self.name}")
        if self.checkpoint_bytes <= 0:
            raise ValueError(f"invalid checkpoint size for {self.name}")

    @property
    def total_layers(self) -> int:
        return self.n_layers + self.encoder_layers

    @property
    def kv_bytes_per_token(self) -> float:
        """fp16 K+V bytes per token across all decoder layers.

        2 (K,V) x 2 bytes x hidden x n_layers.
        """
        return 4.0 * self.hidden * self.n_layers

    @property
    def kv_bytes_per_request(self) -> float:
        """KV footprint of one request at the average effective context."""
        return self.kv_bytes_per_token * self.avg_context_tokens


OPT_66B = ModelSpec(
    name="OPT-66B",
    n_layers=64,
    hidden=9216,
    n_heads=72,
    vocab=50272,
    checkpoint_bytes=120.0 * GB,  # Table 2: "OPT-66B (120GB)"
)

LLAMA2_7B = ModelSpec(
    name="LLAMA2-7B",
    n_layers=32,
    hidden=4096,
    n_heads=32,
    vocab=32000,
    checkpoint_bytes=13.5 * GB,
)

BERT_21B = ModelSpec(
    name="BERT-21B",
    n_layers=48,
    hidden=6144,
    n_heads=48,
    vocab=30522,
    checkpoint_bytes=42.0 * GB,
)

WHISPER_9B = ModelSpec(
    name="WHISPER-9B",
    n_layers=32,
    hidden=4096,
    n_heads=32,
    vocab=51865,
    checkpoint_bytes=18.0 * GB,
    encoder_layers=12,
)

MODEL_ZOO: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (OPT_66B, LLAMA2_7B, BERT_21B, WHISPER_9B)
}


# Synthetic fleet tenants for 100+ model scenarios: "FLEET-<idx>" (size
# derived deterministically from the index) or "FLEET-<idx>-<size>g" (size
# pinned by the name).  The name alone fully determines the spec, so
# worker processes resolve identical fleets without shipping specs around.
_FLEET_RE = re.compile(r"^FLEET-(\d+)(?:-(\d+(?:\.\d+)?)g)?$")
_FLEET_CACHE: dict[str, ModelSpec] = {}


def _synthesize_fleet_model(name: str) -> ModelSpec | None:
    m = _FLEET_RE.match(name)
    if m is None:
        return None
    idx = int(m.group(1))
    if m.group(2) is not None:
        size_gb = float(m.group(2))
    else:
        # Deterministic log-uniform over [4, 40) GB (Weyl sequence on the
        # index — no RNG, stable across processes and runs).
        u = (idx * 2654435761 % 4096) / 4096.0
        size_gb = 4.0 * (10.0**u)
    if size_gb <= 0:
        raise KeyError(f"fleet model {name!r} declares a non-positive size")
    # Depth grows slowly with size and stays small: the granularity-ladder
    # DP is O(layers^2)-ish per rung, and 100+ tenants each build one.
    n_layers = min(8 + int(size_gb // 6) * 2, 28)
    return ModelSpec(
        name=name,
        n_layers=n_layers,
        hidden=4096,
        n_heads=32,
        vocab=32000,
        checkpoint_bytes=size_gb * GB,
    )


def get_model(name: str) -> ModelSpec:
    """Look up a model by its paper name; raises ``KeyError`` with options.

    ``FLEET-*`` names synthesize (and memoize) a deterministic tenant spec,
    supporting 100+ model fleet scenarios without hand-writing a zoo.
    """
    try:
        return MODEL_ZOO[name]
    except KeyError:
        pass
    # Memoized separately so MODEL_ZOO keeps exactly the paper's models
    # (per-model sweeps iterate it).
    spec = _FLEET_CACHE.get(name)
    if spec is None:
        spec = _synthesize_fleet_model(name)
        if spec is not None:
            _FLEET_CACHE[name] = spec
    if spec is not None:
        return spec
    raise KeyError(
        f"unknown model {name!r}; available: {sorted(MODEL_ZOO)} "
        f"or synthetic 'FLEET-<idx>[-<size>g]' tenants"
    ) from None
