"""Plan serialization and transition diffing.

Production controllers persist partition plans (the offline artefact of
Fig. 5's model developer path) and reason about what a transition between
two plans actually moves.  This module provides both:

* :func:`plan_to_dict` / JSON round-trips for :class:`PartitionPlan`
  (cuts + per-stage profile numbers are enough to reconstruct costs);
* :class:`TransitionDiff` — given two plans from the *same ladder*, which
  target stages can reuse a resident GPU (their leading fine range is
  already loaded) and how many parameter bytes each fresh stage must load.
  These are the quantities the refactoring executor budgets (Fig. 6's
  "load stage in new instance" vs "layer-wised merge state" paths).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.models.profiler import ModelProfile
from repro.partitioning.plan import PartitionPlan, StagePlan


def plan_to_dict(plan: PartitionPlan) -> dict:
    """A JSON-safe description of a plan (cuts + stage summaries)."""
    return {
        "model": plan.model_name,
        "n_stages": plan.n_stages,
        "objective": plan.objective,
        "max_batch": plan.max_batch,
        "stages": [
            {
                "index": s.index,
                "start": s.start,
                "end": s.end,
                "param_bytes": s.param_bytes,
                "max_batch": s.max_batch,
            }
            for s in plan.stages
        ],
    }


def plan_to_json(plan: PartitionPlan, path: str | pathlib.Path | None = None) -> str:
    """Serialise a plan; optionally also write it to ``path``."""
    text = json.dumps(plan_to_dict(plan), indent=2)
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def plan_from_dict(payload: dict, profile: ModelProfile) -> PartitionPlan:
    """Rebuild a plan against a live profile (re-deriving stage profiles).

    The serialised form stores only the cut structure; stage profiles are
    recomputed from the model graph so cost numbers always reflect the
    current calibration rather than whatever produced the file.
    """
    if payload["model"] != profile.spec.name:
        raise ValueError(
            f"plan is for {payload['model']!r}, profile is "
            f"{profile.spec.name!r}"
        )
    stages = []
    for meta in payload["stages"]:
        stage_profile = profile.stage(meta["start"], meta["end"])
        stages.append(
            StagePlan(
                index=meta["index"],
                profile=stage_profile,
                max_batch=meta["max_batch"],
            )
        )
    expected_ops = len(profile.graph)
    if not stages or stages[0].start != 0 or stages[-1].end != expected_ops:
        raise ValueError("plan does not cover the full operator range")
    for prev, cur in zip(stages, stages[1:]):
        if cur.start != prev.end:
            raise ValueError(
                f"stage {cur.index} starts at {cur.start}, expected {prev.end}"
            )
    return PartitionPlan(
        model_name=payload["model"],
        stages=tuple(stages),
        objective=payload.get("objective", 0.0),
    )


def plan_from_json(
    source: str | pathlib.Path, profile: ModelProfile
) -> PartitionPlan:
    """Load a plan from a JSON string or file path."""
    if isinstance(source, pathlib.Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".json")
    ):
        text = pathlib.Path(source).read_text()
    else:
        text = source
    return plan_from_dict(json.loads(text), profile)


# ----------------------------------------------------------------------
# Transition diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageTransition:
    """How one target stage comes into existence."""

    target_index: int
    start: int
    end: int
    reuses_source_index: int | None  # source stage whose GPU is retained
    load_bytes: float  # parameter bytes that must be loaded


@dataclass(frozen=True)
class TransitionDiff:
    """The byte-level footprint of an old-plan → new-plan transition."""

    source_stages: int
    target_stages: int
    stages: tuple[StageTransition, ...]

    @property
    def reused_gpus(self) -> int:
        return sum(1 for s in self.stages if s.reuses_source_index is not None)

    @property
    def fresh_gpus(self) -> int:
        return len(self.stages) - self.reused_gpus

    @property
    def total_load_bytes(self) -> float:
        return sum(s.load_bytes for s in self.stages)

    @property
    def kind(self) -> str:
        if self.target_stages > self.source_stages:
            return "split"
        if self.target_stages < self.source_stages:
            return "merge"
        return "noop"


def diff_plans(source: PartitionPlan, target: PartitionPlan) -> TransitionDiff:
    """Per-stage reuse/load analysis for a transition between ladder rungs.

    A target stage *reuses* the GPU of the source stage whose operator
    range starts where it starts (the executor's retention rule): that GPU
    already holds the shared leading range, so only the complement —
    operators of the target stage beyond the source stage's end — needs
    loading.  Works for any two plans over the same operator ranges; plans
    from the same nested ladder maximise reuse by construction.
    """
    if source.model_name != target.model_name:
        raise ValueError(
            f"cannot diff plans of different models "
            f"({source.model_name!r} vs {target.model_name!r})"
        )
    by_start = {s.start: s for s in source.stages}
    transitions = []
    for t in target.stages:
        src = by_start.get(t.start)
        if src is None:
            # No source stage starts here: a fresh GPU loads everything.
            transitions.append(
                StageTransition(t.index, t.start, t.end, None, t.param_bytes)
            )
            continue
        shared_end = min(src.end, t.end)
        shared_bytes = _range_bytes(source, t.start, shared_end)
        transitions.append(
            StageTransition(
                t.index,
                t.start,
                t.end,
                src.index,
                max(t.param_bytes - shared_bytes, 0.0),
            )
        )
    return TransitionDiff(
        source_stages=source.n_stages,
        target_stages=target.n_stages,
        stages=tuple(transitions),
    )


def _range_bytes(plan: PartitionPlan, start: int, end: int) -> float:
    """Parameter bytes of operators [start, end) using the plan's profiles.

    Stage profiles cover contiguous ranges, so the overlap fraction is
    prorated by operator count within each stage — exact when operators in
    a stage have uniform size, and a close bound otherwise (it is only
    used to size loads, never for correctness).
    """
    total = 0.0
    for stage in plan.stages:
        lo, hi = max(stage.start, start), min(stage.end, end)
        if lo >= hi:
            continue
        span = stage.end - stage.start
        total += stage.param_bytes * (hi - lo) / span
    return total
