"""Plan/ladder validation: the invariants of DESIGN.md §6.1."""

from __future__ import annotations

from repro.models.graph import ComputationGraph
from repro.partitioning.plan import PartitionPlan


def validate_plan(
    plan: PartitionPlan, graph: ComputationGraph, gpu_memory: float
) -> None:
    """Raise ``AssertionError`` if a plan violates any structural invariant."""
    stages = plan.stages
    assert stages, "plan has no stages"
    assert stages[0].start == 0, "first stage must start at operator 0"
    assert stages[-1].end == len(graph), "last stage must end at the last operator"
    for a, b in zip(stages, stages[1:]):
        assert a.end == b.start, f"gap/overlap between stages {a.index} and {b.index}"
    for stage in stages:
        assert stage.start < stage.end, f"empty stage {stage.index}"
        assert (
            stage.param_bytes <= gpu_memory + 1e-6
        ), f"stage {stage.index} exceeds GPU memory"
        if stage.end < len(graph):
            cut_op = graph.operators[stage.end - 1]
            assert cut_op.cuttable_after, (
                f"stage {stage.index} cuts after un-cuttable operator "
                f"{cut_op.name!r}"
            )
    total = sum(s.param_bytes for s in stages)
    assert abs(total - graph.total_param_bytes) < 1e-3, "parameter bytes not conserved"


def validate_ladder(ladder) -> None:
    """Check the nesting property: coarse cuts ⊆ fine cuts."""
    fine_cuts = set(ladder.fine_plan.cuts)
    for count in ladder.stage_counts:
        rung = ladder.rung(count)
        for cut in rung.plan.cuts:
            assert cut in fine_cuts, (
                f"{count}-stage rung cut at op {cut} is not a fine-plan cut; "
                "ladder is not nested"
            )
        # Groups must tile the fine stages exactly.
        tiles = [g for g in rung.groups]
        assert tiles[0][0] == 0
        assert tiles[-1][1] == ladder.fine_plan.n_stages
        for (a, b), (c, d) in zip(tiles, tiles[1:]):
            assert b == c, "fine-stage groups must tile contiguously"
            assert a < b and c < d, "empty fine-stage group"
