"""Nested granularity ladder: the candidate set G of Eq. 4.

The ladder first computes the *finest* feasible plan, then derives every
coarser plan by optimally grouping contiguous fine stages (min-max DP over
fine-stage compute).  Because coarse stages are exact unions of fine
stages, runtime transitions between any two rungs only move whole fine
stages — merged stages "reuse existing memory layouts" exactly as §5
requires, and split stages load only the complement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.profiler import ModelProfile
from repro.partitioning.partitioner import Partitioner, PartitionerConfig
from repro.partitioning.plan import PartitionPlan, build_plan


@dataclass(frozen=True)
class LadderRung:
    """One granularity: a plan plus its mapping onto the finest rung."""

    n_stages: int
    plan: PartitionPlan
    # groups[k] = (first_fine_stage, last_fine_stage_exclusive) merged into
    # coarse stage k of this rung.
    groups: tuple[tuple[int, int], ...]


class GranularityLadder:
    """Builds and indexes the nested plans for one model."""

    DEFAULT_STAGE_COUNTS = (1, 2, 4, 8, 16, 32)

    def __init__(
        self,
        profile: ModelProfile,
        *,
        stage_counts: tuple[int, ...] | None = None,
        partitioner_config: PartitionerConfig | None = None,
    ):
        self.profile = profile
        counts = tuple(sorted(set(stage_counts or self.DEFAULT_STAGE_COUNTS)))
        partitioner = Partitioner(profile, partitioner_config)
        feasible = self._feasible_counts(counts, partitioner)
        if not feasible:
            raise ValueError(
                f"{profile.spec.name}: no feasible granularity among {counts}"
            )
        finest = feasible[-1]
        self.fine_plan = partitioner.plan(finest)
        self._rungs: dict[int, LadderRung] = {}
        for count in feasible:
            self._rungs[count] = self._group_rung(count)

    # ------------------------------------------------------------------
    @property
    def stage_counts(self) -> list[int]:
        return sorted(self._rungs)

    @property
    def finest(self) -> int:
        return max(self._rungs)

    @property
    def coarsest(self) -> int:
        return min(self._rungs)

    def rung(self, n_stages: int) -> LadderRung:
        try:
            return self._rungs[n_stages]
        except KeyError:
            raise KeyError(
                f"no {n_stages}-stage rung; available: {self.stage_counts}"
            ) from None

    def plan(self, n_stages: int) -> PartitionPlan:
        return self.rung(n_stages).plan

    # ------------------------------------------------------------------
    def _feasible_counts(self, counts, partitioner) -> list[int]:
        """Counts whose plans satisfy memory + boundary-availability limits."""
        out = []
        # Count only the boundaries the partitioner will actually cut at
        # (its quality filter drops mid-block cuts): shallow models can
        # have fewer legal positions than raw graph cut points.
        n_boundaries = partitioner.n_positions
        gpu_memory = self.profile.cost_model.config.gpu_memory
        total = self.profile.graph.total_param_bytes
        for count in counts:
            if count > n_boundaries:
                continue
            # A K-stage plan needs every stage under the memory cap; a
            # necessary condition is total/K <= cap (balanced), a sufficient
            # check is done by the DP itself — use the cheap necessary test
            # plus a guard for the single-stage case.
            if total / count > gpu_memory and count > 1:
                continue
            if count == 1 and total > gpu_memory:
                continue
            out.append(count)
        return out

    def _group_rung(self, n_stages: int) -> LadderRung:
        """Min-max grouping of fine stages into ``n_stages`` coarse stages."""
        fine = self.fine_plan.stages
        n_fine = len(fine)
        if n_stages > n_fine:
            raise ValueError(f"cannot split {n_fine} fine stages into {n_stages}")
        if n_stages == n_fine:
            groups = tuple((i, i + 1) for i in range(n_fine))
            return LadderRung(n_stages, self.fine_plan, groups)

        weights = [
            self.profile.stage_compute_time(s.profile, 1) for s in fine
        ]
        prefix = [0.0]
        for w in weights:
            prefix.append(prefix[-1] + w)
        bytes_prefix = [0.0]
        for s in fine:
            bytes_prefix.append(bytes_prefix[-1] + s.param_bytes)
        gpu_memory = self.profile.cost_model.config.gpu_memory

        infinity = math.inf

        def group_cost(i: int, j: int) -> float:
            """Cost of merging fine stages [i, j) into one coarse stage."""
            if bytes_prefix[j] - bytes_prefix[i] > gpu_memory:
                return infinity
            return prefix[j] - prefix[i]

        # dp[k][j]: min bottleneck for first k groups covering fine[0:j].
        dp = [[infinity] * (n_fine + 1) for _ in range(n_stages + 1)]
        arg = [[-1] * (n_fine + 1) for _ in range(n_stages + 1)]
        dp[0][0] = 0.0
        for k in range(1, n_stages + 1):
            for j in range(k, n_fine + 1):
                for i in range(k - 1, j):
                    if math.isinf(dp[k - 1][i]):
                        continue
                    cand = max(dp[k - 1][i], group_cost(i, j))
                    if cand < dp[k][j]:
                        dp[k][j] = cand
                        arg[k][j] = i
        if math.isinf(dp[n_stages][n_fine]):
            raise ValueError(
                f"{self.profile.spec.name}: no feasible {n_stages}-stage grouping"
            )
        # Back-track group boundaries in fine-stage space.
        bounds = [n_fine]
        j = n_fine
        for k in range(n_stages, 0, -1):
            j = arg[k][j]
            bounds.append(j)
        bounds.reverse()  # [0, ..., n_fine]
        groups = tuple((bounds[i], bounds[i + 1]) for i in range(n_stages))
        # Convert fine-stage groups to operator boundaries for the plan.
        op_boundaries = [fine[hi - 1].end for (_, hi) in groups]
        plan = build_plan(self.profile, op_boundaries, dp[n_stages][n_fine])
        return LadderRung(n_stages, plan, groups)
