"""Eq. 3: batch-aware activation transmission scaling.

    s_a(S_k, b) = s_a_base(S_k) * (1 + alpha * log(b / b_base))

``alpha`` is learned from historical (batch, bytes) observations by linear
regression, exactly as the paper describes; a floor keeps the predicted
size physical for very small batches.
"""

from __future__ import annotations

import math

import numpy as np

DEFAULT_ALPHA = 0.18
DEFAULT_BASE_BATCH = 128
_MIN_FACTOR = 0.25


def activation_bytes(
    base_bytes: float,
    batch: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    base_batch: int = DEFAULT_BASE_BATCH,
) -> float:
    """Predicted per-iteration activation transfer size at ``batch``."""
    if base_bytes < 0:
        raise ValueError(f"negative base size: {base_bytes}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    factor = 1.0 + alpha * math.log(batch / base_batch)
    return base_bytes * max(factor, _MIN_FACTOR)


def fit_alpha(
    batches: list[int],
    observed_bytes: list[float],
    *,
    base_batch: int = DEFAULT_BASE_BATCH,
) -> float:
    """Least-squares fit of alpha from history (the paper's regression).

    Solves ``bytes/base - 1 = alpha * log(b/b_base)`` for alpha, where
    ``base`` is the observation at (or interpolated to) ``base_batch``.
    """
    if len(batches) != len(observed_bytes):
        raise ValueError("batches and observed_bytes must have equal length")
    if len(batches) < 2:
        raise ValueError("need at least two observations to fit alpha")
    b = np.asarray(batches, dtype=float)
    s = np.asarray(observed_bytes, dtype=float)
    if np.any(b < 1) or np.any(s <= 0):
        raise ValueError("observations must have batch >= 1 and bytes > 0")
    # Estimate the base size at b_base by interpolating in log space.
    log_b = np.log(b / base_batch)
    base = float(np.exp(np.interp(0.0, np.sort(log_b), np.log(s[np.argsort(log_b)]))))
    x = log_b
    y = s / base - 1.0
    denom = float(np.dot(x, x))
    if denom == 0:
        raise ValueError("all observations at the base batch; alpha unidentifiable")
    return float(np.dot(x, y) / denom)
