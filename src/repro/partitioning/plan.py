"""Partition plans: the output of the Eq. 2 optimiser."""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.profiler import ModelProfile, StageProfile


@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage: a contiguous operator range plus its profile."""

    index: int
    profile: StageProfile
    max_batch: int

    @property
    def start(self) -> int:
        return self.profile.start

    @property
    def end(self) -> int:
        return self.profile.end

    @property
    def param_bytes(self) -> float:
        return self.profile.param_bytes


@dataclass(frozen=True)
class PartitionPlan:
    """A complete K-stage partition of one model."""

    model_name: str
    stages: tuple[StagePlan, ...]
    objective: float

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def max_batch(self) -> int:
        """Pipeline batch capacity = the most constrained stage's capacity."""
        return min(s.max_batch for s in self.stages)

    @property
    def cuts(self) -> tuple[int, ...]:
        """Operator indices at which the model is cut (stage end-exclusive)."""
        return tuple(s.end for s in self.stages[:-1])

    def stage_param_bytes(self) -> list[float]:
        return [s.param_bytes for s in self.stages]

    def memory_per_stage(self, batch: int, kv_bytes_per_request: float) -> list[float]:
        """Per-GPU memory demand at ``batch``: parameters + KV reservation.

        ``kv_bytes_per_request`` is the whole-model per-request KV footprint;
        each stage holds its KV fraction of it.
        """
        total_kv_ptok = sum(s.profile.kv_bytes_per_token for s in self.stages)
        out = []
        for stage in self.stages:
            fraction = (
                stage.profile.kv_bytes_per_token / total_kv_ptok
                if total_kv_ptok > 0
                else 0.0
            )
            out.append(stage.param_bytes + batch * kv_bytes_per_request * fraction)
        return out

    def describe(self) -> str:
        parts = [
            f"{self.model_name}: {self.n_stages} stages, max_batch={self.max_batch}"
        ]
        for stage in self.stages:
            parts.append(
                f"  stage {stage.index}: ops[{stage.start}:{stage.end}] "
                f"{stage.param_bytes / 2**30:.2f} GiB, batch<= {stage.max_batch}"
            )
        return "\n".join(parts)


def build_plan(
    model_profile: ModelProfile, boundaries: list[int], objective: float
) -> PartitionPlan:
    """Assemble a plan from stage end-indices (exclusive, last == n_ops)."""
    stages = []
    start = 0
    for k, end in enumerate(boundaries):
        profile = model_profile.stage(start, end)
        stages.append(
            StagePlan(
                index=k,
                profile=profile,
                max_batch=model_profile.stage_max_batch(profile),
            )
        )
        start = end
    return PartitionPlan(
        model_name=model_profile.spec.name,
        stages=tuple(stages),
        objective=objective,
    )
