"""Fine-grained model partitioning (§5).

Implements the Eq. 2 constrained optimisation as a min-max dynamic program
over legal cut points, the Eq. 3 batch-aware activation scaling, and the
nested *granularity ladder* that makes inflight refactoring cheap: every
coarse stage is an exact union of contiguous fine stages, so merging reuses
resident parameters and splitting only loads the complement.
"""

from repro.partitioning.plan import PartitionPlan, StagePlan
from repro.partitioning.partitioner import Partitioner, PartitionerConfig
from repro.partitioning.ladder import GranularityLadder
from repro.partitioning.batch_scaling import activation_bytes, fit_alpha
from repro.partitioning.validate import validate_ladder, validate_plan
from repro.partitioning.serialize import (
    TransitionDiff,
    diff_plans,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)

__all__ = [
    "PartitionPlan",
    "StagePlan",
    "Partitioner",
    "PartitionerConfig",
    "GranularityLadder",
    "activation_bytes",
    "fit_alpha",
    "validate_plan",
    "validate_ladder",
    "TransitionDiff",
    "diff_plans",
    "plan_to_dict",
    "plan_to_json",
    "plan_from_dict",
    "plan_from_json",
]
