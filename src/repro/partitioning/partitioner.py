"""Eq. 2 constrained partitioning as a min-max dynamic program.

The objective per stage is::

    cost(S_k) = t_c(S_k) + max(s_p(S_k)/B - C, 0) + lambda * (1 - R(S_k))

where ``t_c`` is the calibrated stage compute time, ``s_p/B`` the parameter
(re)load time against inter-stage bandwidth ``B``, ``C`` the target
computation-communication overlap budget, and ``R`` the refactoring
potential of the stage's trailing boundary (1.0 at layer boundaries).  The
DP minimises the *bottleneck* stage cost (pipeline throughput is set by the
slowest stage) with total cost as tie-breaker, subject to the hard memory
constraint ``s_p(S_k) <= M_GPU``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.profiler import ModelProfile
from repro.partitioning.plan import PartitionPlan, build_plan


@dataclass(frozen=True)
class PartitionerConfig:
    """Eq. 2 hyper-parameters."""

    bandwidth: float = 12.5 * 1024**3  # B: inter-stage bandwidth (bytes/s)
    overlap_budget: float = 2.0  # C: tolerated reload seconds per stage
    boundary_weight: float = 5e-3  # lambda: refactorability regulariser
    reference_batch: int = 1  # batch at which t_c is evaluated
    gpu_memory: float | None = None  # defaults to cost-model GPU memory
    # Only consider cuts at boundaries of at least this quality (0.5 = block
    # boundaries).  Lower values enlarge the DP search space with awkward
    # mid-block cuts the Eq. 2 regulariser would reject anyway.
    min_boundary_quality: float = 0.5


class InfeasiblePartition(ValueError):
    """No K-stage partition satisfies the constraints."""


class Partitioner:
    """Computes optimal K-stage plans over a model profile."""

    def __init__(self, profile: ModelProfile, config: PartitionerConfig | None = None):
        self.profile = profile
        self.config = config or PartitionerConfig()
        self.graph = profile.graph
        # Legal stage boundaries: operator index i means "cut after op i".
        self._cuts = [
            i
            for i in self.graph.cut_points()
            if self.graph.boundary_quality(i) >= self.config.min_boundary_quality
        ]

    @property
    def n_positions(self) -> int:
        """Candidate stage-end positions under the boundary-quality filter
        (the maximum stage count any plan of this profile can have)."""
        return len(self._cuts) + 1

    # ------------------------------------------------------------------
    def plan(self, n_stages: int) -> PartitionPlan:
        """Optimal ``n_stages``-stage plan (Eq. 2)."""
        if n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {n_stages}")
        n_ops = len(self.graph)
        if n_stages == 1:
            cost = self._stage_cost(0, n_ops)
            if cost is None:
                raise InfeasiblePartition(
                    f"{self.graph.model_name} does not fit on a single GPU"
                )
            return build_plan(self.profile, [n_ops], cost)

        # Candidate stage end positions (exclusive): cut "after op i" => end i+1.
        ends = [i + 1 for i in self._cuts] + [n_ops]
        n_pos = len(ends)
        if n_stages > n_pos:
            raise InfeasiblePartition(
                f"{self.graph.model_name}: cannot make {n_stages} stages from "
                f"{n_pos} legal boundaries"
            )

        infinity = math.inf
        # dp[k][j]: (bottleneck, total) for first k stages ending at ends[j].
        prev = [self._pair(self._stage_cost(0, ends[j])) for j in range(n_pos)]
        choice: list[list[int]] = []
        for k in range(1, n_stages):
            cur = [(infinity, infinity)] * n_pos
            arg = [-1] * n_pos
            for j in range(k, n_pos):
                end = ends[j]
                best = (infinity, infinity)
                best_i = -1
                for i in range(k - 1, j):
                    base = prev[i]
                    if math.isinf(base[0]):
                        continue
                    cost = self._stage_cost(ends[i], end)
                    if cost is None:
                        continue
                    cand = (max(base[0], cost), base[1] + cost)
                    if cand < best:
                        best = cand
                        best_i = i
                cur[j] = best
                arg[j] = best_i
            prev = cur
            choice.append(arg)

        final = prev[n_pos - 1]
        if math.isinf(final[0]):
            raise InfeasiblePartition(
                f"{self.graph.model_name}: no feasible {n_stages}-stage plan "
                f"under the memory constraint"
            )
        # Back-track boundaries.
        boundaries = [ends[n_pos - 1]]
        j = n_pos - 1
        for k in range(n_stages - 1, 0, -1):
            j = choice[k - 1][j]
            boundaries.append(ends[j])
        boundaries.reverse()
        return build_plan(self.profile, boundaries, final[1])

    # ------------------------------------------------------------------
    def _pair(self, cost: float | None) -> tuple[float, float]:
        if cost is None:
            return (math.inf, math.inf)
        return (cost, cost)

    def _stage_cost(self, start: int, end: int) -> float | None:
        """Eq. 2 stage cost, or None if the stage violates the memory cap."""
        cfg = self.config
        stage = self.profile.stage(start, end)
        gpu_memory = (
            cfg.gpu_memory
            if cfg.gpu_memory is not None
            else self.profile.cost_model.config.gpu_memory
        )
        if stage.param_bytes > gpu_memory:
            return None
        t_c = self.profile.stage_compute_time(stage, cfg.reference_batch)
        reload_penalty = max(stage.param_bytes / cfg.bandwidth - cfg.overlap_budget, 0.0)
        boundary_penalty = cfg.boundary_weight * (1.0 - stage.boundary_quality)
        return t_c + reload_penalty + boundary_penalty
