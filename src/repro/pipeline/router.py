"""Per-model request router (the gateway updated during refactoring).

Join-the-shortest-queue across ACTIVE replicas; requests arriving while no
replica is active wait in a pending queue (this is where cold-start latency
becomes queue time).  The refactoring executor's "update gateway" step is
the ``add``/``remove`` pair here — an O(1) metadata update, which is why
switchover costs milliseconds, not seconds.
"""

from __future__ import annotations

from collections import deque

from repro.pipeline.replica import PipelineReplica
from repro.simulation.engine import Simulator
from repro.workloads.requests import Request


class ModelRouter:
    """Routes one model's requests over its replica set."""

    def __init__(self, sim: Simulator, model: str):
        self.sim = sim
        self.model = model
        self.replicas: list[PipelineReplica] = []
        self.pending: deque[Request] = deque()
        self.submitted = 0
        self.routed = 0
        self.gateway_updates = 0

    # ------------------------------------------------------------------
    def add(self, replica: PipelineReplica) -> None:
        """Register an ACTIVE replica and drain any pending requests."""
        if replica not in self.replicas:
            self.replicas.append(replica)
            self.gateway_updates += 1
        self._drain_pending()

    def remove(self, replica: PipelineReplica) -> None:
        if replica in self.replicas:
            self.replicas.remove(replica)
            self.gateway_updates += 1

    # ------------------------------------------------------------------
    def use_priority_queue(self, queue) -> None:
        """Swap the FIFO pending queue for a class-aware one (QoS).

        ``queue`` must speak the deque subset the router uses (append /
        popleft / len / iteration) — in practice a
        :class:`~repro.qos.queueing.PriorityPendingQueue`.  Requests
        already waiting migrate in arrival order, so the swap is safe
        mid-run and conservation counters are untouched.
        """
        while self.pending:
            queue.append(self.pending.popleft())
        self.pending = queue

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        self.submitted += 1
        target = self._pick()
        if target is None:
            trace = request.trace
            if trace is not None:
                trace.parked_at = self.sim.now
            self.pending.append(request)
            return
        self.routed += 1
        trace = request.trace
        if trace is not None:
            trace.routed_at = self.sim.now
        target.submit(request)

    def _pick(self) -> PipelineReplica | None:
        active = [r for r in self.replicas if r.accepting]
        if not active:
            return None
        # Normalise queue depth by the replica's *effective* batch: a
        # replica deployed degraded (halved batch under fragmentation)
        # serves at a fraction of its plan's capacity and must attract
        # proportionally less load.
        return min(active, key=lambda r: (r.queue_length / max(r.max_batch, 1)))

    def _drain_pending(self) -> None:
        while self.pending:
            target = self._pick()
            if target is None:
                return
            self.routed += 1
            request = self.pending.popleft()
            trace = request.trace
            if trace is not None:
                trace.unparked_at = self.sim.now
                trace.routed_at = self.sim.now
            target.submit(request)

    # ------------------------------------------------------------------
    @property
    def total_queue(self) -> int:
        """Pending + queued across replicas (the q̂ of Eq. 11)."""
        return len(self.pending) + sum(
            r.queue_length for r in self.replicas if r.accepting
        )

    @property
    def waiting_count(self) -> int:
        """Requests not yet executing (the paper's queue-length metric).

        Excludes in-flight batches: a loaded pipeline always holds several
        batch-waves of in-service requests, which is occupancy, not
        congestion.
        """
        return len(self.pending) + sum(
            len(r.batcher) for r in self.replicas if r.accepting
        )

    @property
    def active_replicas(self) -> list[PipelineReplica]:
        return [r for r in self.replicas if r.accepting]
