"""A pipeline stage executing on one (possibly shared) GPU."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.allocator import StageReservation
from repro.cluster.gpu import GPU
from repro.partitioning.plan import StagePlan
from repro.simulation.engine import Simulator


@dataclass
class BatchJob:
    """One batch travelling through the pipeline.

    Per-stage timings are precomputed at batch formation (the cost model is
    deterministic given the batch composition); interference multipliers
    are applied at execution time from the live GPU state.
    """

    jid: int
    requests: list
    stage_busy: list[float]  # GPU-busy seconds per stage
    stage_prefill: list[float]  # prefill part of stage_busy (for prefill_done)
    handoff: list[float]  # comm latency after each stage (len = stages-1)
    created_at: float
    exec_start: float | None = None
    stage_started: list[float] = field(default_factory=list)
    exec_time: float = 0.0
    comm_time: float = 0.0
    # The stage chain this job executes on; pinned at dispatch so in-flight
    # jobs finish on their original chain across inflight reconfigurations.
    stages: list = field(default_factory=list)
    # Observability: per-stage timing marks shared by the batch's requests
    # (a repro.observability.tracer.JobMarks); None unless tracing is on.
    marks: object | None = None

    @property
    def batch_size(self) -> int:
        return len(self.requests)


class StageRuntime:
    """Executes jobs FIFO on its GPU; downstream hand-off via callback.

    The GPU may be shared with stages of *other* models (MuxServe-style
    multiplexing, or Eq. 6 consolidation); ``interference`` scales busy time
    by the live multiplexing penalty (Eq. 9).
    """

    def __init__(
        self,
        sim: Simulator,
        index: int,
        plan: StagePlan,
        reservation: StageReservation,
        on_done: Callable[[BatchJob, int], None],
        interference: Callable[[GPU], float] | None = None,
    ):
        self.sim = sim
        self.index = index
        self.plan = plan
        self.reservation = reservation
        self.on_done = on_done
        self.interference = interference or (lambda gpu: 1.0)
        # Each entry is (job, enqueue_time): FIFO order makes a side table
        # of enqueue timestamps redundant, and skipping the per-job dict
        # insert/pop keeps this per-event path allocation-free.
        self.queue: deque[tuple[BatchJob, float]] = deque()
        self.busy = False
        self.inflight = 0  # jobs enqueued or executing here (for retirement)
        self.retired = False
        self.jobs_executed = 0
        self.busy_seconds = 0.0
        self.stall_seconds = 0.0  # time jobs waited here with work pending
        # Pipelined loading (PipeBoost-style): a gated stage holds its queue
        # until its parameter transfer completes, so a replica can serve
        # from its first loaded stages while later ones still load.  The
        # audit trail (was_gated / loaded_at / load_marks /
        # first_started_at) backs the `partial-activation` invariant.
        self.loaded = True
        self.was_gated = False
        self.loaded_at: float | None = None
        self.load_marks = 0
        self.first_started_at: float | None = None
        # Whether parameters actually landed on the GPU (False while a
        # deploy's transfers are in flight; gates cache-on-release).
        self.params_resident = True

    @property
    def gpu(self) -> GPU:
        return self.reservation.gpu

    @property
    def idle(self) -> bool:
        return not self.busy and not self.queue

    def enqueue(self, job: BatchJob) -> None:
        # Retired stages still serve jobs pinned to their chain before the
        # reconfiguration; only *new* batches are barred (the replica
        # dispatches those onto the new chain).
        self.inflight += 1
        self.queue.append((job, self.sim.now))
        if not self.busy:
            self._start_next()

    # ------------------------------------------------------------------
    def gate_load(self) -> None:
        """Bar execution until :meth:`mark_loaded`; jobs queue meanwhile."""
        self.loaded = False
        self.was_gated = True
        self.params_resident = False

    def mark_loaded(self) -> None:
        """Parameter transfer complete: open the gate and drain the queue."""
        self.load_marks += 1
        self.params_resident = True
        if not self.loaded:
            self.loaded = True
            self.loaded_at = self.sim.now
            if self.queue and not self.busy:
                self._start_next()

    def _start_next(self) -> None:
        if not self.queue or not self.loaded:
            return
        job, enqueued_at = self.queue.popleft()
        self.busy = True
        if self.first_started_at is None:
            self.first_started_at = self.sim.now
        waited = self.sim.now - enqueued_at
        if self.index > 0:
            self.stall_seconds += waited
        duration = job.stage_busy[self.index] * self.interference(self.gpu)
        job.stage_started.append(self.sim.now)
        if job.exec_start is None:
            job.exec_start = self.sim.now
        job.exec_time += duration
        # Serialise on the GPU: other models' stages may also occupy it.
        completion = self.gpu.occupy(self.sim.now, duration)
        self.busy_seconds += duration
        marks = job.marks
        if marks is not None:
            # Raw span marks: the completion timestamp is stored verbatim
            # (not re-derived from start + stall + duration) so the span
            # builder tiles the latency interval bit-exactly.
            gate_wait = 0.0
            if self.was_gated and self.loaded_at is not None:
                gate_wait = max(0.0, self.loaded_at - enqueued_at)
            busy = job.stage_busy[self.index]
            prefill_scaled = (
                duration * (job.stage_prefill[self.index] / busy)
                if busy > 0.0
                else 0.0
            )
            marks.stages.append(
                (
                    self.index,
                    enqueued_at,
                    self.sim.now,
                    gate_wait,
                    completion - self.sim.now - duration,
                    completion,
                    prefill_scaled,
                )
            )
        self.sim.schedule(completion - self.sim.now, self._complete, job)

    def _complete(self, job: BatchJob) -> None:
        self.busy = False
        self.inflight -= 1
        self.jobs_executed += 1
        self.on_done(job, self.index)
        if self.queue:
            self._start_next()
