"""Dynamic batching (the paper builds on Orca-style dynamic batching, §7).

Policy: requests accumulate for up to ``max_wait`` (the iteration-scheduling
window of continuous-batching systems) or until the granularity's batch
capacity is reached; a batch dispatches when the entry stage is free.  The
window is what amortises the per-iteration weight-streaming cost across
requests — dispatching singletons eagerly would cap throughput at the
batch-1 iteration rate.

:class:`PriorityBatcher` is the QoS variant: the accumulation window and
dispatch policy are identical, but each batch is *formed* in strict SLO
class-priority order (FIFO within a class, optional aging for
anti-starvation) — mirroring the router's
:class:`~repro.qos.queueing.PriorityPendingQueue` so mixed-class traffic
on one model meets FIFO nowhere between admission and the GPU.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.simulation.engine import Event, Simulator
from repro.workloads.requests import Request


@dataclass(frozen=True)
class BatcherConfig:
    max_batch: int = 128
    max_wait: float = 0.3  # accumulation window before dispatch

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")


class DynamicBatcher:
    """Accumulates requests and emits batches to a dispatch callback.

    ``can_dispatch`` tells the batcher whether the pipeline entry stage can
    accept a batch right now; ``dispatch`` consumes a list of requests.
    The owner must call :meth:`pump` whenever the entry stage frees up.

    Queue storage is behind the ``_append`` / ``_pop_batch`` /
    ``_oldest_time`` / ``entries`` hooks so :class:`PriorityBatcher` can
    change *pop order* without touching the window/dispatch policy.
    """

    def __init__(
        self,
        sim: Simulator,
        config: BatcherConfig,
        can_dispatch: Callable[[], bool],
        dispatch: Callable[[list[Request]], None],
    ):
        self.sim = sim
        self.config = config
        self.can_dispatch = can_dispatch
        self.dispatch = dispatch
        self.queue: deque[Request] = deque()
        self._enqueued_at: deque[float] = deque()
        self._timer: Event | None = None
        self.batches_formed = 0
        self.requests_batched = 0

    def __len__(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    # Queue storage hooks (overridden by PriorityBatcher)
    # ------------------------------------------------------------------
    def _append(self, request: Request, enqueued_at: float) -> None:
        self.queue.append(request)
        self._enqueued_at.append(enqueued_at)

    def _pop_batch(self, n: int) -> list[Request]:
        batch = [self.queue.popleft() for _ in range(n)]
        for _ in range(n):
            self._enqueued_at.popleft()
        return batch

    def _oldest_time(self) -> float | None:
        return self._enqueued_at[0] if self._enqueued_at else None

    def entries(self) -> list[tuple[Request, float]]:
        """Queued (request, enqueue-time) pairs in arrival order (used when
        migrating the queue into a different batcher implementation)."""
        return list(zip(self.queue, self._enqueued_at))

    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        self._append(request, self.sim.now)
        if len(self) >= self.config.max_batch and self.can_dispatch():
            self._emit()
        elif self._timer is None:
            self._arm_timer()

    def pump(self) -> None:
        """Called when the entry stage frees up: dispatch ripe batches."""
        if not len(self) or not self.can_dispatch():
            return
        if len(self) >= self.config.max_batch or self._oldest_ripe():
            self._emit()

    def flush(self) -> list[Request]:
        """Drain without dispatching (used when a replica is torn down)."""
        out = self._pop_batch(len(self))
        self._disarm_timer()
        return out

    # ------------------------------------------------------------------
    def _oldest_ripe(self) -> bool:
        oldest = self._oldest_time()
        if oldest is None:
            return False
        return self.sim.now - oldest >= self.config.max_wait

    def _emit(self) -> None:
        self._disarm_timer()
        n = min(len(self), self.config.max_batch)
        batch = self._pop_batch(n)
        self.batches_formed += 1
        self.requests_batched += n
        self.dispatch(batch)
        if len(self):
            self._arm_timer()

    def _arm_timer(self) -> None:
        self._disarm_timer()
        delay = self.config.max_wait
        oldest = self._oldest_time()
        if oldest is not None:
            # Fire when the oldest queued request's window closes.
            delay = max(self.config.max_wait - (self.sim.now - oldest), 0.0)
        self._timer = self.sim.schedule(delay, self._timeout)

    def _disarm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _timeout(self) -> None:
        self._timer = None
        if not len(self):
            return
        if self.can_dispatch():
            self._emit()
        else:
            # Entry stage busy: it will pump() on completion; keep a
            # heartbeat so the wait bound survives pathological schedules.
            self._timer = self.sim.schedule(self.config.max_wait, self._timeout)
    @property
    def mean_batch_size(self) -> float:
        if self.batches_formed == 0:
            return 0.0
        return self.requests_batched / self.batches_formed


class PriorityBatcher(DynamicBatcher):
    """Class-priority batch formation inside a replica.

    Same accumulation window and dispatch policy as
    :class:`DynamicBatcher`, but each emitted batch pulls requests in
    strict SLO-class priority order: lower rank first, FIFO within a
    class, and an optional *aging* knob that improves a request's
    effective rank by one per ``aging`` seconds waited so a batch backlog
    cannot starve forever behind sustained interactive pressure.  With a
    single class present pop order is exactly FIFO, so installing it on an
    unclassed tenant changes nothing.
    """

    def __init__(
        self,
        sim: Simulator,
        config: BatcherConfig,
        can_dispatch: Callable[[], bool],
        dispatch: Callable[[list[Request]], None],
        *,
        priority_of: Callable[[Request], int],
        aging: float | None = None,
    ):
        super().__init__(sim, config, can_dispatch, dispatch)
        if aging is not None and aging <= 0:
            raise ValueError(f"aging must be positive (or None), got {aging}")
        self.priority_of = priority_of
        self.aging = aging
        self._buckets: dict[int, deque[tuple[int, float, Request]]] = {}
        self._seq = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    # ------------------------------------------------------------------
    def _append(self, request: Request, enqueued_at: float) -> None:
        priority = int(self.priority_of(request))
        bucket = self._buckets.get(priority)
        if bucket is None:
            bucket = self._buckets[priority] = deque()
        bucket.append((self._seq, enqueued_at, request))
        self._seq += 1
        self._len += 1

    def _pop_one(self) -> Request:
        now = self.sim.now
        best_key: tuple[int, int] | None = None
        best_priority = 0
        for priority in sorted(self._buckets):
            bucket = self._buckets[priority]
            if not bucket:
                continue
            seq, enqueued, _ = bucket[0]
            effective = priority
            if self.aging is not None:
                effective -= int((now - enqueued) / self.aging)
            key = (effective, seq)
            if best_key is None or key < best_key:
                best_key, best_priority = key, priority
        _, _, request = self._buckets[best_priority].popleft()
        self._len -= 1
        return request

    def _pop_batch(self, n: int) -> list[Request]:
        return [self._pop_one() for _ in range(n)]

    def _oldest_time(self) -> float | None:
        # Buckets are FIFO, so each head is its class's oldest entrant.
        heads = [bucket[0][1] for bucket in self._buckets.values() if bucket]
        return min(heads) if heads else None

    def entries(self) -> list[tuple[Request, float]]:
        rows = sorted(
            (seq, enqueued, request)
            for bucket in self._buckets.values()
            for seq, enqueued, request in bucket
        )
        return [(request, enqueued) for _, enqueued, request in rows]
