"""Dynamic batching (the paper builds on Orca-style dynamic batching, §7).

Policy: requests accumulate for up to ``max_wait`` (the iteration-scheduling
window of continuous-batching systems) or until the granularity's batch
capacity is reached; a batch dispatches when the entry stage is free.  The
window is what amortises the per-iteration weight-streaming cost across
requests — dispatching singletons eagerly would cap throughput at the
batch-1 iteration rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.simulation.engine import Event, Simulator
from repro.workloads.requests import Request


@dataclass(frozen=True)
class BatcherConfig:
    max_batch: int = 128
    max_wait: float = 0.3  # accumulation window before dispatch

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")


class DynamicBatcher:
    """Accumulates requests and emits batches to a dispatch callback.

    ``can_dispatch`` tells the batcher whether the pipeline entry stage can
    accept a batch right now; ``dispatch`` consumes a list of requests.
    The owner must call :meth:`pump` whenever the entry stage frees up.
    """

    def __init__(
        self,
        sim: Simulator,
        config: BatcherConfig,
        can_dispatch: Callable[[], bool],
        dispatch: Callable[[list[Request]], None],
    ):
        self.sim = sim
        self.config = config
        self.can_dispatch = can_dispatch
        self.dispatch = dispatch
        self.queue: deque[Request] = deque()
        self._enqueued_at: deque[float] = deque()
        self._timer: Event | None = None
        self.batches_formed = 0
        self.requests_batched = 0

    def __len__(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        self.queue.append(request)
        self._enqueued_at.append(self.sim.now)
        if len(self.queue) >= self.config.max_batch and self.can_dispatch():
            self._emit()
        elif self._timer is None:
            self._arm_timer()

    def pump(self) -> None:
        """Called when the entry stage frees up: dispatch ripe batches."""
        if not self.queue or not self.can_dispatch():
            return
        if len(self.queue) >= self.config.max_batch or self._oldest_ripe():
            self._emit()

    def flush(self) -> list[Request]:
        """Drain without dispatching (used when a replica is torn down)."""
        out = list(self.queue)
        self.queue.clear()
        self._enqueued_at.clear()
        self._disarm_timer()
        return out

    # ------------------------------------------------------------------
    def _oldest_ripe(self) -> bool:
        if not self._enqueued_at:
            return False
        return self.sim.now - self._enqueued_at[0] >= self.config.max_wait

    def _emit(self) -> None:
        self._disarm_timer()
        n = min(len(self.queue), self.config.max_batch)
        batch = [self.queue.popleft() for _ in range(n)]
        for _ in range(n):
            self._enqueued_at.popleft()
        self.batches_formed += 1
        self.requests_batched += n
        self.dispatch(batch)
        if self.queue:
            self._arm_timer()

    def _arm_timer(self) -> None:
        self._disarm_timer()
        delay = self.config.max_wait
        if self._enqueued_at:
            # Fire when the oldest queued request's window closes.
            delay = max(
                self.config.max_wait - (self.sim.now - self._enqueued_at[0]), 0.0
            )
        self._timer = self.sim.schedule(delay, self._timeout)

    def _disarm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _timeout(self) -> None:
        self._timer = None
        if not self.queue:
            return
        if self.can_dispatch():
            self._emit()
        else:
            # Entry stage busy: it will pump() on completion; keep a
            # heartbeat so the wait bound survives pathological schedules.
            self._timer = self.sim.schedule(self.config.max_wait, self._timeout)
    @property
    def mean_batch_size(self) -> float:
        if self.batches_formed == 0:
            return 0.0
        return self.requests_batched / self.batches_formed
