"""A pipeline replica: one chain of stages serving one model.

Lifecycle::

    LOADING --(all stages loaded)--> ACTIVE --(drain request)--> DRAINING
        --(in-flight work finishes)--> RELEASED

Inflight refactoring swaps the stage chain *while ACTIVE*: new batches run
on the new chain immediately, jobs already in the pipeline finish on the
old chain (each job carries references to its stages), and old stages
retire when their last job completes — no request is dropped or paused,
which is the paper's central mechanism (§6, Fig. 6).
"""

from __future__ import annotations

import enum
import itertools
import statistics
from typing import Callable

import numpy as np

from repro.cluster.allocator import StageReservation
from repro.models.profiler import ModelProfile
from repro.partitioning.batch_scaling import activation_bytes
from repro.partitioning.plan import PartitionPlan
from repro.pipeline.batching import BatcherConfig, DynamicBatcher, PriorityBatcher
from repro.pipeline.stage import BatchJob, StageRuntime
from repro.simulation.engine import Simulator
from repro.workloads.requests import Request

_job_ids = itertools.count()


class ReplicaState(enum.Enum):
    LOADING = "loading"
    ACTIVE = "active"
    DRAINING = "draining"
    RELEASED = "released"


# Legal state-machine moves.  LOADING -> DRAINING is the cancellation path
# (a replica reclaimed or shut down before its parameters finished
# loading); everything else is the normal lifecycle.
ALLOWED_TRANSITIONS: dict[ReplicaState, tuple[ReplicaState, ...]] = {
    ReplicaState.LOADING: (ReplicaState.ACTIVE, ReplicaState.DRAINING),
    ReplicaState.ACTIVE: (ReplicaState.DRAINING,),
    ReplicaState.DRAINING: (ReplicaState.RELEASED,),
    ReplicaState.RELEASED: (),
}


class PipelineReplica:
    """Executes batches over a chain of :class:`StageRuntime` stages."""

    def __init__(
        self,
        sim: Simulator,
        profile: ModelProfile,
        plan: PartitionPlan,
        reservations: list[StageReservation],
        *,
        batcher_config: BatcherConfig | None = None,
        on_request_complete: Callable[[Request], None],
        on_active: Callable[["PipelineReplica"], None] | None = None,
        on_released: Callable[["PipelineReplica"], None] | None = None,
        interference: Callable | None = None,
        name: str | None = None,
    ):
        if len(reservations) != plan.n_stages:
            raise ValueError(
                f"{plan.n_stages} stages need {plan.n_stages} reservations, "
                f"got {len(reservations)}"
            )
        self.sim = sim
        self.profile = profile
        self._set_plan(plan)
        self.name = name or f"replica-{next(_job_ids)}"
        self.state = ReplicaState.LOADING
        # Lifecycle audit trail: every state change is recorded, and any
        # accounting irregularity lands in ``anomalies`` instead of being
        # silently absorbed (the invariant auditor asserts both).
        self.state_history: list[tuple[float, ReplicaState]] = [
            (sim.now, ReplicaState.LOADING)
        ]
        self.anomalies: list[str] = []
        self.on_request_complete = on_request_complete
        self.on_active = on_active
        self.on_released = on_released
        self.interference = interference
        self.stages = self._build_stages(plan, reservations)
        cfg = batcher_config or BatcherConfig(max_batch=plan.max_batch)
        self.batcher = DynamicBatcher(
            sim, cfg, self._can_dispatch, self._dispatch
        )
        self.created_at = sim.now
        self.activated_at: float | None = None
        # Set by the replica factory while this deploy is LOADING under
        # QoS arbitration (a preemptible allocator claim); None otherwise.
        self.pending_claim = None
        self.inflight_jobs = 0
        self.inflight_requests = 0
        self.accepted_requests = 0
        self.completed_requests = 0
        self._retired_stages: list[StageRuntime] = []
        # Jobs outstanding per stage chain (keyed by chain identity), so a
        # superseded chain's GPUs release only after its last job finishes.
        self._chain_jobs: dict[int, int] = {}
        self._chains: dict[int, list[StageRuntime]] = {}
        self._retired_chain_keys: set[int] = set()
        self.on_stage_retired: Callable[[StageRuntime], None] | None = None
        self.reconfig_count = 0
        self.inplace_swaps = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _set_plan(self, plan: PartitionPlan) -> None:
        """Install a plan and hoist the per-stage constants batch formation
        reads on every job (the profile aggregates never change per plan)."""
        self.plan = plan
        self._stage_consts = [
            (
                s.profile.flops_per_token,
                s.param_bytes,
                128 * s.profile.boundary_act_bytes_per_token,  # Eq. 3 base batch
            )
            for s in plan.stages
        ]
        # Vectorized batch formation reads these per-stage columns on every
        # job; ``_act_vec`` drops the exit stage (no handoff after it).
        consts = np.array(self._stage_consts, dtype=np.float64)
        self._flops_vec = np.ascontiguousarray(consts[:, 0])
        self._param_vec = np.ascontiguousarray(consts[:, 1])
        self._act_vec = np.ascontiguousarray(consts[:-1, 2])

    def _build_stages(
        self, plan: PartitionPlan, reservations: list[StageReservation]
    ) -> list[StageRuntime]:
        return [
            StageRuntime(
                self.sim,
                k,
                stage_plan,
                reservation,
                self._on_stage_done,
                interference=self.interference,
            )
            for k, (stage_plan, reservation) in enumerate(
                zip(plan.stages, reservations)
            )
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _transition(self, new_state: ReplicaState) -> None:
        """Move to ``new_state``, recording the step and flagging illegal
        moves as anomalies (the auditor's state-machine invariant)."""
        if new_state not in ALLOWED_TRANSITIONS[self.state]:
            self.anomalies.append(
                f"illegal transition {self.state.value} -> {new_state.value} "
                f"at t={self.sim.now:.6f}"
            )
        self.state = new_state
        self.state_history.append((self.sim.now, new_state))

    def activate(self) -> None:
        """Mark loading finished; the router may now dispatch to us."""
        if self.state is not ReplicaState.LOADING:
            raise RuntimeError(f"activate() in state {self.state}")
        self._transition(ReplicaState.ACTIVE)
        self.activated_at = self.sim.now
        if self.on_active is not None:
            self.on_active(self)

    def drain(self) -> None:
        """Stop accepting work; release resources when in-flight work ends."""
        if self.state in (ReplicaState.DRAINING, ReplicaState.RELEASED):
            return
        self._transition(ReplicaState.DRAINING)
        self._maybe_release()

    def _maybe_release(self) -> None:
        if (
            self.state is ReplicaState.DRAINING
            and self.inflight_jobs == 0
            and len(self.batcher) == 0
        ):
            self._transition(ReplicaState.RELEASED)
            if self.on_released is not None:
                self.on_released(self)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    @property
    def accepting(self) -> bool:
        return self.state is ReplicaState.ACTIVE

    @property
    def max_batch(self) -> int:
        """The batch size this replica actually serves at.

        Deployment under fragmentation (and degraded refactor transitions)
        may halve the batch below ``plan.max_batch``; routing and capacity
        signals must normalise by this effective value, not the plan's
        optimum, or degraded replicas get systematically over-loaded.
        """
        return self.batcher.config.max_batch

    @property
    def queue_length(self) -> int:
        """Requests waiting or executing here (JSQ routing signal)."""
        return len(self.batcher) + self.inflight_requests

    def submit(self, request: Request) -> None:
        if not self.accepting:
            raise RuntimeError(f"submit() to {self.name} in state {self.state}")
        self.accepted_requests += 1
        self.batcher.enqueue(request)

    def use_priority_batcher(
        self,
        priority_of: Callable[[Request], int],
        *,
        aging: float | None = None,
    ) -> None:
        """Swap the FIFO batcher for class-priority batch formation (QoS).

        Queued requests migrate with their original enqueue times, so the
        ``max_wait`` window and every conservation counter the auditor
        reads (queue length, batches formed) are unchanged; only the order
        future batches pull requests in differs.  Safe mid-run, idempotent
        per replica.
        """
        old = self.batcher
        if isinstance(old, PriorityBatcher):
            return
        new = PriorityBatcher(
            self.sim,
            old.config,
            self._can_dispatch,
            self._dispatch,
            priority_of=priority_of,
            aging=aging,
        )
        for request, enqueued_at in old.entries():
            new._append(request, enqueued_at)
        old._disarm_timer()
        new.batches_formed = old.batches_formed
        new.requests_batched = old.requests_batched
        self.batcher = new
        if len(new):
            new._arm_timer()

    def _can_dispatch(self) -> bool:
        return self.stages[0].idle

    def _dispatch(self, requests: list[Request]) -> None:
        now = self.sim.now
        for request in requests:
            request.batch_time = now
        job = self._make_job(requests)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.attach_job(job, self.name, now)
        self.inflight_jobs += 1
        self.inflight_requests += len(requests)
        job.stages = self.stages  # jobs finish on the chain they started on
        chain_key = id(self.stages)
        self._chains[chain_key] = self.stages
        self._chain_jobs[chain_key] = self._chain_jobs.get(chain_key, 0) + 1
        self.stages[0].enqueue(job)

    def _make_job(self, requests: list[Request]) -> BatchJob:
        """Vectorized batch formation (the dispatch hot path).

        All per-stage cost terms are computed as numpy column operations
        over the constants hoisted in :meth:`_set_plan`.  Every expression
        mirrors the scalar cost model's operation order elementwise, so
        the produced times are bit-identical to :meth:`_make_job_scalar`
        (asserted by the test suite); single-stage plans skip the array
        overhead entirely.
        """
        if len(self._stage_consts) == 1:
            return self._make_job_scalar(requests)
        cfg = self.profile.cost_model.config
        batch = len(requests)
        mean_prompt = statistics.fmean(r.prompt_tokens for r in requests)
        mean_out = statistics.fmean(r.output_tokens for r in requests)
        # prefill_time(flops, batch*prompt) per stage.
        stage_prefill = (
            cfg.prefill_overhead
            + (batch * mean_prompt) * self._flops_vec / cfg.peak_flops
        )
        # decode_iter_time(params, batch): weight stream + batched compute.
        decode_iter = (
            cfg.compute_fixed + self._param_vec * cfg.compute_per_byte
        ) + batch * self._param_vec / cfg.peak_flops
        stage_busy = stage_prefill + mean_out * decode_iter
        # hop_time over the batch-scaled boundary activations; the scale
        # factor depends only on the batch, so it is computed once through
        # the scalar model (identical rounding) and applied per column.
        factor = activation_bytes(1.0, batch)
        acts = self._act_vec
        handoff = (
            cfg.hop_overhead
            + (acts * mean_prompt) * factor / cfg.network_bandwidth
        ) + mean_out * (
            cfg.hop_overhead + acts * factor / cfg.network_bandwidth
        )
        return BatchJob(
            jid=next(_job_ids),
            requests=requests,
            stage_busy=stage_busy.tolist(),
            stage_prefill=stage_prefill.tolist(),
            handoff=handoff.tolist(),
            created_at=self.sim.now,
        )

    def _make_job_scalar(self, requests: list[Request]) -> BatchJob:
        """Reference scalar batch formation (single-stage plans; also the
        bit-identity oracle for the vectorized path)."""
        cm = self.profile.cost_model
        batch = len(requests)
        mean_prompt = statistics.fmean(r.prompt_tokens for r in requests)
        mean_out = statistics.fmean(r.output_tokens for r in requests)
        stage_busy, stage_prefill, handoff = [], [], []
        consts = self._stage_consts
        last = len(consts) - 1
        for k, (flops_per_token, param_bytes, act_base) in enumerate(consts):
            prefill = cm.prefill_time(flops_per_token, batch * mean_prompt)
            decode = mean_out * cm.decode_iter_time(param_bytes, batch)
            stage_prefill.append(prefill)
            stage_busy.append(prefill + decode)
            if k < last:
                act_prefill = activation_bytes(act_base * mean_prompt, batch)
                act_decode = activation_bytes(act_base, batch)
                handoff.append(
                    cm.hop_time(act_prefill) + mean_out * cm.hop_time(act_decode)
                )
        return BatchJob(
            jid=next(_job_ids),
            requests=requests,
            stage_busy=stage_busy,
            stage_prefill=stage_prefill,
            handoff=handoff,
            created_at=self.sim.now,
        )

    # ------------------------------------------------------------------
    # Stage completion plumbing
    # ------------------------------------------------------------------
    def _on_stage_done(self, job: BatchJob, stage_index: int) -> None:
        stages: list[StageRuntime] = job.stages
        if stage_index == 0 and stages is self.stages:
            # Entry stage freed: more queued requests may dispatch.
            self.batcher.pump()
        if stage_index + 1 < len(stages):
            delay = job.handoff[stage_index]
            job.comm_time += delay
            self.sim.schedule(delay, stages[stage_index + 1].enqueue, job)
            return
        self._complete_job(job, stages)

    def _complete_job(self, job: BatchJob, stages: list[StageRuntime]) -> None:
        now = self.sim.now
        last = len(stages) - 1
        prefill_done = job.stage_started[last] + job.stage_prefill[last]
        tracer = self.sim.tracer
        for request in job.requests:
            request.exec_start = job.exec_start
            request.prefill_done = prefill_done
            request.completion_time = now
            request.exec_time = job.exec_time
            request.comm_time = job.comm_time
            latency = now - request.arrival_time
            request.queue_time = max(latency - job.exec_time - job.comm_time, 0.0)
            if tracer is not None:
                tracer.complete(request)
            self.on_request_complete(request)
        self.inflight_jobs -= 1
        self.inflight_requests -= len(job.requests)
        self.completed_requests += len(job.requests)
        chain_key = id(stages)
        tracked = self._chain_jobs.get(chain_key)
        if tracked is None or tracked <= 0:
            # A completing job must be counted against its chain; a missing
            # or zero entry means the chain retired (or was never recorded)
            # while work was still in flight.  Record the one anomaly and
            # stop — decrementing would go negative, and attempting to
            # retire an unknown chain would just log the same defect twice.
            self.anomalies.append(
                f"job {job.jid} completed on untracked chain "
                f"(count={tracked!r}) at t={now:.6f}"
            )
            if tracked is not None:
                self._chain_jobs[chain_key] = 0
        else:
            remaining = tracked - 1
            self._chain_jobs[chain_key] = remaining
            if remaining == 0 and stages[0].retired:
                self._retire_chain(chain_key)
        self._maybe_release()

    # ------------------------------------------------------------------
    # Inflight reconfiguration (used by the refactoring executor)
    # ------------------------------------------------------------------
    def swap_stages(
        self,
        new_plan: PartitionPlan,
        new_reservations: list[StageReservation],
        *,
        batch_cap: int | None = None,
    ) -> list[StageRuntime]:
        """Atomically switch new batches onto a new stage chain.

        Returns the *old* stages, now marked retired; each fires
        ``on_stage_retired`` once its last in-flight job completes (the
        executor then releases or trims its reservation).
        """
        if self.state in (ReplicaState.DRAINING, ReplicaState.RELEASED):
            # A dying replica must not acquire a fresh chain: the new
            # reservations would sit on a replica that stops serving.  The
            # refactoring executor releases the prepared reservations
            # instead of swapping (the refactor-vs-drain race).
            raise RuntimeError(f"swap_stages on a {self.state.value} replica")
        old_stages = self.stages
        for stage in old_stages:
            stage.retired = True
        self._set_plan(new_plan)
        self.stages = self._build_stages(new_plan, new_reservations)
        max_batch = min(new_plan.max_batch, batch_cap or new_plan.max_batch)
        self.batcher.config = BatcherConfig(
            max_batch=max(max_batch, 1), max_wait=self.batcher.config.max_wait
        )
        self.reconfig_count += 1
        # A chain with no in-flight work retires immediately.
        old_key = id(old_stages)
        if self._chain_jobs.get(old_key, 0) == 0:
            self._chains.setdefault(old_key, old_stages)
            self._retire_chain(old_key)
        self.batcher.pump()
        return old_stages

    def swap_stages_inplace(
        self,
        new_plan: PartitionPlan,
        new_reservations: list[StageReservation],
        *,
        batch_cap: int | None = None,
    ) -> list[StageRuntime]:
        """Live in-place reconfiguration entry point.

        Like :meth:`swap_stages`, but the new chain may *share*
        ``StageReservation`` objects with the retiring chain (the
        refactoring executor grows them for the co-residency window and
        trims them back when the old stage retires), and the replica must
        be strictly ACTIVE — an in-place transition mutates the serving
        chain, so it never touches a loading or dying replica (the
        no-service-gap contract the auditor checks against the executor's
        recorded in-place spans).  Queued requests, enqueue times, and
        every batching counter carry across untouched.
        """
        if self.state is not ReplicaState.ACTIVE:
            raise RuntimeError(
                f"swap_stages_inplace on a {self.state.value} replica"
            )
        self.inplace_swaps += 1
        return self.swap_stages(new_plan, new_reservations, batch_cap=batch_cap)

    def _retire_chain(self, chain_key: int) -> None:
        stages = self._chains.pop(chain_key, None)
        self._chain_jobs.pop(chain_key, None)
        if stages is None:
            if chain_key in self._retired_chain_keys:
                self.anomalies.append(
                    f"chain {chain_key} retired twice at t={self.sim.now:.6f}"
                )
            return
        self._retired_chain_keys.add(chain_key)
        for stage in stages:
            if stage in self._retired_stages:
                continue
            self._retired_stages.append(stage)
            if self.on_stage_retired is not None:
                self.on_stage_retired(stage)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        return self.plan.n_stages

    def live_reservations(self) -> list[StageReservation]:
        """Every unreleased reservation this replica still holds: the
        current chain plus superseded chains whose in-flight jobs have
        not drained yet (reclamation and audits scan through this)."""
        out: list[StageReservation] = []
        seen: set[int] = set()
        chains = (self.stages, *self._chains.values(), self._retired_stages)
        for stage in (s for chain in chains for s in chain):
            reservation = stage.reservation
            if id(reservation) in seen or reservation.released:
                continue
            seen.add(id(reservation))
            out.append(reservation)
        return out

    def kv_bytes_in_flight(self) -> float:
        """Approximate KV resident for requests currently in the pipeline."""
        return self.inflight_requests * self.profile.spec.kv_bytes_per_request

    @property
    def init_latency(self) -> float | None:
        if self.activated_at is None:
            return None
        return self.activated_at - self.created_at
