"""Paged KV-cache block manager.

The paper's refactoring protocol (Eq. 10) reasons about KV state at token
granularity; production engines (vLLM [21], which the related-work section
positions FlexPipe against) store KV in fixed-size *blocks* so stage memory
can be packed without fragmentation.  This module provides the block
manager the stage runtimes use to account for KV residency:

* :class:`BlockPool` — fixed pool of reference-counted blocks (refcounts
  support copy-on-write prefix sharing across forked sequences);
* :class:`PagedKVCache` — per-request block tables with append/free/fork,
  admission watermarks, and LRU victim selection for preemption;
* migration helpers that translate a token range into the blocks (and
  bytes) a refactoring transfer must move, which is exactly the quantity
  the Eq. 10 delta sync charges to the interconnect.

Everything is bookkeeping over simulated bytes — no real tensors — but the
invariants (no block leaks, refcounts never negative, block tables cover
exactly the resident tokens) are enforced and property-tested.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass

from repro.pipeline.kvcache import ValidityMask


class PagedKVError(RuntimeError):
    """Invalid use of the paged KV manager."""


class CapacityError(PagedKVError):
    """The block pool cannot satisfy an allocation."""


@dataclass(frozen=True)
class PagedKVConfig:
    """Sizing of one stage shard's KV pool.

    ``block_tokens`` follows vLLM's default of 16 tokens per block;
    ``bytes_per_token`` is the per-stage KV footprint of one token (set from
    the model profile's per-stage KV bytes).
    """

    n_blocks: int
    block_tokens: int = 16
    bytes_per_token: float = 1.0
    watermark: float = 0.05  # fraction of blocks kept free for decode growth

    def __post_init__(self) -> None:
        if self.n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {self.n_blocks}")
        if self.block_tokens <= 0:
            raise ValueError(f"block_tokens must be positive, got {self.block_tokens}")
        if self.bytes_per_token <= 0:
            raise ValueError("bytes_per_token must be positive")
        if not 0.0 <= self.watermark < 1.0:
            raise ValueError(f"watermark must be in [0, 1), got {self.watermark}")

    @property
    def block_bytes(self) -> float:
        return self.block_tokens * self.bytes_per_token

    @property
    def capacity_tokens(self) -> int:
        return self.n_blocks * self.block_tokens


class BlockPool:
    """Fixed pool of reference-counted KV blocks.

    Blocks are plain integer ids.  A refcount above one means the block is
    shared between forked sequences (copy-on-write prefix sharing); it
    returns to the free list when the count reaches zero.
    """

    def __init__(self, n_blocks: int):
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        self.n_blocks = n_blocks
        self._free: collections.deque[int] = collections.deque(range(n_blocks))
        self._refcount: dict[int, int] = {}

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.n_blocks - self.free_blocks

    def allocate(self) -> int:
        """Take one block from the free list."""
        if not self._free:
            raise CapacityError("block pool exhausted")
        block = self._free.popleft()
        self._refcount[block] = 1
        return block

    def share(self, block: int) -> None:
        """Add a reference (copy-on-write fork of a full block)."""
        if block not in self._refcount:
            raise PagedKVError(f"share() of unallocated block {block}")
        self._refcount[block] += 1

    def release(self, block: int) -> None:
        """Drop one reference; the block frees when none remain."""
        count = self._refcount.get(block)
        if count is None:
            raise PagedKVError(f"release() of unallocated block {block}")
        if count == 1:
            del self._refcount[block]
            self._free.append(block)
        else:
            self._refcount[block] = count - 1

    def refcount(self, block: int) -> int:
        return self._refcount.get(block, 0)

    def check_leaks(self) -> None:
        """Assert the free list + refcounted blocks cover the pool exactly."""
        if len(self._free) + len(self._refcount) != self.n_blocks:
            raise PagedKVError(
                f"block leak: {len(self._free)} free + "
                f"{len(self._refcount)} referenced != {self.n_blocks}"
            )


@dataclass
class SequenceAllocation:
    """One request's block table on one stage shard."""

    request_id: int
    block_table: list[int]
    tokens: int = 0
    last_access: float = 0.0

    def blocks_needed(self, block_tokens: int) -> int:
        return -(-self.tokens // block_tokens) if self.tokens else 0


class PagedKVCache:
    """Block-granular KV accounting for one stage shard.

    The serving runtime calls :meth:`register` on admission,
    :meth:`append` per generated token batch, and :meth:`free` on
    completion.  The refactoring executor uses :meth:`migration_bytes` to
    size Eq. 10 transfers and :meth:`fork` when a split stage inherits a
    prefix.
    """

    def __init__(self, config: PagedKVConfig):
        self.config = config
        self.pool = BlockPool(config.n_blocks)
        self._sequences: dict[int, SequenceAllocation] = {}
        self.appended_tokens_total = 0
        self.preemptions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, request_id: int) -> bool:
        return request_id in self._sequences

    def __len__(self) -> int:
        return len(self._sequences)

    @property
    def utilization(self) -> float:
        """Fraction of pool blocks in use."""
        return self.pool.used_blocks / self.config.n_blocks

    @property
    def resident_tokens(self) -> int:
        return sum(seq.tokens for seq in self._sequences.values())

    @property
    def resident_bytes(self) -> float:
        return self.pool.used_blocks * self.config.block_bytes

    def sequence(self, request_id: int) -> SequenceAllocation:
        try:
            return self._sequences[request_id]
        except KeyError:
            raise PagedKVError(f"unknown request {request_id}") from None

    def validity(self, request_id: int) -> ValidityMask:
        """Eq. 10 mask for this shard: the contiguous resident prefix."""
        return ValidityMask.upto(self.sequence(request_id).tokens)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def blocks_for_tokens(self, tokens: int) -> int:
        if tokens < 0:
            raise ValueError(f"negative token count: {tokens}")
        return -(-tokens // self.config.block_tokens)

    def can_admit(self, tokens: int) -> bool:
        """Would allocating ``tokens`` keep the watermark of free blocks?

        The watermark reserves headroom so already-running sequences can
        keep appending decode tokens without immediate preemption.
        """
        reserve = int(self.config.n_blocks * self.config.watermark)
        return self.blocks_for_tokens(tokens) <= self.pool.free_blocks - reserve

    def register(self, request_id: int, prompt_tokens: int = 0, *, now: float = 0.0) -> None:
        """Admit a request, allocating blocks for its prompt KV."""
        if request_id in self._sequences:
            raise PagedKVError(f"request {request_id} already registered")
        seq = SequenceAllocation(request_id, [], 0, now)
        self._sequences[request_id] = seq
        if prompt_tokens:
            try:
                self._grow(seq, prompt_tokens)
            except CapacityError:
                del self._sequences[request_id]
                raise

    def append(self, request_id: int, tokens: int = 1, *, now: float = 0.0) -> None:
        """Account for newly generated decode tokens."""
        seq = self.sequence(request_id)
        self._grow(seq, tokens)
        seq.last_access = now
        self.appended_tokens_total += tokens

    def _grow(self, seq: SequenceAllocation, tokens: int) -> None:
        if tokens < 0:
            raise ValueError(f"negative token count: {tokens}")
        bt = self.config.block_tokens
        target_blocks = self.blocks_for_tokens(seq.tokens + tokens)
        new_blocks = target_blocks - len(seq.block_table)
        if new_blocks > self.pool.free_blocks:
            raise CapacityError(
                f"request {seq.request_id} needs {new_blocks} blocks, "
                f"{self.pool.free_blocks} free"
            )
        # Copy-on-write: appending into a shared tail block requires a
        # private copy first.
        if seq.block_table and tokens > 0:
            tail = seq.block_table[-1]
            if self.pool.refcount(tail) > 1 and seq.tokens % bt != 0:
                fresh = self.pool.allocate()
                self.pool.release(tail)
                seq.block_table[-1] = fresh
        for _ in range(new_blocks):
            seq.block_table.append(self.pool.allocate())
        seq.tokens += tokens

    def free(self, request_id: int) -> int:
        """Release a finished request's blocks; returns blocks freed."""
        seq = self.sequence(request_id)
        for block in seq.block_table:
            self.pool.release(block)
        del self._sequences[request_id]
        return len(seq.block_table)

    # ------------------------------------------------------------------
    # Prefix sharing / preemption
    # ------------------------------------------------------------------
    def fork(self, parent_id: int, child_id: int) -> None:
        """Copy-on-write fork: the child shares the parent's full blocks.

        The parent's partial tail block (if any) is *copied* so the two
        sequences can diverge; full blocks are shared by refcount.
        """
        parent = self.sequence(parent_id)
        if child_id in self._sequences:
            raise PagedKVError(f"request {child_id} already registered")
        bt = self.config.block_tokens
        full = parent.tokens // bt
        has_partial = parent.tokens % bt != 0
        if has_partial and self.pool.free_blocks < 1:
            raise CapacityError("no free block to copy the partial tail")
        table = []
        for block in parent.block_table[:full]:
            self.pool.share(block)
            table.append(block)
        if has_partial:
            table.append(self.pool.allocate())
        self._sequences[child_id] = SequenceAllocation(
            child_id, table, parent.tokens, parent.last_access
        )

    def choose_victims(self, blocks_needed: int) -> list[int]:
        """LRU victim selection: requests to preempt to free the blocks.

        Returns request ids in eviction order; does not evict.  Raises
        :class:`CapacityError` if even evicting everything falls short.
        """
        if blocks_needed <= self.pool.free_blocks:
            return []
        deficit = blocks_needed - self.pool.free_blocks
        victims = []
        freed = 0
        for seq in sorted(self._sequences.values(), key=lambda s: s.last_access):
            victims.append(seq.request_id)
            # Shared blocks only free if this holds the last reference;
            # count conservatively (private blocks only).
            freed += sum(
                1 for b in seq.block_table if self.pool.refcount(b) == 1
            )
            if freed >= deficit:
                return victims
        raise CapacityError(
            f"need {blocks_needed} blocks but evicting all "
            f"{len(self._sequences)} sequences frees only {freed}"
        )

    def preempt(self, request_id: int) -> int:
        """Evict one sequence (its KV must be recomputed or re-fetched)."""
        freed = self.free(request_id)
        self.preemptions += 1
        return freed

    # ------------------------------------------------------------------
    # Migration (Eq. 10 integration)
    # ------------------------------------------------------------------
    def migration_bytes(self, request_id: int, already_valid: ValidityMask | None = None) -> float:
        """Bytes a refactoring transfer must move for this request.

        ``already_valid`` is the target shard's validity mask (from an
        earlier snapshot); only the delta is charged, mirroring
        :func:`repro.pipeline.kvcache.delta_sync`.
        """
        seq = self.sequence(request_id)
        if already_valid is None:
            missing = seq.tokens
        else:
            missing = already_valid.invalid_before(seq.tokens).count
        return missing * self.config.bytes_per_token

    def blocks_for_range(self, request_id: int, start: int, end: int) -> list[int]:
        """Block ids holding token positions [start, end) of a request."""
        seq = self.sequence(request_id)
        if not 0 <= start <= end <= seq.tokens:
            raise ValueError(
                f"range [{start}, {end}) outside resident tokens "
                f"[0, {seq.tokens})"
            )
        if start == end:
            return []
        bt = self.config.block_tokens
        first = start // bt
        last = (end - 1) // bt
        return seq.block_table[first : last + 1]

    def check_invariants(self) -> None:
        """Cross-check block tables against the pool (used by tests)."""
        self.pool.check_leaks()
        for seq in self._sequences.values():
            expected = self.blocks_for_tokens(seq.tokens)
            if len(seq.block_table) != expected:
                raise PagedKVError(
                    f"request {seq.request_id}: {len(seq.block_table)} blocks "
                    f"for {seq.tokens} tokens (expected {expected})"
                )
            for block in seq.block_table:
                if self.pool.refcount(block) < 1:
                    raise PagedKVError(
                        f"request {seq.request_id} references freed block {block}"
                    )
