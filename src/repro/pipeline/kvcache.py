"""KV-cache consistency tracking (Eq. 10).

The paper preserves cache coherence during refactoring through *selective
synchronisation*: each GPU's KV shard carries a token-level validity mask,
and the consistent state is ``C(t) = U_i KV_i(t) (x) M_valid``.  We model a
request's per-stage KV as a contiguous token range ``[0, generated)`` plus
a ``synchronized`` watermark on migration targets; the validity mask is the
set of token positions that are present *and* current.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ValidityMask:
    """A set of valid token positions, stored as a half-open range union.

    LLM decode appends tokens monotonically, so masks are unions of at most
    a handful of ranges; we keep the general form for the Eq. 10 algebra.
    """

    ranges: tuple[tuple[int, int], ...] = ()

    @staticmethod
    def upto(n: int) -> "ValidityMask":
        if n < 0:
            raise ValueError(f"negative token count: {n}")
        return ValidityMask(((0, n),) if n > 0 else ())

    def __post_init__(self) -> None:
        prev_end = -1
        for start, end in self.ranges:
            if start >= end:
                raise ValueError(f"empty/invalid range ({start}, {end})")
            if start <= prev_end:
                raise ValueError("ranges must be sorted and non-overlapping")
            prev_end = end

    @property
    def count(self) -> int:
        return sum(end - start for start, end in self.ranges)

    def contains(self, token: int) -> bool:
        return any(start <= token < end for start, end in self.ranges)

    def union(self, other: "ValidityMask") -> "ValidityMask":
        """Set-union of valid positions (the ⋃ of Eq. 10)."""
        merged: list[list[int]] = []
        for start, end in sorted(self.ranges + other.ranges):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        return ValidityMask(tuple((a, b) for a, b in merged))

    def intersect(self, other: "ValidityMask") -> "ValidityMask":
        """Element-wise mask application (the ⊗ of Eq. 10)."""
        out = []
        for a0, a1 in self.ranges:
            for b0, b1 in other.ranges:
                lo, hi = max(a0, b0), min(a1, b1)
                if lo < hi:
                    out.append((lo, hi))
        return ValidityMask(tuple(sorted(out)))

    def invalid_before(self, n: int) -> "ValidityMask":
        """Positions in [0, n) NOT covered by this mask (need syncing)."""
        gaps = []
        cursor = 0
        for start, end in self.ranges:
            if cursor < min(start, n):
                gaps.append((cursor, min(start, n)))
            cursor = max(cursor, end)
            if cursor >= n:
                break
        if cursor < n:
            gaps.append((cursor, n))
        return ValidityMask(tuple(gaps))


@dataclass
class KVCacheState:
    """Per-(request, stage-shard) KV bookkeeping on one GPU.

    ``generated`` is the authoritative token count on the serving shard;
    ``mask`` tracks which positions a (possibly migrating) shard holds.
    """

    request_id: int
    bytes_per_token: float
    generated: int = 0
    mask: ValidityMask = field(default_factory=ValidityMask)

    def append_tokens(self, n: int) -> None:
        """Decode produced ``n`` more tokens on the serving shard."""
        if n < 0:
            raise ValueError(f"negative token count: {n}")
        self.generated += n
        self.mask = self.mask.union(
            ValidityMask(((self.generated - n, self.generated),))
            if n > 0
            else ValidityMask()
        )

    @property
    def bytes_valid(self) -> float:
        return self.mask.count * self.bytes_per_token

    @property
    def bytes_total(self) -> float:
        return self.generated * self.bytes_per_token

    def stale_tokens(self) -> ValidityMask:
        """Positions generated but absent from this shard (delta to sync)."""
        return self.mask.invalid_before(self.generated)

    def is_consistent(self) -> bool:
        """Eq. 10 invariant: mask covers exactly [0, generated)."""
        return self.stale_tokens().count == 0 and self.mask.count == self.generated


def snapshot_transfer(source: KVCacheState) -> KVCacheState:
    """Begin an asynchronous migration: copy the current valid prefix.

    Tokens generated after the snapshot are *stale* on the target until a
    delta sync (the brief pause at switchover) completes.
    """
    target = KVCacheState(
        request_id=source.request_id,
        bytes_per_token=source.bytes_per_token,
        generated=source.generated,
        mask=ValidityMask.upto(source.generated),
    )
    return target


def delta_sync(source: KVCacheState, target: KVCacheState) -> float:
    """Complete a migration: copy tokens the target is missing.

    Returns the number of bytes moved; afterwards the target satisfies the
    Eq. 10 consistency invariant against the source's generated count.
    """
    if target.request_id != source.request_id:
        raise ValueError("delta_sync across different requests")
    target.generated = source.generated
    missing = target.stale_tokens()
    target.mask = target.mask.union(missing)
    return missing.count * target.bytes_per_token
