"""Pipeline execution runtime.

FlexPipe and all baseline systems serve through this runtime: dynamic
batching, stage-by-stage execution on simulated GPUs, inter-stage
communication, KV-cache accounting with token-level validity masks, and a
per-model router.  Response time decomposes into the queue / execution /
communication components of Fig. 8.
"""

from repro.pipeline.kvcache import KVCacheState, ValidityMask
from repro.pipeline.batching import BatcherConfig, DynamicBatcher
from repro.pipeline.paged_kv import (
    BlockPool,
    CapacityError,
    PagedKVCache,
    PagedKVConfig,
)
from repro.pipeline.stage import StageRuntime
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.pipeline.router import ModelRouter

__all__ = [
    "KVCacheState",
    "ValidityMask",
    "BlockPool",
    "CapacityError",
    "PagedKVCache",
    "PagedKVConfig",
    "BatcherConfig",
    "DynamicBatcher",
    "StageRuntime",
    "PipelineReplica",
    "ReplicaState",
    "ModelRouter",
]
