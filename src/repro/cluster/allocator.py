"""GPU allocation with the paper's placement constraints.

Hard rules implemented (§6.2):

* stages of the *same model* are never placed on the same GPU (except
  transiently during an inflight refactoring transition, where the old and
  new incarnation of a stage co-reside until switchover — callers opt in
  via ``allow_same_model``);
* serving reservations never over-commit GPU memory.

Soft preferences (the Eq. 6 objective and the Eq. 13 affinity policy) are
injected as a scoring callable so refactoring/scaling policies stay in
their own modules.

QoS resource arbitration (opt-in via :meth:`GPUAllocator.enable_arbitration`)
adds two class-aware rules on top, both inert until enabled:

* **strict-priority contention with preempt-or-wait** — an allocation that
  finds no feasible fragment may cancel *pending deploys* (replicas still
  loading, registered via :meth:`register_pending_deploy`) of strictly
  lower-priority tenants to free their reservations, retrying after each
  preemption; ACTIVE replicas are never touched, so no in-flight request
  is ever sacrificed to a deploy race;
* **per-tenant share caps** — a tenant may hold at most its configured
  fraction of total fleet GPU memory, enforced on every reservation and
  resize, so no tenant (any class) can monopolise a scarce cluster.

Elastic share contracts (opt-in via
:meth:`GPUAllocator.enable_elastic_shares`, on top of arbitration) turn
the static caps into borrowable contracts: a capped tenant may exceed its
cap into another capped tenant's *idle* headroom, tracked byte-for-byte
in a borrow ledger.  The ledger is **derived** from the tenant books —
after every booking it is reconciled so each borrower's ledger sum equals
its overage above cap — which makes "every borrowed byte is returned by
quiesce" hold by construction.  When a lender wants its headroom back
(its own demand grows, or a placement for it fails while bytes are lent
out) the allocator issues a :class:`ReclaimDemand` and asks borrowers —
largest debt first — to shed their excess; the auditor holds open
demands to a bounded reclamation latency.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import GPU


class AllocationError(RuntimeError):
    """Raised when an allocation request cannot be satisfied."""


# Smallest batch memory-aware degradation will fall back to before giving
# up: deployment and inflight refactoring share this policy, so a degraded
# replica's effective batch never depends on which path created its chain.
DEGRADE_FLOOR = 8

# Share-cap comparisons happen at the 10^12-byte scale, where running
# +=/-= totals accumulate float error well past any fixed absolute
# epsilon; comparisons therefore use an epsilon relative to the quantity
# compared (floored at 1e-3 bytes for small scales).
_SHARE_EPS = 1e-3


def _share_eps(scale: float) -> float:
    return max(_SHARE_EPS, 1e-9 * abs(scale))


def degrade_until_fit(batch, attempt, *, floor: int = DEGRADE_FLOOR):
    """Run ``attempt(batch)``, halving the batch on :class:`AllocationError`
    until it fits; at the floor the error propagates.  Returns
    ``(batch, result)`` with the batch that actually fit."""
    while True:
        try:
            return batch, attempt(batch)
        except AllocationError:
            if batch <= floor:
                raise
            batch //= 2


@dataclass
class StageReservation:
    """One stage's memory reservation on one GPU."""

    res_id: str
    model: str
    gpu: GPU
    nbytes: float
    released: bool = False


@dataclass
class PendingClaim:
    """A not-yet-serving deploy's reservation set.

    Registered by the replica factory while the deploy is still loading;
    until it resolves (activation or teardown) the claim is *preemptible*:
    a strictly more urgent class finding no feasible fragment may cancel
    it through ``cancel`` (which drains the LOADING replica, releasing the
    reservations through the normal teardown path — exactly once).
    """

    claim_id: int
    model: str
    priority: int
    reservations: list[StageReservation]
    cancel: Callable[[], None]
    state: str = "pending"  # "pending" | "active" | "released" | "preempted"
    # "deploy" for loading replicas; "prepared-chain" for an inflight
    # refactoring's prepared (not-yet-switched) target chain, whose cancel
    # rolls the executor back to the still-serving old chain.
    kind: str = "deploy"


@dataclass(frozen=True)
class PreemptionRecord:
    """One preempt-or-wait decision, kept for the auditor.

    The auditor asserts every preempted deploy's reservations were in fact
    released (exactly once — a double release raises at the GPU books) and
    that the victim never went on to serve.
    """

    victim_model: str
    victim_priority: int
    claimant_model: str
    claimant_priority: int
    claim: PendingClaim
    reservations: tuple[StageReservation, ...] = field(default_factory=tuple)


@dataclass
class ReclaimDemand:
    """A lender's standing request for its lent-out headroom back.

    Open (``resolved_at is None``) until the lender's lent-out total drops
    to ``target_lent``; the auditor flags demands that stay open past the
    allocator's ``reclaim_bound`` — the bounded-reclamation-latency half
    of the elastic contract.
    """

    lender: str
    nbytes: float
    issued_at: float
    target_lent: float
    resolved_at: float | None = None


class GPUAllocator:
    """Cluster-wide allocator used by FlexPipe and all baselines."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._counter = itertools.count()
        self.live: dict[str, StageReservation] = {}
        self.failed_requests = 0
        self.granted_requests = 0
        # --- QoS arbitration state (inert until enable_arbitration) ---
        # model -> strict-priority rank (0 = most urgent); None = off.
        self.qos_priority_of: Callable[[str], int] | None = None
        # model -> max fraction of fleet memory it may hold.
        self.share_caps: dict[str, float] = {}
        # Live and high-water reserved bytes per tenant (every tenant,
        # capped or not — the share rows of the QoS report read these).
        self.tenant_reserved: dict[str, float] = {}
        self.tenant_peak: dict[str, float] = {}
        self._claim_counter = itertools.count()
        self._pending_claims: dict[int, PendingClaim] = {}
        self.preemptions: list[PreemptionRecord] = []
        self.preempted_deploys = 0
        self._fleet_memory: float | None = None
        # --- elastic share contracts (inert until enable_elastic_shares) ---
        self.elastic_shares = False
        self.reclaim_bound = 60.0
        self._clock: Callable[[], float] = lambda: 0.0
        self._reclaim_hook: Callable[[str, float], None] | None = None
        # borrower -> lender -> bytes currently borrowed.
        self._borrows: dict[str, dict[str, float]] = {}
        self.borrow_events: dict[str, int] = {}
        self.bytes_borrowed: dict[str, float] = {}
        self.bytes_returned: dict[str, float] = {}
        self.reclaim_demands: list[ReclaimDemand] = []
        # Peak bytes a tenant held above cap *beyond* what the ledger
        # covers — must stay within epsilon (the elastic cap invariant).
        self.tenant_overage_peak: dict[str, float] = {}
        # Observability: a FlightRecorder installed by a traced run (the
        # allocator has no simulator handle; ``_clock`` stamps events).
        self.recorder = None

    # ------------------------------------------------------------------
    # QoS arbitration configuration
    # ------------------------------------------------------------------
    def enable_arbitration(
        self,
        priority_of: Callable[[str], int],
        *,
        share_caps: dict[str, float] | None = None,
    ) -> None:
        """Turn on class-aware resource arbitration.

        ``priority_of`` maps a model (tenant) to its strict-priority rank;
        ``share_caps`` maps tenants to the max fraction of fleet GPU
        memory they may reserve.  Until this runs, every arbitration hook
        is inert and allocation behaviour is byte-identical to the
        historical allocator.
        """
        for model, cap in (share_caps or {}).items():
            if not 0.0 < cap <= 1.0:
                raise ValueError(
                    f"share cap for {model!r} must be in (0, 1], got {cap}"
                )
        self.qos_priority_of = priority_of
        self.share_caps = dict(share_caps or {})

    def enable_elastic_shares(
        self,
        *,
        clock: Callable[[], float],
        reclaim: Callable[[str, float], None] | None = None,
        reclaim_bound: float = 60.0,
    ) -> None:
        """Turn static share caps into borrowable elastic contracts.

        ``clock`` stamps reclaim demands (simulation time); ``reclaim`` is
        called as ``reclaim(borrower, nbytes)`` when a lender demands its
        headroom back — the serving layer drains the borrower's excess
        replicas; ``reclaim_bound`` is the reclamation-latency bound the
        auditor enforces on open demands.  Until this runs every elastic
        hook is inert and cap enforcement is byte-identical to the static
        behaviour.
        """
        self.elastic_shares = True
        self._clock = clock
        self._reclaim_hook = reclaim
        self.reclaim_bound = float(reclaim_bound)
        # Caps may be installed after the fleet settled: reconcile the
        # ledger for any tenant already holding bytes above its cap.
        for model in list(self.share_caps):
            self._elastic_book(model)

    @property
    def arbitration_enabled(self) -> bool:
        return self.qos_priority_of is not None

    def fleet_memory(self) -> float:
        """Total static GPU memory of the cluster (stable denominator)."""
        if self._fleet_memory is None:
            self._fleet_memory = sum(g.spec.memory for g in self.cluster.gpus)
        return self._fleet_memory

    def tenant_share(self, model: str) -> float:
        """Live fraction of fleet memory this tenant holds."""
        return self.tenant_reserved.get(model, 0.0) / self.fleet_memory()

    def tenant_peak_share(self, model: str) -> float:
        """High-water fraction of fleet memory this tenant ever held."""
        return self.tenant_peak.get(model, 0.0) / self.fleet_memory()

    def share_headroom(self, model: str) -> float:
        """Bytes this tenant may still reserve under its cap (inf = uncapped).

        With elastic contracts on, headroom includes the idle lendable
        headroom of every *other* capped tenant — this one call is what
        makes the autoscaler and ``_share_allows_refactor`` contract-aware.
        """
        cap = self.share_caps.get(model)
        if cap is None:
            return math.inf
        allowed = cap * self.fleet_memory()
        if self.elastic_shares:
            allowed += self._borrowed_total(model) + self._total_lendable(
                exclude=model
            )
        return max(allowed - self.tenant_reserved.get(model, 0.0), 0.0)

    def _check_share(self, model: str, additional: float) -> None:
        cap = self.share_caps.get(model)
        if cap is None:
            return
        limit = cap * self.fleet_memory()
        held = self.tenant_reserved.get(model, 0.0)
        if held + additional <= limit + _share_eps(limit):
            return
        if self.elastic_shares:
            # Feasibility only — the ledger commits in _book_tenant, so a
            # check that is not followed by a booking changes no state.
            need = held + additional - limit
            capacity = self._borrowed_total(model) + self._total_lendable(
                exclude=model
            )
            if need <= capacity + _share_eps(limit):
                return
            raise AllocationError(
                f"elastic share cap: {model!r} needs {need / 2**30:.1f} GiB "
                f"above its {cap:.0%} cap but only "
                f"{capacity / 2**30:.1f} GiB is borrowed or lendable"
            )
        raise AllocationError(
            f"share cap: {model!r} holds {held / 2**30:.1f} GiB and "
            f"requests {additional / 2**30:.1f} GiB, over its "
            f"{cap:.0%} cap ({limit / 2**30:.1f} GiB) of fleet memory"
        )

    def _book_tenant(self, model: str, delta: float) -> None:
        total = self.tenant_reserved.get(model, 0.0) + delta
        # A fully-released tenant's total is pure float residue; the
        # residue scales with the magnitudes summed, so the cleanup
        # threshold keys off the tenant's high-water mark.
        if total <= _share_eps(self.tenant_peak.get(model, 0.0)):
            self.tenant_reserved.pop(model, None)
        else:
            self.tenant_reserved[model] = total
            if total > self.tenant_peak.get(model, 0.0):
                self.tenant_peak[model] = total
        if self.elastic_shares:
            self._elastic_book(model)

    # ------------------------------------------------------------------
    # Elastic borrow ledger (derived from the tenant books)
    # ------------------------------------------------------------------
    def _limit_of(self, model: str) -> float | None:
        cap = self.share_caps.get(model)
        return None if cap is None else cap * self.fleet_memory()

    def _borrowed_total(self, model: str) -> float:
        return sum(self._borrows.get(model, {}).values())

    def _lent_out(self, model: str) -> float:
        return sum(
            debts.get(model, 0.0) for debts in self._borrows.values()
        )

    def _lendable(self, model: str) -> float:
        """Idle headroom this capped tenant can lend right now."""
        limit = self._limit_of(model)
        if limit is None:
            return 0.0  # uncapped tenants have no contract to lend from
        own = self.tenant_reserved.get(model, 0.0) - self._borrowed_total(model)
        return max(limit - own - self._lent_out(model), 0.0)

    def _total_lendable(self, *, exclude: str) -> float:
        return sum(
            self._lendable(m) for m in self.share_caps if m != exclude
        )

    def _elastic_book(self, model: str) -> None:
        """Reconcile the ledger after ``model``'s books changed.

        Borrower side: the ledger sum is kept equal to the tenant's
        overage above cap (borrow on growth, return on release), so a
        tenant whose reservations all drain necessarily returns every
        borrowed byte.  Lender side: if this tenant's own demand now
        collides with bytes it has lent out, a reclaim demand is issued.
        """
        limit = self._limit_of(model)
        if limit is not None:
            reserved = self.tenant_reserved.get(model, 0.0)
            eps = _share_eps(max(limit, reserved))
            overage = max(reserved - limit, 0.0)
            current = self._borrowed_total(model)
            if overage > current + eps:
                self._borrow(model, overage - current)
            elif current > overage + eps:
                self._return(model, current - overage)
            uncovered = reserved - limit - self._borrowed_total(model)
            if uncovered > self.tenant_overage_peak.get(model, 0.0):
                self.tenant_overage_peak[model] = uncovered
            own = reserved - self._borrowed_total(model)
            lent = self._lent_out(model)
            if lent > 0 and own + lent > limit + eps:
                self._demand_reclaim(model, own + lent - limit)
        self._settle_demands()

    def _borrow(self, borrower: str, need: float) -> None:
        # Largest idle headroom first (name-ordered tiebreak keeps the
        # lender choice deterministic across runs).
        lenders = sorted(
            (m for m in self.share_caps if m != borrower),
            key=lambda m: (-self._lendable(m), m),
        )
        debts = self._borrows.setdefault(borrower, {})
        took_any = False
        for lender in lenders:
            if need <= _SHARE_EPS:
                break
            take = min(self._lendable(lender), need)
            if take <= 0.0:
                continue
            debts[lender] = debts.get(lender, 0.0) + take
            self.bytes_borrowed[borrower] = (
                self.bytes_borrowed.get(borrower, 0.0) + take
            )
            if self.recorder is not None:
                self.recorder.record(
                    self._clock(),
                    "borrow",
                    borrower=borrower,
                    lender=lender,
                    nbytes=take,
                )
            need -= take
            took_any = True
        if took_any:
            self.borrow_events[borrower] = (
                self.borrow_events.get(borrower, 0) + 1
            )
        if need > _SHARE_EPS and lenders:
            # Shortfall (feasibility was vetted before booking, so this
            # means headroom vanished between check and book — e.g. caps
            # installed over an already-over-cap fleet).  Attribute the
            # debt to the largest-cap lender and press it for the bytes;
            # tenant_overage_peak is the auditor's backstop if even that
            # lender cannot cover it.
            fallback = max(
                lenders, key=lambda m: (self.share_caps[m], m)
            )
            debts[fallback] = debts.get(fallback, 0.0) + need
            self.bytes_borrowed[borrower] = (
                self.bytes_borrowed.get(borrower, 0.0) + need
            )
            self._demand_reclaim(fallback, need)
        if not debts:
            self._borrows.pop(borrower, None)

    def _return(self, borrower: str, amount: float) -> None:
        debts = self._borrows.get(borrower, {})
        # Pressed lenders (an open reclaim demand) are repaid first, then
        # largest debt first.
        pressed = {
            d.lender for d in self.reclaim_demands if d.resolved_at is None
        }
        order = sorted(
            debts,
            key=lambda m: (m not in pressed, -debts[m], m),
        )
        for lender in order:
            if amount <= 0.0:
                break
            give = min(debts[lender], amount)
            debts[lender] -= give
            if debts[lender] <= _SHARE_EPS:
                del debts[lender]
            self.bytes_returned[borrower] = (
                self.bytes_returned.get(borrower, 0.0) + give
            )
            if self.recorder is not None:
                self.recorder.record(
                    self._clock(),
                    "borrow_returned",
                    borrower=borrower,
                    lender=lender,
                    nbytes=give,
                )
            amount -= give
        if not debts:
            self._borrows.pop(borrower, None)

    def _demand_reclaim(self, lender: str, nbytes: float) -> None:
        if any(
            d.resolved_at is None and d.lender == lender
            for d in self.reclaim_demands
        ):
            return  # already pressing this lender's borrowers
        lent = self._lent_out(lender)
        if lent <= _SHARE_EPS:
            return
        nbytes = min(nbytes, lent)
        demand = ReclaimDemand(
            lender=lender,
            nbytes=nbytes,
            issued_at=self._clock(),
            target_lent=max(lent - nbytes, 0.0),
        )
        self.reclaim_demands.append(demand)
        if self.recorder is not None:
            self.recorder.record(
                demand.issued_at,
                "reclaim_demand",
                lender=lender,
                nbytes=nbytes,
                target_lent=demand.target_lent,
            )
        if self._reclaim_hook is not None:
            owed = sorted(
                (
                    (debts.get(lender, 0.0), borrower)
                    for borrower, debts in self._borrows.items()
                    if debts.get(lender, 0.0) > 0.0
                ),
                key=lambda pair: (-pair[0], pair[1]),
            )
            remaining = nbytes
            for debt, borrower in owed:
                if remaining <= 0.0:
                    break
                ask = min(debt, remaining)
                self._reclaim_hook(borrower, ask)
                remaining -= ask

    def _settle_demands(self) -> None:
        for demand in self.reclaim_demands:
            if demand.resolved_at is None and (
                self._lent_out(demand.lender)
                <= demand.target_lent + _share_eps(demand.nbytes)
            ):
                demand.resolved_at = self._clock()

    def open_reclaim_demands(self) -> list[ReclaimDemand]:
        return [d for d in self.reclaim_demands if d.resolved_at is None]

    # ------------------------------------------------------------------
    # Pending-deploy claims (the preempt-or-wait surface)
    # ------------------------------------------------------------------
    def register_pending_deploy(
        self,
        model: str,
        reservations: Sequence[StageReservation],
        cancel: Callable[[], None],
        *,
        priority: int | None = None,
        kind: str = "deploy",
    ) -> PendingClaim | None:
        """Track a loading deploy as preemptible; no-op while arbitration
        is off (returns ``None``).  The factory resolves the claim via
        :meth:`claim_resolved` when the replica activates or tears down.
        ``kind="prepared-chain"`` marks an inflight refactoring's prepared
        target chain (cancel rolls back to the still-serving old chain)."""
        if priority is None:
            if self.qos_priority_of is None:
                return None
            priority = int(self.qos_priority_of(model))
        claim = PendingClaim(
            next(self._claim_counter),
            model,
            priority,
            list(reservations),
            cancel,
            kind=kind,
        )
        self._pending_claims[claim.claim_id] = claim
        return claim

    def claim_resolved(
        self, claim: PendingClaim | None, *, activated: bool
    ) -> None:
        """The deploy finished loading or was torn down: no longer
        preemptible.  Resolving a preempted claim is a no-op (its state
        stays ``preempted`` — the auditor relies on that)."""
        if claim is None:
            return
        if self._pending_claims.pop(claim.claim_id, None) is not None:
            claim.state = "active" if activated else "released"

    def pending_claims(self) -> list[PendingClaim]:
        return list(self._pending_claims.values())

    def _preemptible_victims(self, priority: int) -> list[PendingClaim]:
        """Pending claims a priority-``priority`` request may cancel:
        strictly lower classes holding memory on a usable (non-cordoned)
        GPU.  Whether cancelling them would actually unblock a placement
        is :meth:`_feasible_with`'s call."""
        victims = [
            claim
            for claim in self._pending_claims.values()
            if claim.priority > priority
            and any(
                not res.released and not res.gpu.cordoned
                for res in claim.reservations
            )
        ]
        # Least-important first, most-recent first within a class: the
        # youngest low-class deploy has sunk the least loading work.
        victims.sort(key=lambda c: (-c.priority, -c.claim_id))
        return victims

    def _preempt(self, claim: PendingClaim, claimant: str, priority: int) -> None:
        self._pending_claims.pop(claim.claim_id, None)
        claim.state = "preempted"
        self.preempted_deploys += 1
        self.preemptions.append(
            PreemptionRecord(
                victim_model=claim.model,
                victim_priority=claim.priority,
                claimant_model=claimant,
                claimant_priority=priority,
                claim=claim,
                reservations=tuple(claim.reservations),
            )
        )
        if self.recorder is not None:
            self.recorder.record(
                self._clock(),
                "preemption",
                victim=claim.model,
                victim_priority=claim.priority,
                claimant=claimant,
                claimant_priority=priority,
                claim_kind=claim.kind,
                nbytes=sum(r.nbytes for r in claim.reservations),
            )
        # Cancelling drains the LOADING replica; its teardown releases the
        # reservations through the normal (exactly-once) path.
        claim.cancel()

    # ------------------------------------------------------------------
    def candidates(
        self,
        mem_needed: float,
        *,
        model: str | None = None,
        exclude: Iterable[GPU] = (),
    ) -> list[GPU]:
        """GPUs that could host a stage of ``model`` needing ``mem_needed``."""
        banned = {g.gid for g in exclude}
        out = []
        for gpu in self.cluster.gpus:
            if gpu.gid in banned or gpu.cordoned:
                continue
            if model is not None and gpu.hosts_model(model):
                continue  # same-model anti-affinity (hard rule)
            if gpu.free_memory >= mem_needed:
                out.append(gpu)
        return out

    def reserve_on(
        self,
        model: str,
        gpu: GPU,
        nbytes: float,
        *,
        allow_same_model: bool = False,
    ) -> StageReservation:
        """Reserve ``nbytes`` for one stage on a specific GPU."""
        if gpu.cordoned:
            raise AllocationError(f"{gpu.gid} is cordoned (reclaimed)")
        if not allow_same_model and gpu.hosts_model(model):
            raise AllocationError(
                f"{gpu.gid} already hosts a stage of {model!r} (anti-affinity)"
            )
        if nbytes > gpu.free_memory + 1e-6:
            raise AllocationError(
                f"{gpu.gid} lacks {nbytes / 2**30:.2f} GiB "
                f"(free {gpu.free_memory / 2**30:.2f} GiB)"
            )
        self._check_share(model, nbytes)
        res_id = f"res-{next(self._counter)}"
        gpu.reserve(res_id, nbytes, model=model)
        reservation = StageReservation(res_id, model, gpu, nbytes)
        self.live[res_id] = reservation
        self._book_tenant(model, nbytes)
        return reservation

    def allocate_stages(
        self,
        model: str,
        mem_per_stage: Sequence[float],
        *,
        scorer: Callable[[GPU], float] | None = None,
        stage_scorers: Sequence[Callable[[GPU], float]] | None = None,
        exclude: Iterable[GPU] = (),
        priority: int | None = None,
    ) -> list[StageReservation]:
        """Atomically reserve one GPU per stage (all succeed or none).

        ``scorer`` returns higher-is-better preference per GPU; ties and the
        no-scorer case fall back to most-free-memory-first, which steers
        placement away from fragmented devices.  ``stage_scorers`` (one per
        stage, overriding ``scorer``) lets a caller express *per-stage*
        preferences — e.g. warm-cache coverage of a stage's byte range on a
        specific server.

        ``priority`` is the requesting tenant's strict-priority rank; when
        arbitration is on it defaults to the tenant's registered class.  A
        prioritised request that finds no feasible placement preempts
        strictly lower-priority *pending deploys* (never ACTIVE replicas)
        one at a time, retrying after each, before giving up — the
        preempt-or-wait rule.
        """
        if priority is None and self.qos_priority_of is not None:
            priority = int(self.qos_priority_of(model))
        self._check_share(model, sum(mem_per_stage))
        try:
            reservations = self._place_stages(
                model, mem_per_stage, scorer, exclude, stage_scorers
            )
        except AllocationError:
            if priority is None:
                self.failed_requests += 1
                self._press_lenders_on_failure(model, sum(mem_per_stage))
                raise
            try:
                reservations = self._place_with_preemption(
                    model, mem_per_stage, scorer, exclude, priority, stage_scorers
                )
            except AllocationError:
                self._press_lenders_on_failure(model, sum(mem_per_stage))
                raise
        self.granted_requests += 1
        if self.elastic_shares:
            # The lender got what it wanted — its open demand (if any) is
            # moot regardless of how much is still lent out.
            for demand in self.reclaim_demands:
                if demand.resolved_at is None and demand.lender == model:
                    demand.resolved_at = self._clock()
        return reservations

    def _press_lenders_on_failure(self, model: str, nbytes: float) -> None:
        """A lender that cannot place while its headroom is lent out gets
        a reclaim demand: borrowers shed excess, the caller retries on its
        next control tick."""
        if not self.elastic_shares:
            return
        if self._lent_out(model) > _SHARE_EPS:
            self._demand_reclaim(model, nbytes)

    def _place_stages(
        self,
        model: str,
        mem_per_stage: Sequence[float],
        scorer: Callable[[GPU], float] | None,
        exclude: Iterable[GPU],
        stage_scorers: Sequence[Callable[[GPU], float]] | None = None,
    ) -> list[StageReservation]:
        chosen: list[GPU] = []
        banned = {g.gid for g in exclude}
        for idx, mem in enumerate(mem_per_stage):
            pool = [
                g for g in self.candidates(mem, model=model) if g.gid not in banned
            ]
            if not pool:
                raise AllocationError(
                    f"no GPU with {mem / 2**30:.1f} GiB free for model "
                    f"{model!r} (stage {len(chosen)})"
                )
            stage_scorer = stage_scorers[idx] if stage_scorers else scorer
            if stage_scorer is not None:
                best = max(pool, key=lambda g: (stage_scorer(g), g.free_memory))
            else:
                best = max(pool, key=lambda g: g.free_memory)
            chosen.append(best)
            banned.add(best.gid)  # one stage per GPU within this replica
        return [
            self.reserve_on(model, gpu, mem)
            for gpu, mem in zip(chosen, mem_per_stage)
        ]

    def _place_with_preemption(
        self,
        model: str,
        mem_per_stage: Sequence[float],
        scorer: Callable[[GPU], float] | None,
        exclude: Iterable[GPU],
        priority: int,
        stage_scorers: Sequence[Callable[[GPU], float]] | None = None,
    ) -> list[StageReservation]:
        while True:
            victims = self._preemptible_victims(priority)
            # Dry-run before sacrificing anyone: preempt the smallest
            # least-important prefix whose freed memory makes the *whole*
            # multi-stage placement feasible.  If no prefix does, wait —
            # cancelling a loading deploy that cannot unblock us would
            # destroy its work for nothing.
            chosen = next(
                (
                    victims[:k]
                    for k in range(1, len(victims) + 1)
                    if self._feasible_with(model, mem_per_stage, exclude, victims[:k])
                ),
                None,
            )
            if chosen is None:
                self.failed_requests += 1
                raise AllocationError(
                    f"no feasible fragment for {model!r} (priority "
                    f"{priority}) and no set of lower-priority pending "
                    f"deploys would make one"
                )
            for claim in chosen:
                self._preempt(claim, model, priority)
            try:
                return self._place_stages(
                    model, mem_per_stage, scorer, exclude, stage_scorers
                )
            except AllocationError:
                # A scorer can steer the real placement off the dry-run's
                # path; remaining victims get another round.
                continue

    def _feasible_with(
        self,
        model: str,
        mem_per_stage: Sequence[float],
        exclude: Iterable[GPU],
        freed: Sequence[PendingClaim],
    ) -> bool:
        """Would the placement succeed if ``freed`` claims were released?

        Mirrors :meth:`_place_stages`' greedy most-free-first choice over
        hypothetically adjusted free memory, without touching any state.
        """
        extra: dict[str, float] = {}
        for claim in freed:
            for res in claim.reservations:
                if not res.released:
                    extra[res.gpu.gid] = extra.get(res.gpu.gid, 0.0) + res.nbytes
        banned = {g.gid for g in exclude}

        def adjusted_free(gpu: GPU) -> float:
            return gpu.free_memory + extra.get(gpu.gid, 0.0)

        for mem in mem_per_stage:
            pool = [
                gpu
                for gpu in self.cluster.gpus
                if gpu.gid not in banned
                and not gpu.cordoned
                and not gpu.hosts_model(model)
                and adjusted_free(gpu) >= mem
            ]
            if not pool:
                return False
            best = max(pool, key=adjusted_free)
            extra[best.gid] = extra.get(best.gid, 0.0) - mem
            banned.add(best.gid)
        return True

    def release(self, reservation: StageReservation) -> None:
        """Return a reservation's memory to its GPU."""
        if reservation.released:
            raise AllocationError(f"double release of {reservation.res_id}")
        reservation.gpu.release(reservation.res_id, model=reservation.model)
        reservation.released = True
        self.live.pop(reservation.res_id, None)
        self._book_tenant(reservation.model, -reservation.nbytes)

    def resize(self, reservation: StageReservation, nbytes: float) -> None:
        """Grow/shrink a live reservation (KV growth, post-refactor trim)."""
        if reservation.released:
            raise AllocationError(f"resize of released {reservation.res_id}")
        if nbytes > reservation.nbytes:
            self._check_share(reservation.model, nbytes - reservation.nbytes)
        reservation.gpu.resize(reservation.res_id, nbytes, model=reservation.model)
        self._book_tenant(reservation.model, nbytes - reservation.nbytes)
        reservation.nbytes = nbytes

    # ------------------------------------------------------------------
    def audit_balance(self) -> list[str]:
        """Cross-check live reservations against the per-GPU books.

        Returns human-readable discrepancies (empty when balanced); the
        invariant auditor turns these into ``memory-accounting``
        violations.  Kept here so the accounting contract lives next to
        the code that maintains it.
        """
        problems: list[str] = []
        # One allocation snapshot per GPU (not per reservation): this
        # runs on every chaos-audit tick.
        snapshots: dict[str, dict[str, float]] = {}
        tenant_live: dict[str, float] = {}
        for res_id, res in self.live.items():
            if res.released:
                problems.append(
                    f"{res_id} is marked released but still tracked live"
                )
            tenant_live[res.model] = tenant_live.get(res.model, 0.0) + res.nbytes
            allocs = snapshots.get(res.gpu.gid)
            if allocs is None:
                allocs = snapshots[res.gpu.gid] = res.gpu.stage_allocations
            if res_id not in allocs:
                problems.append(
                    f"{res_id} ({res.model}) has no backing allocation "
                    f"on {res.gpu.gid}"
                )
            elif abs(allocs[res_id] - res.nbytes) > 1e-6:
                problems.append(
                    f"{res_id} bytes mismatch on {res.gpu.gid}: "
                    f"reservation {res.nbytes}, GPU {allocs[res_id]}"
                )
        # Per-tenant running totals must mirror the live reservation set
        # exactly — the share-cap checks are only as sound as these books.
        for model in set(tenant_live) | set(self.tenant_reserved):
            recorded = self.tenant_reserved.get(model, 0.0)
            actual = tenant_live.get(model, 0.0)
            scale = max(actual, self.tenant_peak.get(model, 0.0))
            if abs(recorded - actual) > _share_eps(scale):
                problems.append(
                    f"tenant {model} books {recorded:.0f} bytes but live "
                    f"reservations sum to {actual:.0f}"
                )
        return problems

    def total_reserved(self) -> float:
        return sum(r.nbytes for r in self.live.values())

    def gpus_in_use(self) -> int:
        return len({r.gpu.gid for r in self.live.values()})
