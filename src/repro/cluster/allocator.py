"""GPU allocation with the paper's placement constraints.

Hard rules implemented (§6.2):

* stages of the *same model* are never placed on the same GPU (except
  transiently during an inflight refactoring transition, where the old and
  new incarnation of a stage co-reside until switchover — callers opt in
  via ``allow_same_model``);
* serving reservations never over-commit GPU memory.

Soft preferences (the Eq. 6 objective and the Eq. 13 affinity policy) are
injected as a scoring callable so refactoring/scaling policies stay in
their own modules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import GPU


class AllocationError(RuntimeError):
    """Raised when an allocation request cannot be satisfied."""


# Smallest batch memory-aware degradation will fall back to before giving
# up: deployment and inflight refactoring share this policy, so a degraded
# replica's effective batch never depends on which path created its chain.
DEGRADE_FLOOR = 8


def degrade_until_fit(batch, attempt, *, floor: int = DEGRADE_FLOOR):
    """Run ``attempt(batch)``, halving the batch on :class:`AllocationError`
    until it fits; at the floor the error propagates.  Returns
    ``(batch, result)`` with the batch that actually fit."""
    while True:
        try:
            return batch, attempt(batch)
        except AllocationError:
            if batch <= floor:
                raise
            batch //= 2


@dataclass
class StageReservation:
    """One stage's memory reservation on one GPU."""

    res_id: str
    model: str
    gpu: GPU
    nbytes: float
    released: bool = False


class GPUAllocator:
    """Cluster-wide allocator used by FlexPipe and all baselines."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._counter = itertools.count()
        self.live: dict[str, StageReservation] = {}
        self.failed_requests = 0
        self.granted_requests = 0

    # ------------------------------------------------------------------
    def candidates(
        self,
        mem_needed: float,
        *,
        model: str | None = None,
        exclude: Iterable[GPU] = (),
    ) -> list[GPU]:
        """GPUs that could host a stage of ``model`` needing ``mem_needed``."""
        banned = {g.gid for g in exclude}
        out = []
        for gpu in self.cluster.gpus:
            if gpu.gid in banned or gpu.cordoned:
                continue
            if model is not None and gpu.hosts_model(model):
                continue  # same-model anti-affinity (hard rule)
            if gpu.free_memory >= mem_needed:
                out.append(gpu)
        return out

    def reserve_on(
        self,
        model: str,
        gpu: GPU,
        nbytes: float,
        *,
        allow_same_model: bool = False,
    ) -> StageReservation:
        """Reserve ``nbytes`` for one stage on a specific GPU."""
        if gpu.cordoned:
            raise AllocationError(f"{gpu.gid} is cordoned (reclaimed)")
        if not allow_same_model and gpu.hosts_model(model):
            raise AllocationError(
                f"{gpu.gid} already hosts a stage of {model!r} (anti-affinity)"
            )
        if nbytes > gpu.free_memory + 1e-6:
            raise AllocationError(
                f"{gpu.gid} lacks {nbytes / 2**30:.2f} GiB "
                f"(free {gpu.free_memory / 2**30:.2f} GiB)"
            )
        res_id = f"res-{next(self._counter)}"
        gpu.reserve(res_id, nbytes, model=model)
        reservation = StageReservation(res_id, model, gpu, nbytes)
        self.live[res_id] = reservation
        return reservation

    def allocate_stages(
        self,
        model: str,
        mem_per_stage: Sequence[float],
        *,
        scorer: Callable[[GPU], float] | None = None,
        exclude: Iterable[GPU] = (),
    ) -> list[StageReservation]:
        """Atomically reserve one GPU per stage (all succeed or none).

        ``scorer`` returns higher-is-better preference per GPU; ties and the
        no-scorer case fall back to most-free-memory-first, which steers
        placement away from fragmented devices.
        """
        chosen: list[GPU] = []
        banned = {g.gid for g in exclude}
        for mem in mem_per_stage:
            pool = [
                g for g in self.candidates(mem, model=model) if g.gid not in banned
            ]
            if not pool:
                self.failed_requests += 1
                raise AllocationError(
                    f"no GPU with {mem / 2**30:.1f} GiB free for model "
                    f"{model!r} (stage {len(chosen)})"
                )
            if scorer is not None:
                best = max(pool, key=lambda g: (scorer(g), g.free_memory))
            else:
                best = max(pool, key=lambda g: g.free_memory)
            chosen.append(best)
            banned.add(best.gid)  # one stage per GPU within this replica
        reservations = [
            self.reserve_on(model, gpu, mem)
            for gpu, mem in zip(chosen, mem_per_stage)
        ]
        self.granted_requests += 1
        return reservations

    def release(self, reservation: StageReservation) -> None:
        """Return a reservation's memory to its GPU."""
        if reservation.released:
            raise AllocationError(f"double release of {reservation.res_id}")
        reservation.gpu.release(reservation.res_id, model=reservation.model)
        reservation.released = True
        self.live.pop(reservation.res_id, None)

    def resize(self, reservation: StageReservation, nbytes: float) -> None:
        """Grow/shrink a live reservation (KV growth, post-refactor trim)."""
        if reservation.released:
            raise AllocationError(f"resize of released {reservation.res_id}")
        reservation.gpu.resize(reservation.res_id, nbytes)
        reservation.nbytes = nbytes

    # ------------------------------------------------------------------
    def audit_balance(self) -> list[str]:
        """Cross-check live reservations against the per-GPU books.

        Returns human-readable discrepancies (empty when balanced); the
        invariant auditor turns these into ``memory-accounting``
        violations.  Kept here so the accounting contract lives next to
        the code that maintains it.
        """
        problems: list[str] = []
        # One allocation snapshot per GPU (not per reservation): this
        # runs on every chaos-audit tick.
        snapshots: dict[str, dict[str, float]] = {}
        for res_id, res in self.live.items():
            if res.released:
                problems.append(
                    f"{res_id} is marked released but still tracked live"
                )
            allocs = snapshots.get(res.gpu.gid)
            if allocs is None:
                allocs = snapshots[res.gpu.gid] = res.gpu.stage_allocations
            if res_id not in allocs:
                problems.append(
                    f"{res_id} ({res.model}) has no backing allocation "
                    f"on {res.gpu.gid}"
                )
            elif abs(allocs[res_id] - res.nbytes) > 1e-6:
                problems.append(
                    f"{res_id} bytes mismatch on {res.gpu.gid}: "
                    f"reservation {res.nbytes}, GPU {allocs[res_id]}"
                )
        return problems

    def total_reserved(self) -> float:
        return sum(r.nbytes for r in self.live.values())

    def gpus_in_use(self) -> int:
        return len({r.gpu.gid for r in self.live.values()})
