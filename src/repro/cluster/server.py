"""Server (node) model: GPUs + host memory + PCIe + NIC."""

from __future__ import annotations

from repro.cluster.gpu import GPU
from repro.simulation.engine import Simulator
from repro.transfer.links import GB, FairShareLink, LinkSpec


class Server:
    """A physical node hosting one or more GPUs.

    The server owns three fair-share links used during scaling:

    * ``pcie`` — host-memory -> GPU parameter loads (warm starts);
    * ``ssd`` — local-NVMe -> GPU parameter loads (the second cache tier:
      slower than host memory, much faster than contended remote storage);
    * ``nic`` — network ingest (cold loads from storage, KV migration).

    Host memory holds the warm parameter cache of §7 ("parameter copies in
    host memory even after GPU eviction"); the local SSD backs the cache's
    demotion tier, so host evictions degrade to SSD-warm instead of cold.
    """

    def __init__(
        self,
        sim: Simulator,
        sid: str,
        gpus: list[GPU],
        *,
        rack_id: str = "rack-0",
        host_memory: float = 256.0 * GB,
        rdma: bool = False,
        pcie_bandwidth: float = 24.0 * GB,
        nic_bandwidth: float = 12.5 * GB,  # 100 Gbps
        ssd_capacity: float = 2048.0 * GB,
        ssd_bandwidth: float = 6.0 * GB,  # NVMe sequential read
    ):
        if not gpus:
            raise ValueError(f"server {sid} must have at least one GPU")
        self.sim = sim
        self.sid = sid
        self.rack_id = rack_id
        self.gpus = list(gpus)
        for gpu in self.gpus:
            gpu.server = self
        self.host_memory = host_memory
        self.host_memory_used = 0.0
        self.rdma = rdma
        self.ssd_capacity = ssd_capacity
        self.ssd_bandwidth = ssd_bandwidth
        self.ssd_used = 0.0
        self.pcie = FairShareLink(sim, LinkSpec(f"{sid}/pcie", pcie_bandwidth, 10e-6))
        self.nic = FairShareLink(sim, LinkSpec(f"{sid}/nic", nic_bandwidth, 100e-6))
        self.ssd = FairShareLink(sim, LinkSpec(f"{sid}/ssd", ssd_bandwidth, 50e-6))

    @property
    def host_memory_free(self) -> float:
        return self.host_memory - self.host_memory_used

    def host_reserve(self, nbytes: float) -> bool:
        """Reserve host memory for the warm cache; False if it cannot fit."""
        if nbytes < 0:
            raise ValueError(f"negative reservation: {nbytes}")
        if nbytes > self.host_memory_free + 1e-6:
            return False
        self.host_memory_used += nbytes
        return True

    def host_release(self, nbytes: float) -> None:
        self.host_memory_used -= nbytes
        # Tolerance is in *bytes*: at GB magnitudes one float64 ulp is
        # ~2e-6 bytes, so a heavily churned cache accumulates rounding
        # noise far above any epsilon-scale guard.
        if self.host_memory_used < -1024.0:
            raise ValueError(f"host memory under-flow on {self.sid}")
        self.host_memory_used = max(self.host_memory_used, 0.0)

    @property
    def ssd_free(self) -> float:
        return self.ssd_capacity - self.ssd_used

    def ssd_reserve(self, nbytes: float) -> bool:
        """Reserve SSD space for the cache's demotion tier; False = no fit."""
        if nbytes < 0:
            raise ValueError(f"negative reservation: {nbytes}")
        if nbytes > self.ssd_free + 1e-6:
            return False
        self.ssd_used += nbytes
        return True

    def ssd_release(self, nbytes: float) -> None:
        self.ssd_used -= nbytes
        if self.ssd_used < -1024.0:  # byte-scale tolerance, see host_release
            raise ValueError(f"SSD under-flow on {self.sid}")
        self.ssd_used = max(self.ssd_used, 0.0)

    def free_gpus(self, min_free_bytes: float = 0.0) -> list[GPU]:
        """GPUs with at least ``min_free_bytes`` of free memory."""
        return [g for g in self.gpus if g.free_memory >= min_free_bytes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Server({self.sid}, gpus={len(self.gpus)}, rack={self.rack_id})"
