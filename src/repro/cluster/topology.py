"""Rack-level topology: groups of servers behind a shared uplink."""

from __future__ import annotations

from repro.cluster.server import Server
from repro.simulation.engine import Simulator
from repro.transfer.links import GB, FairShareLink, LinkSpec


class Rack:
    """A rack of servers sharing a network uplink.

    The uplink is the rack-level resource the Hierarchical Resource Graph
    tracks (network bandwidth tier in §7).
    """

    def __init__(
        self,
        sim: Simulator,
        rid: str,
        servers: list[Server] | None = None,
        *,
        uplink_bandwidth: float = 50.0 * GB,
    ):
        self.rid = rid
        self.servers: list[Server] = []
        self.uplink = FairShareLink(sim, LinkSpec(f"{rid}/uplink", uplink_bandwidth, 50e-6))
        for server in servers or []:
            self.add_server(server)

    def add_server(self, server: Server) -> None:
        server.rack_id = self.rid
        self.servers.append(server)

    @property
    def gpus(self) -> list:
        return [gpu for server in self.servers for gpu in server.gpus]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rack({self.rid}, servers={len(self.servers)})"
