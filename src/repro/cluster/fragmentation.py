"""Background-tenant churn: the source of resource fragmentation (§3.1).

The paper measured a 216% mean GPU subscription rate, 8.7% probability of
finding a single GPU with ≥85% free memory, and 0.02% probability of four
co-located free GPUs.  This module reproduces those statistics with a
birth-death process of background tenants whose arrival rate is feedback-
controlled toward a target subscription level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import GPU
from repro.simulation.engine import Simulator
from repro.simulation.processes import PeriodicProcess
from repro.simulation.randomness import RandomStreams
from repro.transfer.links import GB


@dataclass
class BackgroundTenant:
    """A non-serving workload occupying part of a GPU."""

    tid: int
    gpu: GPU
    mem_bytes: float
    sm_request: float  # subscribed share (over-subscription allowed)
    sm_usage: float  # actual usage (bursty tenants use far less than they subscribe)
    departs_at: float

    def attach(self) -> None:
        self.gpu.background_mem += self.mem_bytes
        self.gpu.background_sm_request += self.sm_request
        self.gpu.background_sm_usage += self.sm_usage

    def detach(self) -> None:
        self.gpu.background_mem -= self.mem_bytes
        self.gpu.background_sm_request -= self.sm_request
        self.gpu.background_sm_usage -= self.sm_usage


@dataclass(frozen=True)
class FragmentationConfig:
    """Churn-process parameters (defaults fitted to Table 1 / Fig. 2)."""

    target_subscription: float = 2.16
    tick_interval: float = 5.0
    mean_lifetime: float = 600.0
    # Tenant memory demand: lognormal, heavy-tailed like heterogeneous
    # models; calibrated so only ~9% of GPUs have >=85% memory free and
    # 4-way co-located free GPUs are vanishingly rare (§3.1 / Fig. 2).
    mem_log_mean: float = 2.72  # median ≈ 15 GB
    mem_log_sigma: float = 0.90
    # Subscribed SM share per tenant.
    sm_request_mean: float = 1.0
    # Actual SM usage is a small fraction of the request (17-24% cluster mean).
    sm_usage_fraction: float = 0.09
    max_tenants_per_gpu: int = 6


class FragmentationModel:
    """Birth-death background load with feedback toward a subscription target."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        streams: RandomStreams,
        config: FragmentationConfig | None = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.config = config or FragmentationConfig()
        self.rng = streams.stream("fragmentation")
        self.tenants: dict[int, BackgroundTenant] = {}
        self._next_tid = 0
        self._tenants_per_gpu: dict[str, int] = {}
        self._process = PeriodicProcess(
            sim, self.config.tick_interval, self._tick, start_delay=0.0
        )

    # ------------------------------------------------------------------
    def warm_up(self, rounds: int = 80) -> None:
        """Apply enough churn ticks to reach steady state instantly.

        Used by experiments that need a pre-fragmented cluster at t=0
        (the paper's measurements are of a long-running production fleet).
        """
        for _ in range(rounds):
            self._spawn_wave()
        # Departures are in the future; steady state is arrivals ~ departures.

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._reap_departures()
        self._spawn_wave()

    def _reap_departures(self) -> None:
        now = self.sim.now
        gone = [t for t in self.tenants.values() if t.departs_at <= now]
        for tenant in gone:
            tenant.detach()
            del self.tenants[tenant.tid]
            self._tenants_per_gpu[tenant.gpu.gid] -= 1

    def _spawn_wave(self) -> None:
        """Add tenants while the cluster is below the subscription target."""
        cfg = self.config
        gpus = self.cluster.gpus
        deficit = cfg.target_subscription - self.cluster.subscription_rate()
        if deficit <= 0:
            return
        # Each tenant adds ~sm_request_mean/len(gpus) to the mean subscription.
        n_new = int(round(deficit * len(gpus) / cfg.sm_request_mean))
        n_new = min(n_new, max(4, len(gpus) // 2))
        for _ in range(n_new):
            gpu = gpus[int(self.rng.integers(0, len(gpus)))]
            if self._tenants_per_gpu.get(gpu.gid, 0) >= cfg.max_tenants_per_gpu:
                continue
            mem = float(self.rng.lognormal(cfg.mem_log_mean, cfg.mem_log_sigma)) * GB
            mem = min(mem, max(gpu.free_memory - 1.0 * GB, 0.0))
            if mem <= 0.25 * GB:
                continue
            sm_request = float(self.rng.gamma(4.0, cfg.sm_request_mean / 4.0))
            sm_usage = min(sm_request, 1.0) * cfg.sm_usage_fraction * float(
                self.rng.lognormal(0.0, 0.8)
            )
            lifetime = float(self.rng.exponential(cfg.mean_lifetime))
            tenant = BackgroundTenant(
                tid=self._next_tid,
                gpu=gpu,
                mem_bytes=mem,
                sm_request=sm_request,
                sm_usage=min(sm_usage, 1.0),
                departs_at=self.sim.now + lifetime,
            )
            self._next_tid += 1
            tenant.attach()
            self.tenants[tenant.tid] = tenant
            self._tenants_per_gpu[gpu.gid] = self._tenants_per_gpu.get(gpu.gid, 0) + 1

    # ------------------------------------------------------------------
    # Statistics used by Table 1 / Fig. 2
    # ------------------------------------------------------------------
    def sm_utilization_samples(self) -> list[float]:
        """Per-GPU background SM usage in percent (Table 1 rows)."""
        return [min(g.background_sm_usage, 1.0) * 100.0 for g in self.cluster.gpus]

    def memory_utilization_samples(self) -> list[float]:
        return [
            min(g.used_memory / g.spec.memory, 1.0) * 100.0 for g in self.cluster.gpus
        ]
