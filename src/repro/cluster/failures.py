"""Serverless instance reclamation / GPU failure injection.

Serverless platforms reclaim scaled-down resources *immediately* (§7,
"scaled-down model instances have their resources immediately reallocated
to competing workloads"), and production GPUs fail or get preempted by
higher-priority tenants.  This module injects both disturbances into a
running serving system so resilience can be measured:

* :class:`ReclamationPolicy` — picks victim GPUs (random, most-idle, or
  serving-biased to stress the data plane);
* :class:`FailureInjector` — a Poisson process of reclamation events; each
  event drains the replicas whose stages occupy the victim GPU (serverless
  reclamation grants a grace period, so in-flight work completes) and
  blocks the GPU for an exponential downtime;
* :class:`RecoveryTracker` — measures capacity-restoration time per event,
  the figure of merit for the recovery experiments.

The injector deliberately works *through public interfaces* (routers,
reservations, the allocator) — the serving systems under test are not
modified and must recover using their own control loops, exactly like the
production rollout in §9.6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import GPU
from repro.simulation.engine import Simulator


class VictimChoice(enum.Enum):
    """How the platform picks which GPU to reclaim."""

    RANDOM = "random"  # uniform over all GPUs
    IDLE_FIRST = "idle_first"  # platform-friendly: reclaim the least busy
    SERVING_BIASED = "serving_biased"  # adversarial: prefer GPUs hosting models


@dataclass(frozen=True)
class ReclamationPolicy:
    """Victim selection + timing of reclamation events."""

    mtbf: float = 300.0  # mean time between events, cluster-wide (s)
    downtime_mean: float = 120.0  # mean unavailability per event (s)
    choice: VictimChoice = VictimChoice.SERVING_BIASED

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if self.downtime_mean < 0:
            raise ValueError("downtime_mean cannot be negative")


@dataclass
class ReclamationEvent:
    """One injected failure and what it hit."""

    time: float
    gpu_id: str
    downtime: float
    replicas_hit: int
    models_hit: tuple[str, ...] = ()
    recovered_at: float | None = None

    @property
    def recovery_time(self) -> float | None:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.time


class RecoveryTracker:
    """Marks events recovered once serving capacity is restored.

    "Recovered" means every model hit by the event again has at least the
    replica count it had immediately before the event — the definition
    used by the failure-recovery example and bench.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._watch: list[tuple[ReclamationEvent, dict[str, int], object]] = []

    def watch(self, event: ReclamationEvent, routers: dict) -> None:
        baseline = {
            model: len([r for r in router.replicas if r.accepting])
            for model, router in routers.items()
            if model in event.models_hit
        }
        self._watch.append((event, baseline, routers))

    def poll(self) -> None:
        """Check open events; call from a periodic process."""
        still_open = []
        for event, baseline, routers in self._watch:
            ok = all(
                len([r for r in routers[m].replicas if r.accepting]) >= n
                for m, n in baseline.items()
            )
            if ok:
                event.recovered_at = self.sim.now
            else:
                still_open.append((event, baseline, routers))
        self._watch = still_open

    @property
    def open_events(self) -> int:
        return len(self._watch)


class FailureInjector:
    """Injects reclamation events into a live serving system.

    Parameters
    ----------
    system:
        Any :class:`~repro.core.serving.ServingSystem`; only its public
        ``routers`` and the shared allocator/cluster are touched.
    policy:
        Timing and victim selection.
    tracker:
        Optional :class:`RecoveryTracker`; when given, every event is
        watched until the system restores the pre-event replica counts.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        rng: np.random.Generator,
        system,
        policy: ReclamationPolicy | None = None,
        tracker: RecoveryTracker | None = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.rng = rng
        self.system = system
        self.policy = policy or ReclamationPolicy()
        self.tracker = tracker
        self.events: list[ReclamationEvent] = []
        self._stopped = False
        self._blocked: dict[str, float] = {}  # gpu id -> blocked nbytes
        self._block_stamp: dict[str, float] = {}  # gpu id -> active event time

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._stopped = False
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        delay = float(self.rng.exponential(self.policy.mtbf))
        self.sim.schedule(delay, self._fire)

    # ------------------------------------------------------------------
    def _fire(self) -> None:
        if self._stopped:
            return
        victim = self._pick_victim()
        if victim is not None:
            self._reclaim(victim)
        self._schedule_next()

    def inject(self, gpu: GPU | None = None) -> ReclamationEvent | None:
        """Fire one reclamation immediately (chaos/fuzz entry point).

        Picks a victim by policy when ``gpu`` is not given; GPUs already
        under reclamation are skipped.  Returns the event, or ``None``
        when no eligible victim exists.
        """
        if gpu is not None and gpu.gid in self._blocked:
            return None
        victim = gpu if gpu is not None else self._pick_victim()
        if victim is None:
            return None
        self._reclaim(victim)
        return self.events[-1]

    def _pick_victim(self) -> GPU | None:
        gpus = [g for g in self.cluster.gpus if g.gid not in self._blocked]
        if not gpus:
            return None
        choice = self.policy.choice
        if choice is VictimChoice.RANDOM:
            return gpus[int(self.rng.integers(len(gpus)))]
        if choice is VictimChoice.IDLE_FIRST:
            idle = [g for g in gpus if not g.model_tags]
            pool = idle or gpus
            return pool[int(self.rng.integers(len(pool)))]
        serving = [g for g in gpus if g.model_tags]
        pool = serving or gpus
        return pool[int(self.rng.integers(len(pool)))]

    # ------------------------------------------------------------------
    def _all_routers(self) -> list:
        """Every router of the system under test (incl. out-of-band pools
        like DistServe's decode routers, via ``all_routers``)."""
        return list(self.system.all_routers().values())

    def _replicas_on(self, gpu: GPU) -> list:
        # Routers only know ACTIVE replicas; ``all_replicas`` also
        # surfaces LOADING ones, whose reservations already sit on the
        # victim GPU — without it they would dodge the reclamation and
        # later activate on a GPU the platform took back.
        # ``live_reservations`` additionally covers superseded (retired)
        # chains still draining in-flight jobs on the victim.
        return [
            replica
            for replica in self.system.all_replicas()
            if any(res.gpu is gpu for res in replica.live_reservations())
        ]

    def _reclaim(self, gpu: GPU) -> None:
        downtime = float(self.rng.exponential(self.policy.downtime_mean))
        victims = self._replicas_on(gpu)
        models = tuple(sorted({r.profile.spec.name for r in victims}))
        event = ReclamationEvent(
            time=self.sim.now,
            gpu_id=gpu.gid,
            downtime=downtime,
            replicas_hit=len(victims),
            models_hit=models,
        )
        self.events.append(event)
        if self.tracker is not None and victims:
            self.tracker.watch(event, self.system.routers)
        # Grace-period reclamation: replicas drain (in-flight work finishes,
        # no new batches) and their reservations release through the normal
        # teardown path.
        for replica in victims:
            for router in self._all_routers():
                router.remove(replica)
            replica.drain()
        # Cordon the GPU (the allocator refuses serving placements on it,
        # with no timing window) and block whatever memory is — or
        # becomes — free: the first top-up absorbs today's free bytes
        # (possibly none on a packed GPU) and the periodic chain swallows
        # memory the draining victims release while the downtime runs.
        gpu.cordoned = True
        # Reclamation notification (before the blocker absorbs free bytes):
        # systems abort in-flight refactor transitions whose *prepared*
        # reservations sit on the victim — those are stages of no replica,
        # so the drain above cannot reach them — and the memory they free
        # is swallowed by the top-up below, inside the downtime window.
        hook = getattr(self.system, "on_gpu_reclaimed", None)
        if hook is not None:
            hook(gpu)
        self._blocked[gpu.gid] = 0.0
        self._block_stamp[gpu.gid] = event.time
        self._top_up(gpu, event.time)
        self.sim.schedule(downtime, self._restore, gpu, event.time)
        if self.tracker is not None:
            self.tracker.poll()

    _TOP_UP_INTERVAL = 1.0  # how often a blocked GPU re-absorbs freed bytes

    def _top_up(self, gpu: GPU, stamp: float) -> None:
        # The stamp check retires a stale chain — after restore, or when
        # its window overlaps a *re*-reclamation of the same GPU.
        if self._block_stamp.get(gpu.gid) != stamp:
            return
        # Absorb a hair less than the free bytes: at the 10^11-byte scale
        # ``(blocked + free) - blocked`` can round a few float ulps above
        # ``free``, which would trip resize()'s over-commit tolerance.
        grab = gpu.free_memory - 1e-3
        if grab > 0:
            # The blocker allocation is created lazily at the first
            # positive absorption, so a packed GPU (free <= 0, possibly a
            # float-negative hair at this scale) never risks a rejected
            # zero-byte reserve.
            alloc_id = f"reclaimed/{stamp:.3f}"
            total = self._blocked[gpu.gid] + grab
            if alloc_id in gpu.stage_allocations:
                gpu.resize(alloc_id, total)
            else:
                gpu.reserve(alloc_id, grab)
            self._blocked[gpu.gid] = total
        self.sim.schedule(self._TOP_UP_INTERVAL, self._top_up, gpu, stamp)

    def _restore(self, gpu: GPU, stamp: float) -> None:
        alloc_id = f"reclaimed/{stamp:.3f}"
        if alloc_id in gpu.stage_allocations:
            gpu.release(alloc_id)
        gpu.cordoned = False
        self._blocked.pop(gpu.gid, None)
        self._block_stamp.pop(gpu.gid, None)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate statistics over all injected events."""
        hits = [e for e in self.events if e.replicas_hit > 0]
        recoveries = [
            e.recovery_time for e in hits if e.recovery_time is not None
        ]
        return {
            "events": len(self.events),
            "events_hitting_replicas": len(hits),
            "replicas_hit": sum(e.replicas_hit for e in self.events),
            "recovered": len(recoveries),
            "mean_recovery_s": float(np.mean(recoveries)) if recoveries else None,
            "max_recovery_s": float(np.max(recoveries)) if recoveries else None,
        }
