"""Hierarchical Resource Graph (HRG) — topology-aware scaling coordination (§7).

The HRG annotates the server/rack/cluster hierarchy with recent scaling
events so concurrent scale-ups are routed away from paths that are already
ingesting parameters.  This converts the "resource contention problem into a
resource coordination opportunity": loads spread across PCIe/NIC/storage
paths instead of stacking on one of them.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server


@dataclass(frozen=True)
class HRGWeights:
    """Relative contention weight of each hierarchy level.

    Server-level contention (PCIe + GPU memory bandwidth) hurts a concurrent
    load the most; rack uplinks and cluster storage are wider but shared by
    more nodes.
    """

    server: float = 1.0
    rack: float = 0.45
    cluster: float = 0.15
    decay: float = 1.0 / 20.0  # events older than ~20 s stop mattering


class HierarchicalResourceGraph:
    """Tracks scaling events per server/rack/cluster and scores contention."""

    def __init__(self, cluster: Cluster, weights: HRGWeights | None = None):
        self.cluster = cluster
        self.weights = weights or HRGWeights()
        self._server_events: dict[str, deque] = {}
        self._rack_events: dict[str, deque] = {}
        self._cluster_events: deque = deque()
        self.events_registered = 0

    # ------------------------------------------------------------------
    def register_scaling_event(self, server: Server, now: float) -> None:
        """Record that a parameter load / KV migration started on ``server``."""
        self._server_events.setdefault(server.sid, deque()).append(now)
        self._rack_events.setdefault(server.rack_id, deque()).append(now)
        self._cluster_events.append(now)
        self.events_registered += 1

    def contention_score(self, server: Server, now: float) -> float:
        """Exponentially-decayed count of recent events along the path.

        Higher means more contention; the scaling coordinator prefers
        low-score servers.
        """
        w = self.weights
        score = w.server * self._decayed(self._server_events.get(server.sid), now)
        score += w.rack * self._decayed(self._rack_events.get(server.rack_id), now)
        score += w.cluster * self._decayed(self._cluster_events, now)
        return score

    def rank_servers(self, servers: list[Server], now: float) -> list[Server]:
        """Servers ordered from least to most contended."""
        return sorted(servers, key=lambda s: self.contention_score(s, now))

    # ------------------------------------------------------------------
    def _decayed(self, events: deque | None, now: float) -> float:
        if not events:
            return 0.0
        # Trim events that no longer contribute meaningfully (>5 time consts).
        horizon = now - 5.0 / self.weights.decay
        while events and events[0] < horizon:
            events.popleft()
        return sum(math.exp(-self.weights.decay * (now - t)) for t in events)
