"""Cluster assembly and reference topologies.

``make_paper_cluster`` reproduces the paper's testbed scale: 42 servers and
82 GPUs (10 single-GPU, 28 dual-GPU, 4 quad-GPU nodes — the mix that yields
the paper's observation that 4 co-located GPUs are almost never available).
"""

from __future__ import annotations

from repro.cluster.gpu import GPU, GPUSpec
from repro.cluster.server import Server
from repro.cluster.topology import Rack
from repro.simulation.engine import Simulator
from repro.transfer.links import GB, FairShareLink, LinkSpec


class Cluster:
    """The full simulated cluster: racks -> servers -> GPUs + shared storage."""

    def __init__(
        self,
        sim: Simulator,
        racks: list[Rack],
        *,
        storage_bandwidth: float = 32.0 * GB,
    ):
        if not racks:
            raise ValueError("cluster needs at least one rack")
        self.sim = sim
        self.racks = racks
        # Shared model-checkpoint storage (cluster I/O tier of the HRG).
        self.storage = FairShareLink(
            sim, LinkSpec("cluster/storage", storage_bandwidth, 1e-3)
        )
        self._servers = {s.sid: s for rack in racks for s in rack.servers}
        self._gpus = {g.gid: g for rack in racks for g in rack.gpus}
        self._racks = {rack.rid: rack for rack in racks}

    @property
    def servers(self) -> list[Server]:
        return list(self._servers.values())

    @property
    def gpus(self) -> list[GPU]:
        return list(self._gpus.values())

    def server(self, sid: str) -> Server:
        return self._servers[sid]

    def gpu(self, gid: str) -> GPU:
        return self._gpus[gid]

    def rack_of(self, server: Server) -> Rack:
        return self._racks[server.rack_id]

    @property
    def gpu_count(self) -> int:
        return len(self._gpus)

    # ------------------------------------------------------------------
    # Fragmentation statistics (§3.1 / Table 1 / Fig. 2)
    # ------------------------------------------------------------------
    def subscription_rate(self) -> float:
        """Mean GPU SM subscription across the cluster (can exceed 1.0)."""
        gpus = self.gpus
        return sum(g.background_sm_request for g in gpus) / len(gpus)

    def free_gpu_probability(self, min_free_fraction: float = 0.85) -> float:
        """Fraction of GPUs with at least ``min_free_fraction`` memory free."""
        gpus = self.gpus
        free = sum(1 for g in gpus if g.free_fraction >= min_free_fraction)
        return free / len(gpus)

    def colocated_probability(self, count: int, min_free_fraction: float = 0.85) -> float:
        """Fraction of servers offering ``count`` co-located free GPUs."""
        servers = self.servers
        hits = sum(
            1
            for s in servers
            if sum(1 for g in s.gpus if g.free_fraction >= min_free_fraction) >= count
        )
        return hits / len(servers)

    def mean_serving_utilization(self, elapsed: float) -> float:
        """Average serving-side SM utilization over ``elapsed`` seconds."""
        gpus = self.gpus
        return sum(g.utilization(elapsed) for g in gpus) / len(gpus)


def make_paper_cluster(
    sim: Simulator,
    *,
    gpu_spec: GPUSpec | None = None,
    rdma_fraction: float = 0.5,
    n_racks: int = 6,
) -> Cluster:
    """Build the 42-server / 82-GPU topology of the paper's evaluation."""
    layout = [1] * 10 + [2] * 28 + [4] * 4  # 42 servers, 82 GPUs
    return _build(sim, layout, gpu_spec, rdma_fraction, n_racks)


def make_small_cluster(
    sim: Simulator,
    *,
    n_servers: int = 8,
    gpus_per_server: int = 2,
    gpu_spec: GPUSpec | None = None,
    rdma_fraction: float = 0.5,
    n_racks: int = 2,
) -> Cluster:
    """A small topology for unit tests and quick examples."""
    layout = [gpus_per_server] * n_servers
    return _build(sim, layout, gpu_spec, rdma_fraction, n_racks)


def _build(
    sim: Simulator,
    layout: list[int],
    gpu_spec: GPUSpec | None,
    rdma_fraction: float,
    n_racks: int,
) -> Cluster:
    spec = gpu_spec or GPUSpec()
    racks = [Rack(sim, f"rack-{r}") for r in range(n_racks)]
    gpu_index = 0
    for i, n_gpus in enumerate(layout):
        gpus = []
        for _ in range(n_gpus):
            gpus.append(GPU(f"gpu-{gpu_index}", spec))
            gpu_index += 1
        # Deterministic striping of RDMA-capable servers across the fleet.
        rdma = (i * rdma_fraction) % 1.0 + rdma_fraction >= 1.0 if rdma_fraction > 0 else False
        server = Server(sim, f"server-{i}", gpus, rdma=rdma)
        racks[i % n_racks].add_server(server)
    return Cluster(sim, racks)
