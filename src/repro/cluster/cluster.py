"""Cluster assembly and reference topologies.

``make_paper_cluster`` reproduces the paper's testbed scale: 42 servers and
82 GPUs (10 single-GPU, 28 dual-GPU, 4 quad-GPU nodes — the mix that yields
the paper's observation that 4 co-located GPUs are almost never available).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpu import GPU, GPUSpec
from repro.cluster.server import Server
from repro.cluster.topology import Rack
from repro.simulation.engine import Simulator
from repro.transfer.links import GB, FairShareLink, LinkSpec

DEFAULT_STORAGE_BANDWIDTH = 32.0 * GB


class Cluster:
    """The full simulated cluster: racks -> servers -> GPUs + shared storage."""

    def __init__(
        self,
        sim: Simulator,
        racks: list[Rack],
        *,
        storage_bandwidth: float = DEFAULT_STORAGE_BANDWIDTH,
    ):
        if not racks:
            raise ValueError("cluster needs at least one rack")
        self.sim = sim
        self.racks = racks
        # Shared model-checkpoint storage (cluster I/O tier of the HRG).
        self.storage = FairShareLink(
            sim, LinkSpec("cluster/storage", storage_bandwidth, 1e-3)
        )
        self._servers = {s.sid: s for rack in racks for s in rack.servers}
        self._gpus = {g.gid: g for rack in racks for g in rack.gpus}
        self._racks = {rack.rid: rack for rack in racks}

    @property
    def servers(self) -> list[Server]:
        return list(self._servers.values())

    @property
    def gpus(self) -> list[GPU]:
        return list(self._gpus.values())

    def server(self, sid: str) -> Server:
        return self._servers[sid]

    def gpu(self, gid: str) -> GPU:
        return self._gpus[gid]

    def rack_of(self, server: Server) -> Rack:
        return self._racks[server.rack_id]

    @property
    def gpu_count(self) -> int:
        return len(self._gpus)

    # ------------------------------------------------------------------
    # Fragmentation statistics (§3.1 / Table 1 / Fig. 2)
    # ------------------------------------------------------------------
    def subscription_rate(self) -> float:
        """Mean GPU SM subscription across the cluster (can exceed 1.0)."""
        gpus = self.gpus
        return sum(g.background_sm_request for g in gpus) / len(gpus)

    def free_gpu_probability(self, min_free_fraction: float = 0.85) -> float:
        """Fraction of GPUs with at least ``min_free_fraction`` memory free."""
        gpus = self.gpus
        free = sum(1 for g in gpus if g.free_fraction >= min_free_fraction)
        return free / len(gpus)

    def colocated_probability(self, count: int, min_free_fraction: float = 0.85) -> float:
        """Fraction of servers offering ``count`` co-located free GPUs."""
        servers = self.servers
        hits = sum(
            1
            for s in servers
            if sum(1 for g in s.gpus if g.free_fraction >= min_free_fraction) >= count
        )
        return hits / len(servers)

    def mean_serving_utilization(self, elapsed: float) -> float:
        """Average serving-side SM utilization over ``elapsed`` seconds."""
        gpus = self.gpus
        return sum(g.utilization(elapsed) for g in gpus) / len(gpus)


@dataclass(frozen=True)
class ServerPlacement:
    """Where one server of a reference topology sits (pure layout data).

    Shard partitioners consume placements to carve server-affine
    sub-clusters whose names, rack assignment and RDMA striping are
    *identical* to the full topology's — ``server-7`` in a shard is the
    same machine as ``server-7`` in the monolithic cluster.
    """

    index: int
    n_gpus: int
    rack: int
    rdma: bool
    gpu_start: int  # global index of the server's first GPU


# (layout, rdma_fraction, n_racks) for each named reference topology.
_KIND_PARAMS: dict[str, tuple[list[int], float, int]] = {
    "paper": ([1] * 10 + [2] * 28 + [4] * 4, 0.5, 6),  # 42 servers, 82 GPUs
    "small": ([2] * 8, 0.5, 2),
}


def _placements(
    layout: list[int], rdma_fraction: float, n_racks: int
) -> list[ServerPlacement]:
    out = []
    gpu_index = 0
    for i, n_gpus in enumerate(layout):
        # Deterministic striping of RDMA-capable servers across the fleet.
        rdma = (i * rdma_fraction) % 1.0 + rdma_fraction >= 1.0 if rdma_fraction > 0 else False
        out.append(ServerPlacement(i, n_gpus, i % n_racks, rdma, gpu_index))
        gpu_index += n_gpus
    return out


def server_placements(kind: str) -> list[ServerPlacement]:
    """The full placement list of a named reference topology."""
    if kind not in _KIND_PARAMS:
        raise ValueError(
            f"unknown cluster kind {kind!r}; available: {sorted(_KIND_PARAMS)}"
        )
    layout, rdma_fraction, n_racks = _KIND_PARAMS[kind]
    return _placements(layout, rdma_fraction, n_racks)


def make_paper_cluster(
    sim: Simulator,
    *,
    gpu_spec: GPUSpec | None = None,
    rdma_fraction: float = 0.5,
    n_racks: int = 6,
) -> Cluster:
    """Build the 42-server / 82-GPU topology of the paper's evaluation."""
    layout = [1] * 10 + [2] * 28 + [4] * 4  # 42 servers, 82 GPUs
    return _build(sim, layout, gpu_spec, rdma_fraction, n_racks)


def make_small_cluster(
    sim: Simulator,
    *,
    n_servers: int = 8,
    gpus_per_server: int = 2,
    gpu_spec: GPUSpec | None = None,
    rdma_fraction: float = 0.5,
    n_racks: int = 2,
) -> Cluster:
    """A small topology for unit tests and quick examples."""
    layout = [gpus_per_server] * n_servers
    return _build(sim, layout, gpu_spec, rdma_fraction, n_racks)


def make_cluster_subset(
    sim: Simulator,
    kind: str,
    server_indices,
    *,
    gpu_spec: GPUSpec | None = None,
) -> Cluster:
    """Build the sub-cluster of a named topology owning ``server_indices``.

    Server names, GPU names, rack membership and RDMA capability all match
    the full topology (racks with no chosen server are simply absent).
    The checkpoint-storage tier is shared fleet-wide in the monolithic
    cluster, so a shard gets its proportional (by GPU count) slice of the
    storage bandwidth — sharding must not mint aggregate I/O capacity.
    """
    placements = server_placements(kind)
    chosen = sorted(set(int(i) for i in server_indices))
    if not chosen:
        raise ValueError("server_indices must not be empty")
    if chosen[0] < 0 or chosen[-1] >= len(placements):
        raise ValueError(
            f"server indices {chosen} out of range for {kind!r} "
            f"({len(placements)} servers)"
        )
    spec = gpu_spec or GPUSpec()
    total_gpus = sum(p.n_gpus for p in placements)
    racks: dict[int, Rack] = {}
    sub_gpus = 0
    for i in chosen:
        placement = placements[i]
        gpus = [
            GPU(f"gpu-{placement.gpu_start + j}", spec)
            for j in range(placement.n_gpus)
        ]
        sub_gpus += placement.n_gpus
        server = Server(sim, f"server-{i}", gpus, rdma=placement.rdma)
        rack = racks.setdefault(
            placement.rack, Rack(sim, f"rack-{placement.rack}")
        )
        rack.add_server(server)
    storage = DEFAULT_STORAGE_BANDWIDTH * sub_gpus / total_gpus
    return Cluster(
        sim,
        [racks[r] for r in sorted(racks)],
        storage_bandwidth=storage,
    )


def _build(
    sim: Simulator,
    layout: list[int],
    gpu_spec: GPUSpec | None,
    rdma_fraction: float,
    n_racks: int,
) -> Cluster:
    spec = gpu_spec or GPUSpec()
    racks = [Rack(sim, f"rack-{r}") for r in range(n_racks)]
    for placement in _placements(layout, rdma_fraction, n_racks):
        gpus = [
            GPU(f"gpu-{placement.gpu_start + j}", spec)
            for j in range(placement.n_gpus)
        ]
        server = Server(
            sim, f"server-{placement.index}", gpus, rdma=placement.rdma
        )
        racks[placement.rack].add_server(server)
    return Cluster(sim, racks)
