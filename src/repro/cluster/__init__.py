"""Simulated fragmented serverless GPU cluster.

Replaces the paper's 42-server / 82-GPU Kubernetes testbed.  The cluster
carries background multi-tenant load (the fragmentation churn of §3.1),
exposes the allocation interface FlexPipe and the baselines place pipeline
stages through, and provides the Hierarchical Resource Graph used for
topology-aware scaling coordination (§7).
"""

from repro.cluster.gpu import GPU, GPUSpec
from repro.cluster.server import Server
from repro.cluster.topology import Rack
from repro.cluster.cluster import Cluster, make_paper_cluster, make_small_cluster
from repro.cluster.fragmentation import BackgroundTenant, FragmentationModel
from repro.cluster.allocator import AllocationError, GPUAllocator, StageReservation
from repro.cluster.hrg import HierarchicalResourceGraph

__all__ = [
    "GPU",
    "GPUSpec",
    "Server",
    "Rack",
    "Cluster",
    "make_paper_cluster",
    "make_small_cluster",
    "BackgroundTenant",
    "FragmentationModel",
    "AllocationError",
    "GPUAllocator",
    "StageReservation",
    "HierarchicalResourceGraph",
]
