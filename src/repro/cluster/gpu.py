"""GPU device model.

A GPU tracks three kinds of occupancy:

* **background tenants** — other workloads in the shared serverless cluster
  (source of fragmentation; they consume memory and subscribe SM share);
* **stage allocations** — pipeline stages placed by a serving system
  (parameters + KV-cache reservation);
* **busy time** — accumulated execution seconds, used for the utilization
  axes of Fig. 12 and Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transfer.links import GB


@dataclass(frozen=True)
class GPUSpec:
    """Static GPU parameters (defaults model an 80 GB A100)."""

    name: str = "A100-80G"
    memory: float = 80.0 * GB
    sm_count: int = 108

    def __post_init__(self) -> None:
        if self.memory <= 0:
            raise ValueError(f"GPU memory must be positive, got {self.memory}")


class GPU:
    """A single accelerator inside a :class:`~repro.cluster.server.Server`."""

    def __init__(self, gid: str, spec: GPUSpec | None = None):
        self.gid = gid
        self.spec = spec or GPUSpec()
        self.server = None  # set by Server
        # Background (fragmentation) load.
        self.background_mem = 0.0
        self.background_sm_request = 0.0  # subscription, can exceed 1.0
        self.background_sm_usage = 0.0  # actual usage, <= 1.0
        # Cordoned: reclaimed by the platform — the allocator refuses new
        # serving placements here regardless of free bytes, closing the
        # window between a victim freeing memory and the blocker
        # absorbing it.
        self.cordoned = False
        # Serving load: allocation-id -> bytes.
        self._stage_mem: dict[str, float] = {}
        # Models with a stage resident here (anti-affinity rule, §6.2).
        self.model_tags: dict[str, int] = {}
        # Serving bytes per resident model (share-cap observability: which
        # tenant occupies how much of this device).
        self.model_bytes: dict[str, float] = {}
        # Execution accounting.
        self.busy_seconds = 0.0
        self._busy_until = 0.0

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @property
    def serving_mem(self) -> float:
        return sum(self._stage_mem.values())

    @property
    def stage_allocations(self) -> dict[str, float]:
        """Snapshot of live stage allocations (id -> bytes), for auditing."""
        return dict(self._stage_mem)

    @property
    def used_memory(self) -> float:
        return self.background_mem + self.serving_mem

    @property
    def free_memory(self) -> float:
        return self.spec.memory - self.used_memory

    @property
    def free_fraction(self) -> float:
        return max(self.free_memory, 0.0) / self.spec.memory

    def reserve(self, alloc_id: str, nbytes: float, model: str | None = None) -> None:
        """Reserve ``nbytes`` for a stage allocation.

        Raises ``ValueError`` on over-commit — serving allocations are never
        oversubscribed (only background tenants may be, per §3.1).
        """
        if alloc_id in self._stage_mem:
            raise ValueError(f"duplicate allocation id {alloc_id!r} on {self.gid}")
        if nbytes < 0:
            raise ValueError(f"negative reservation: {nbytes}")
        if nbytes > self.free_memory + 1e-6:
            raise ValueError(
                f"over-commit on {self.gid}: need {nbytes / GB:.2f} GB, "
                f"free {self.free_memory / GB:.2f} GB"
            )
        self._stage_mem[alloc_id] = nbytes
        if model is not None:
            self.model_tags[model] = self.model_tags.get(model, 0) + 1
            self.model_bytes[model] = self.model_bytes.get(model, 0.0) + nbytes

    def release(self, alloc_id: str, model: str | None = None) -> None:
        """Release a previous reservation (idempotent on unknown ids is NOT
        allowed — unknown ids raise, catching double-release bugs)."""
        if alloc_id not in self._stage_mem:
            raise KeyError(f"unknown allocation id {alloc_id!r} on {self.gid}")
        nbytes = self._stage_mem.pop(alloc_id)
        if model is not None:
            count = self.model_tags.get(model, 0) - 1
            if count <= 0:
                self.model_tags.pop(model, None)
                self.model_bytes.pop(model, None)
            else:
                self.model_tags[model] = count
                self.model_bytes[model] = max(
                    self.model_bytes.get(model, 0.0) - nbytes, 0.0
                )

    def resize(self, alloc_id: str, nbytes: float, model: str | None = None) -> None:
        """Grow/shrink an existing reservation (KV-cache growth)."""
        if alloc_id not in self._stage_mem:
            raise KeyError(f"unknown allocation id {alloc_id!r} on {self.gid}")
        current = self._stage_mem[alloc_id]
        if nbytes - current > self.free_memory + 1e-6:
            raise ValueError(f"over-commit resizing {alloc_id!r} on {self.gid}")
        self._stage_mem[alloc_id] = nbytes
        if model is not None and model in self.model_bytes:
            self.model_bytes[model] = max(
                self.model_bytes[model] + (nbytes - current), 0.0
            )

    def hosts_model(self, model: str) -> bool:
        return model in self.model_tags

    @property
    def colocated_model_count(self) -> int:
        """Distinct serving models resident on this GPU (Eq. 9 indicator)."""
        return len(self.model_tags)

    # ------------------------------------------------------------------
    # Execution accounting
    # ------------------------------------------------------------------
    def occupy(self, now: float, duration: float) -> float:
        """Serialise an execution of ``duration`` on this GPU.

        Returns the completion time; if the GPU is already busy the work
        starts when the previous work finishes (stages execute serially).
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        start = max(now, self._busy_until)
        self._busy_until = start + duration
        self.busy_seconds += duration
        return self._busy_until

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` wall-clock spent executing serving work."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_seconds / elapsed, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GPU({self.gid}, free={self.free_memory / GB:.1f}GB)"
