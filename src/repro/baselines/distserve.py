"""DistServe-style prefill/decode disaggregation (related work, §10).

DistServe [60] separates prefill and decoding onto independent resource
pools so the two phases stop interfering and scale independently.  The
substrate executes whole requests on one replica chain, so the pool split
is expressed at the *routing* level: requests are classified by phase
dominance (prompt-heavy vs. generation-heavy, the same signal DistServe's
placement uses) and each class is served by its own replica pool with a
phase-optimised granularity:

* the **prefill pool** uses coarse stages — prefill is compute-bound and
  latency-sensitive (TTFT), so inter-stage hops are pure overhead;
* the **decode pool** uses finer stages — decode is memory-bound and
  throughput-oriented, so the larger aggregate batch capacity wins.

This preserves DistServe's observable behaviour (phase isolation,
per-phase scaling, goodput gains on mixed workloads) without modelling
the intra-request KV handoff its testbed performs; the substitution is
recorded in DESIGN.md.  Like the other baselines it cannot change a
pool's granularity at runtime — the capability FlexPipe adds.
"""

from __future__ import annotations

from repro.baselines.base import StaticPipelineSystem
from repro.core.context import ServingContext
from repro.models.zoo import ModelSpec
from repro.pipeline.router import ModelRouter
from repro.workloads.requests import Request


class DistServeSystem(StaticPipelineSystem):
    """Phase-disaggregated serving with per-pool static granularities."""

    name = "DistServe"

    def __init__(
        self,
        ctx: ServingContext,
        model_specs: list[ModelSpec],
        *,
        prefill_stages: int = 4,
        decode_stages: int = 16,
        prefill_fraction: float = 0.5,
        phase_ratio_threshold: float = 16.0,
        initial_replicas: int = 2,
        **kwargs,
    ):
        """``phase_ratio_threshold`` classifies a request as prefill-heavy
        when ``prompt_tokens / output_tokens`` exceeds it; 16 matches the
        coding-vs-conversation split of the Splitwise corpus.
        ``prefill_fraction`` is the share of initial replicas given to the
        prefill pool.
        """
        if not 0.0 < prefill_fraction < 1.0:
            raise ValueError(
                f"prefill_fraction must be in (0, 1), got {prefill_fraction}"
            )
        if phase_ratio_threshold <= 0:
            raise ValueError("phase_ratio_threshold must be positive")
        super().__init__(
            ctx,
            model_specs,
            n_stages=prefill_stages,
            initial_replicas=initial_replicas,
            reactive=True,
            **kwargs,
        )
        self.prefill_fraction = prefill_fraction
        self.phase_ratio_threshold = phase_ratio_threshold
        # The base class built the prefill side (plans, routers,
        # autoscalers).  Build the decode side alongside it.
        self.decode_plans = {}
        self.decode_routers: dict[str, ModelRouter] = {}
        for spec in model_specs:
            ladder = self.ladders[spec.name]
            stages = self.choose_stages(spec, ladder, decode_stages)
            self.decode_plans[spec.name] = ladder.plan(stages)
            self.decode_routers[spec.name] = ModelRouter(
                ctx.sim, f"{spec.name}/decode"
            )
        self.prefill_routed = 0
        self.decode_routed = 0

    # ------------------------------------------------------------------
    def all_routers(self) -> dict[str, "ModelRouter"]:
        routers = super().all_routers()
        for name, router in self.decode_routers.items():
            routers[f"{name}/decode"] = router
        return routers

    # ------------------------------------------------------------------
    def classify(self, request: Request) -> str:
        """Phase dominance: which pool should own this request."""
        ratio = request.prompt_tokens / max(request.output_tokens, 1)
        return "prefill" if ratio >= self.phase_ratio_threshold else "decode"

    def submit(self, request: Request) -> None:
        if request.model not in self.routers:
            raise KeyError(f"{self.name} does not serve model {request.model!r}")
        self.metrics.on_submit(request)
        self.monitors[request.model].observe(self.sim.now)
        if self.classify(request) == "prefill":
            self.prefill_routed += 1
            self.routers[request.model].submit(request)
        else:
            self.decode_routed += 1
            self.decode_routers[request.model].submit(request)

    # ------------------------------------------------------------------
    def start(self) -> None:
        for model in self.plans:
            profile = self.profiles[model]
            n_prefill = max(round(self.initial_replicas * self.prefill_fraction), 1)
            n_decode = max(self.initial_replicas - n_prefill, 1)
            for _ in range(n_prefill):
                replica = self._deploy(profile, self.plans[model], event_kind="initial")
                scaler = self.autoscalers.get(model)
                if scaler is not None:
                    scaler.loading.append(replica)
            for _ in range(n_decode):
                self._deploy_decode(profile, model)

    def _deploy_decode(self, profile, model: str):
        """Decode-pool replicas attach to the decode router on activation."""
        plan = self.decode_plans[model]
        replica = self.factory.deploy(
            profile,
            plan,
            batch_cap=self.batch_cap,
            scorer=self._scorer(model),
            event_kind="initial",
        )
        # Rebind activation/teardown to the decode router: the factory
        # wired the shared (prefill) router by default.
        replica.on_active = self.decode_routers[model].add
        base_released = replica.on_released

        def released(r):
            # The factory's teardown only knows the prefill routers, so a
            # released decode replica would linger in its decode router
            # forever (a zombie gateway entry) without this removal.
            self.decode_routers[model].remove(r)
            if base_released is not None:
                base_released(r)

        replica.on_released = released
        return replica

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        super()._sample()
        # The base sampler only sees the prefill routers' queues; fold the
        # decode side into the same series so Fig. 3-style queue metrics
        # cover both pools.
        extra = sum(r.waiting_count for r in self.decode_routers.values())
        if extra and self.metrics.queue_samples:
            t, q = self.metrics.queue_samples[-1]
            self.metrics.queue_samples[-1] = (t, q + extra)

    def pool_counts(self, model: str) -> tuple[int, int]:
        """Active (prefill, decode) replica counts for a model."""
        prefill = len([r for r in self.routers[model].replicas if r.accepting])
        decode = len(
            [r for r in self.decode_routers[model].replicas if r.accepting]
        )
        return prefill, decode
