"""Tetris model: memory-efficient serverless inference via tensor sharing.

Tetris [24] reduces hosting memory by sharing identical tensors across
instances on the same server, achieving high packing density — but it has
no specialised pipeline parallelism (models run at the coarsest feasible
granularity), modest batch capacity, and scales slowly.  High GPU
utilization with poor goodput under bursts is its signature in Fig. 12.
"""

from __future__ import annotations

from repro.baselines.base import StaticPipelineSystem
from repro.core.context import ServingContext
from repro.models.zoo import ModelSpec


class TetrisSystem(StaticPipelineSystem):
    name = "Tetris"

    def __init__(
        self,
        ctx: ServingContext,
        model_specs: list[ModelSpec],
        *,
        initial_replicas: int = 1,
        batch_cap: int = 16,  # no paged/pipeline-aware batching
        loading_speedup: float = 1.3,  # tensor sharing skips duplicate loads
        scale_interval: float = 2.0,  # slow reconciliation loop
        scale_cooldown: float = 5.0,
        **kwargs,
    ):
        super().__init__(
            ctx,
            model_specs,
            initial_replicas=initial_replicas,
            reactive=True,
            batch_cap=batch_cap,
            loading_speedup=loading_speedup,
            prefer_colocation=True,  # pack instances densely
            scale_interval=scale_interval,
            scale_cooldown=scale_cooldown,
            **kwargs,
        )

    def choose_stages(self, spec: ModelSpec, ladder, requested: int) -> int:
        """Coarsest feasible granularity: whole model on one GPU if it fits."""
        return ladder.coarsest
