"""MuxServe model: flexible spatial-temporal multiplexing.

MuxServe [13] colocates multiple models on shared GPUs to maximise
utilization via statistical multiplexing.  On the shared substrate this is
expressed as a placement preference for already-occupied GPUs plus the
Eq. 9 interference penalty, which is mild for stable workloads (the
conditions MuxServe optimises for) and quadratic in CV for bursty ones —
exactly the trade-off Fig. 8/9 of the paper exposes.
"""

from __future__ import annotations

from repro.baselines.base import StaticPipelineSystem
from repro.core.context import ServingContext
from repro.models.zoo import ModelSpec
from repro.refactoring.granularity import GranularityPolicy


class MuxServeSystem(StaticPipelineSystem):
    name = "MuxServe"

    def __init__(
        self,
        ctx: ServingContext,
        model_specs: list[ModelSpec],
        *,
        historical_cv: float = 1.0,
        initial_replicas: int = 1,
        **kwargs,
    ):
        self._historical_cv = historical_cv
        super().__init__(
            ctx,
            model_specs,
            initial_replicas=initial_replicas,
            reactive=False,  # multiplexing instead of scaling
            prefer_colocation=True,
            gamma0=0.12,  # sharing-heavy placement amplifies interference
            **kwargs,
        )

    def choose_stages(self, spec: ModelSpec, ladder, requested: int) -> int:
        policy = GranularityPolicy(self.profiles[spec.name], ladder)
        return policy.select(self._historical_cv)
