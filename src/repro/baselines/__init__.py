"""Baseline serving systems (§9 comparison set).

Policy-faithful models of the four comparators, all running on the same
substrate (cluster, cost model, pipeline runtime) as FlexPipe so that the
measured differences isolate *policy*:

* **AlpaServe** — offline pipeline optimisation over historical request
  patterns; static provisioning for peak; no runtime adaptation.
* **MuxServe** — statistical multiplexing: models share GPUs to maximise
  utilization, paying the Eq. 9 interference penalty under bursty load.
* **ServerlessLLM** — whole-pipeline reactive scaling with fast multi-tier
  checkpoint loading, but fixed pipeline granularity.
* **Tetris** — memory-efficient serverless hosting via tensor sharing;
  no pipeline specialisation, modest batch capacity, slow reactive scaling.
* **DistServe** — prefill/decode disaggregation (related-work extension):
  phase-dominant routing onto independently scaled, phase-optimised pools.
"""

from repro.baselines.base import StaticPipelineSystem
from repro.baselines.alpaserve import AlpaServeSystem
from repro.baselines.muxserve import MuxServeSystem
from repro.baselines.serverlessllm import ServerlessLLMSystem
from repro.baselines.tetris import TetrisSystem
from repro.baselines.distserve import DistServeSystem

__all__ = [
    "StaticPipelineSystem",
    "AlpaServeSystem",
    "MuxServeSystem",
    "ServerlessLLMSystem",
    "TetrisSystem",
    "DistServeSystem",
]
