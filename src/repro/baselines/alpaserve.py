"""AlpaServe model: offline pipeline optimisation on historical patterns.

AlpaServe [25] chooses pipeline configurations that maximise long-term
goodput over a *historical* trace, then provisions statically for peak.
We reproduce this by running FlexPipe's own Eq. 4 quality score at the
historical CV (default 1.0) to pick the stage count offline — the best
static configuration the design space offers — and disabling all runtime
adaptation.  Under shifted request distributions the configuration is
simply wrong, which is the paper's critique.
"""

from __future__ import annotations

from repro.baselines.base import StaticPipelineSystem
from repro.core.context import ServingContext
from repro.models.zoo import ModelSpec
from repro.refactoring.granularity import GranularityPolicy


class AlpaServeSystem(StaticPipelineSystem):
    name = "AlpaServe"

    def __init__(
        self,
        ctx: ServingContext,
        model_specs: list[ModelSpec],
        *,
        historical_cv: float = 1.0,
        initial_replicas: int = 1,
        prompt_tokens: int = 512,
        output_tokens: int = 16,
        **kwargs,
    ):
        self._historical_cv = historical_cv
        self._offline_prompt = prompt_tokens
        self._offline_output = output_tokens
        super().__init__(
            ctx,
            model_specs,
            initial_replicas=initial_replicas,
            reactive=False,  # static provisioning for peak
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            **kwargs,
        )

    def choose_stages(self, spec: ModelSpec, ladder, requested: int) -> int:
        """Offline optimisation: best rung for the *historical* CV."""
        policy = GranularityPolicy(
            self.profiles[spec.name],
            ladder,
            prompt_tokens=self._offline_prompt,
            output_tokens=self._offline_output,
        )
        return policy.select(self._historical_cv)
