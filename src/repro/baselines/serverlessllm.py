"""ServerlessLLM model: fast checkpoint loading + whole-pipeline scaling.

ServerlessLLM [16] contributes a multi-tier checkpoint loading system
(several times faster than naive storage loads) and locality-aware
serverless scale-up of *whole* inference pipelines at a fixed parallelism
degree (DeepSpeed-style).  It reacts quickly but always in coarse units:
every scale-out pays a full-pipeline load, and granularity never adapts.
"""

from __future__ import annotations

from repro.baselines.base import StaticPipelineSystem
from repro.core.context import ServingContext
from repro.models.zoo import ModelSpec


class ServerlessLLMSystem(StaticPipelineSystem):
    name = "ServerlessLLM"

    def __init__(
        self,
        ctx: ServingContext,
        model_specs: list[ModelSpec],
        *,
        n_stages: int = 4,
        initial_replicas: int = 1,
        loading_speedup: float = 3.0,  # multi-tier checkpoint streaming
        idle_window: float = 10.0,  # aggressive serverless reclamation
        **kwargs,
    ):
        super().__init__(
            ctx,
            model_specs,
            n_stages=n_stages,
            initial_replicas=initial_replicas,
            reactive=True,
            loading_speedup=loading_speedup,
            idle_window=idle_window,
            **kwargs,
        )
        # Whole-pipeline units pay full distributed-runtime initialization
        # (process group setup across every stage) on each scale-up; there
        # is no warm-start path to amortise it.
        self.factory.startup_overhead = 12.0
