"""Shared machinery for static/reactive baseline systems."""

from __future__ import annotations

from repro.core.context import ServingContext
from repro.core.deployment import ReplicaFactory
from repro.core.serving import ServingSystem
from repro.models.zoo import ModelSpec
from repro.partitioning.ladder import GranularityLadder
from repro.refactoring.placement import interference_multiplier, make_eq6_scorer
from repro.scaling.autoscaler import Autoscaler, AutoscalerConfig

BASELINE_STAGE_COUNTS = (1, 2, 4, 8, 16, 32)


class StaticPipelineSystem(ServingSystem):
    """A fixed-granularity serving system, optionally reactive.

    Subclasses choose the stage count policy, scaling behaviour, loading
    speed and GPU-sharing preference; none of them can change pipeline
    granularity at runtime — the capability FlexPipe adds.
    """

    name = "static"

    def __init__(
        self,
        ctx: ServingContext,
        model_specs: list[ModelSpec],
        *,
        n_stages: int = 4,
        initial_replicas: int = 1,
        reactive: bool = False,
        loading_speedup: float = 1.0,
        prefer_colocation: bool = False,
        batch_cap: int | None = None,
        max_replicas: int = 8,
        idle_window: float = 30.0,
        scale_interval: float = 0.5,
        scale_cooldown: float = 1.0,
        prompt_tokens: int = 512,
        output_tokens: int = 16,
        slo_deadline: float = 5.0,
        gamma0: float = 0.08,
        alpha_mux: float = 0.25,
    ):
        super().__init__(ctx, model_specs)
        self.initial_replicas = initial_replicas
        self.batch_cap = batch_cap
        self.prefer_colocation = prefer_colocation
        self._gamma0 = gamma0
        self._alpha_mux = alpha_mux
        self.factory = ReplicaFactory(
            ctx,
            routers=self.routers,
            metrics=self.metrics,
            on_request_complete=self._on_request_complete,
            warm_cache=None,  # the host-memory cache is FlexPipe's mechanism
            coordinator=None,
            interference=self._interference,
            loading_speedup=loading_speedup,
            cache_on_release=False,
        )
        self.plans = {}
        self.ladders: dict[str, GranularityLadder] = {}
        self.autoscalers: dict[str, Autoscaler] = {}
        for spec in model_specs:
            ladder = ctx.ladder(spec, BASELINE_STAGE_COUNTS)
            self.ladders[spec.name] = ladder
            stages = self.choose_stages(spec, ladder, n_stages)
            self.plans[spec.name] = ladder.plan(stages)
            if reactive:
                config = AutoscalerConfig(
                    interval=scale_interval,
                    slo_deadline=slo_deadline,
                    idle_window=idle_window,
                    max_replicas=max_replicas,
                    scale_out_cooldown=scale_cooldown,
                    prompt_tokens=prompt_tokens,
                    output_tokens=output_tokens,
                    batch_cap=batch_cap,
                )
                plan = self.plans[spec.name]
                self.autoscalers[spec.name] = Autoscaler(
                    ctx.sim,
                    self.routers[spec.name],
                    self.monitors[spec.name],
                    self.profiles[spec.name],
                    self.metrics,
                    self._deploy,
                    self.factory.release,
                    lambda cv, queue, p=plan: p,  # granularity is fixed
                    config,
                )

    # ------------------------------------------------------------------
    def choose_stages(
        self, spec: ModelSpec, ladder: GranularityLadder, requested: int
    ) -> int:
        """Snap the requested stage count to a feasible ladder rung."""
        counts = ladder.stage_counts
        if requested in counts:
            return requested
        feasible = [c for c in counts if c >= requested]
        return min(feasible) if feasible else max(counts)

    def _scorer(self, model: str):
        monitor = self.monitors[model]
        return make_eq6_scorer(
            lambda: monitor.cv(self.sim.now),
            gamma0=self._gamma0,
            alpha=self._alpha_mux,
            prefer_colocation=self.prefer_colocation,
        )

    def _interference(self, gpu) -> float:
        return interference_multiplier(
            gpu, self.max_cv(), gamma0=self._gamma0, alpha=self._alpha_mux
        )

    def _deploy(self, profile, plan, *, wait_time: float = 0.0, **kwargs):
        return self.factory.deploy(
            profile,
            plan,
            batch_cap=self.batch_cap,
            scorer=self._scorer(profile.spec.name),
            wait_time=wait_time,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def enable_qos(self, classes, **kwargs) -> None:
        """Reactive baselines also clamp scale-out to the share cap."""
        super().enable_qos(classes, **kwargs)
        for model, scaler in self.autoscalers.items():
            scaler.share_headroom = (
                lambda m=model: self.ctx.allocator.share_headroom(m)
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        for model, plan in self.plans.items():
            for _ in range(self.initial_replicas):
                replica = self._deploy(
                    self.profiles[model], plan, event_kind="initial"
                )
                scaler = self.autoscalers.get(model)
                if scaler is not None:
                    scaler.loading.append(replica)

    def shutdown(self) -> None:
        super().shutdown()
        for scaler in self.autoscalers.values():
            scaler.stop()
