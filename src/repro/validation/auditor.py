"""Conservation-law auditor for serving-system lifecycles.

The audited invariants (the checklist FlexPipe's no-drop/no-leak claim
reduces to):

``memory-accounting``
    Every live :class:`StageReservation` is backed by a matching
    allocation on its GPU (same id, same bytes), and no GPU's serving +
    background occupancy exceeds its capacity.
``replica-state-machine``
    Replicas only move LOADING -> ACTIVE -> DRAINING -> RELEASED (with
    LOADING -> DRAINING as the cancel-during-load path).
``replica-anomalies``
    No replica recorded an accounting irregularity (negative chain
    counters, double chain retirement, illegal transitions).
``chain-accounting``
    At quiesce no chain holds phantom in-flight jobs, and released
    replicas hold no unreleased reservation on any chain, current or
    retired (retired chains release exactly once).
``router-reconciliation``
    Per router: ``submitted == routed + pending``; across layers, total
    routed equals total accepted by replicas.
``replica-conservation``
    Per replica: everything it accepted is completed or still queued/in
    flight — a replica cannot silently lose a routed request.
``router-hygiene``
    No router still lists a RELEASED replica (zombie gateway entries).
``request-conservation`` / ``completion-uniqueness``
    Every generated request is rejected at the admission gate, completed
    exactly once, or still resident in an accounted queue — none lost.
``admission-accounting`` / ``shed-accounting``
    Every gate's books balance — ``offered == admitted + shed`` at the
    aggregate level and per tenant (tenant triples must also sum to the
    aggregate) — and sheds are *exactly once*: the number of requests
    marked rejected equals the gates' shed count, and no shed request
    ever completes.
``share-cap``
    A tenant with a configured GPU share cap never reserves — not even
    transiently (the high-water mark is checked too) — more than its
    fraction of fleet GPU memory.  Under *elastic* contracts the bound
    loosens to cap + currently-borrowed bytes (the strict accounting
    moves to ``borrow-accounting``).
``borrow-accounting`` / ``borrow-reclaim-latency``
    Elastic contracts only: every borrower's ledger sum equals its
    overage above cap (so every borrowed byte is returned by quiesce —
    at quiesce the ledger is empty and per-tenant borrowed == returned
    totals), no tenant ever exceeded its cap beyond the ledger, an
    over-committed lender always has an open reclaim demand, and no
    demand stays open past the allocator's reclamation-latency bound.
``preemption-accounting``
    Every preempted pending deploy stays preempted (it never serves) and
    released all of its reservations exactly once; at quiesce no pending
    claim is still registered with the allocator.  Prepared-chain claims
    (an inflight refactoring's not-yet-switched target) are held to the
    same rules.
``prepared-claim``
    No refactor transition both switched in and was aborted — a
    cancelled preparation never serves.
``inplace-service-gap``
    A replica undergoing an in-place transition never left ACTIVE
    between the transition's start and its switch (no service gap).
``allocator-empty``
    After shutdown + quiesce the allocator holds no live reservation and
    no GPU carries a stage allocation (no leaked reservations).
``span-conservation``
    Traced runs only: every finalized request trace tiles its latency
    interval exactly — spans are contiguous, start at arrival and end at
    completion — so tail attribution accounts for every second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.pipeline.replica import (
    ALLOWED_TRANSITIONS,
    PipelineReplica,
    ReplicaState,
)

# Capacity comparisons happen at the 10^10-byte scale, where one float64
# ulp is ~1.5e-5 bytes — an exactly-full GPU (the reclamation blocker
# reserves precisely free_memory) can overshoot a tighter epsilon.
_CAPACITY_EPS = 1e-3


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough detail to reproduce it."""

    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.invariant}] {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised by :meth:`InvariantAuditor.assert_clean`."""

    def __init__(self, violations: list[Violation]):
        self.violations = violations
        lines = "\n".join(f"  {v}" for v in violations)
        super().__init__(f"{len(violations)} invariant violation(s):\n{lines}")


class InvariantAuditor:
    """Checks conservation laws over one serving system.

    ``generators`` (workload generators) and ``gates`` (admission gates)
    are optional; when given, request conservation is checked against the
    true generated population rather than the system's own offered count.
    """

    def __init__(self, system, *, generators: Iterable = (), gates: Iterable = ()):
        self.system = system
        self.generators = list(generators)
        self.gates = list(gates)

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def routers(self) -> dict[str, object]:
        """All routers, including phase-disaggregated pools (DistServe)."""
        return self.system.all_routers()

    def replicas(self) -> list[PipelineReplica]:
        """Every replica the system ever created."""
        return self.system.all_replicas()

    @property
    def _allocator(self):
        return self.system.ctx.allocator

    @property
    def _cluster(self):
        return self.system.ctx.cluster

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def audit_running(self) -> list[Violation]:
        """The invariants that must hold at *any* instant mid-run.

        Illegal transitions are caught here through the anomaly log the
        replica records at the moment they happen; the full
        state-history replay is deferred to quiesce, keeping the per-tick
        cost linear in live state rather than in run length.
        """
        out: list[Violation] = []
        out += self._check_memory_accounting()
        out += self._check_anomalies()
        out += self._check_share_caps()
        out += self._check_borrow_accounting()
        return out

    def audit_quiesce(self, *, expect_empty_allocator: bool = True) -> list[Violation]:
        """The full set, valid once the simulator has gone idle.

        ``expect_empty_allocator`` should be True when the system was
        shut down before quiescing (the no-leak invariant); pass False to
        audit a run that intentionally leaves replicas serving.
        """
        out = self.audit_running()
        out += self._check_state_machines()
        out += self._check_replica_conservation()
        out += self._check_chain_accounting()
        out += self._check_router_reconciliation()
        out += self._check_router_hygiene()
        out += self._check_request_conservation()
        out += self._check_admission_accounting()
        out += self._check_preemption_accounting(
            expect_no_pending=expect_empty_allocator
        )
        out += self._check_borrow_quiesce()
        out += self._check_prepared_claims()
        out += self._check_inplace_service()
        out += self._check_partial_activation()
        out += self._check_span_conservation()
        if expect_empty_allocator:
            out += self._check_allocator_empty()
        return out

    def assert_clean(self, violations: list[Violation] | None = None) -> None:
        found = self.audit_quiesce() if violations is None else violations
        if found:
            raise InvariantViolationError(found)

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------
    def _check_memory_accounting(self) -> list[Violation]:
        out = [
            Violation("memory-accounting", problem)
            for problem in self._allocator.audit_balance()
        ]
        for gpu in self._cluster.gpus:
            if gpu.used_memory > gpu.spec.memory + _CAPACITY_EPS:
                out.append(
                    Violation(
                        "memory-accounting",
                        f"{gpu.gid} over capacity: used {gpu.used_memory:.0f} "
                        f"of {gpu.spec.memory:.0f} bytes",
                    )
                )
        return out

    def _check_state_machines(self) -> list[Violation]:
        out: list[Violation] = []
        for replica in self.replicas():
            history = replica.state_history
            if not history or history[0][1] is not ReplicaState.LOADING:
                out.append(
                    Violation(
                        "replica-state-machine",
                        f"{replica.name} did not start LOADING: {history!r}",
                    )
                )
                continue
            for (_, prev), (t, cur) in zip(history, history[1:]):
                if cur not in ALLOWED_TRANSITIONS[prev]:
                    out.append(
                        Violation(
                            "replica-state-machine",
                            f"{replica.name} moved {prev.value} -> {cur.value} "
                            f"at t={t:.6f}",
                        )
                    )
            if replica.state is not history[-1][1]:
                out.append(
                    Violation(
                        "replica-state-machine",
                        f"{replica.name} state {replica.state.value} disagrees "
                        f"with history tail {history[-1][1].value}",
                    )
                )
        return out

    def _check_anomalies(self) -> list[Violation]:
        return [
            Violation("replica-anomalies", f"{replica.name}: {anomaly}")
            for replica in self.replicas()
            for anomaly in replica.anomalies
        ]

    def _check_replica_conservation(self) -> list[Violation]:
        """Per replica: everything it accepted is completed or queued."""
        out: list[Violation] = []
        for replica in self.replicas():
            accounted = (
                replica.completed_requests
                + len(replica.batcher)
                + replica.inflight_requests
            )
            if replica.accepted_requests != accounted:
                out.append(
                    Violation(
                        "replica-conservation",
                        f"{replica.name} accepted {replica.accepted_requests} "
                        f"request(s) but accounts for {accounted} "
                        f"(completed {replica.completed_requests}, queued "
                        f"{len(replica.batcher)}, in flight "
                        f"{replica.inflight_requests})",
                    )
                )
        return out

    def _check_chain_accounting(self) -> list[Violation]:
        out: list[Violation] = []
        for replica in self.replicas():
            for chain_key, count in replica._chain_jobs.items():
                if count != 0:
                    out.append(
                        Violation(
                            "chain-accounting",
                            f"{replica.name} chain {chain_key} still counts "
                            f"{count} in-flight job(s) at quiesce",
                        )
                    )
            if replica.inflight_jobs != 0 or replica.inflight_requests != 0:
                out.append(
                    Violation(
                        "chain-accounting",
                        f"{replica.name} reports {replica.inflight_jobs} jobs/"
                        f"{replica.inflight_requests} requests in flight at quiesce",
                    )
                )
            if replica.state is ReplicaState.RELEASED:
                held = [
                    stage.reservation.res_id
                    for stage in (*replica.stages, *replica._retired_stages)
                    if not stage.reservation.released
                ]
                if held:
                    out.append(
                        Violation(
                            "chain-accounting",
                            f"released {replica.name} still holds {held}",
                        )
                    )
        return out

    def _check_partial_activation(self) -> list[Violation]:
        """Pipelined loading correctness, over every stage a replica ever
        had (live chains, parallel chains, retired stages):

        * no batch executes on a gated stage before its parameter load
          landed (``first_started_at >= loaded_at``);
        * a gated stage that executed work was actually marked loaded;
        * the load-complete mark fires exactly once per stage.
        """
        out: list[Violation] = []
        for replica in self.replicas():
            seen: set[int] = set()
            stages = [
                stage
                for chain in (
                    replica.stages,
                    *replica._chains.values(),
                    replica._retired_stages,
                )
                for stage in chain
                if not (id(stage) in seen or seen.add(id(stage)))
            ]
            for stage in stages:
                if stage.load_marks > 1:
                    out.append(
                        Violation(
                            "partial-activation",
                            f"{replica.name} stage {stage.index} marked "
                            f"loaded {stage.load_marks} times (exactly-once "
                            f"violated)",
                        )
                    )
                if not stage.was_gated:
                    continue
                if stage.jobs_executed > 0 and stage.loaded_at is None:
                    out.append(
                        Violation(
                            "partial-activation",
                            f"{replica.name} stage {stage.index} executed "
                            f"{stage.jobs_executed} job(s) but its load "
                            f"never completed",
                        )
                    )
                elif stage.loaded and stage.load_marks == 0:
                    out.append(
                        Violation(
                            "partial-activation",
                            f"{replica.name} stage {stage.index} gate opened "
                            f"without a load-complete mark",
                        )
                    )
                if (
                    stage.first_started_at is not None
                    and stage.loaded_at is not None
                    and stage.first_started_at < stage.loaded_at - 1e-9
                ):
                    out.append(
                        Violation(
                            "partial-activation",
                            f"{replica.name} stage {stage.index} started a "
                            f"batch at t={stage.first_started_at:.6f} before "
                            f"its load landed at t={stage.loaded_at:.6f}",
                        )
                    )
        return out

    def _check_router_reconciliation(self) -> list[Violation]:
        out: list[Violation] = []
        total_routed = 0
        for name, router in self.routers().items():
            total_routed += router.routed
            if router.submitted != router.routed + len(router.pending):
                out.append(
                    Violation(
                        "router-reconciliation",
                        f"router {name}: submitted {router.submitted} != "
                        f"routed {router.routed} + pending {len(router.pending)}",
                    )
                )
        # Cross-layer: everything the gateways routed must have been
        # accepted by some replica — a drop between router and replica
        # cannot hide behind the routers' own internally-consistent
        # counters.
        total_accepted = sum(r.accepted_requests for r in self.replicas())
        if total_routed != total_accepted:
            out.append(
                Violation(
                    "router-reconciliation",
                    f"routers routed {total_routed} request(s) but replicas "
                    f"accepted {total_accepted}",
                )
            )
        return out

    def _check_router_hygiene(self) -> list[Violation]:
        out: list[Violation] = []
        for name, router in self.routers().items():
            zombies = [
                r.name for r in router.replicas if r.state is ReplicaState.RELEASED
            ]
            if zombies:
                out.append(
                    Violation(
                        "router-hygiene",
                        f"router {name} still lists released replica(s) {zombies}",
                    )
                )
        return out

    def _check_request_conservation(self) -> list[Violation]:
        out: list[Violation] = []
        records = self.system.metrics.records
        completed_ids: set[int] = set()
        for request in records:
            if request.rid in completed_ids:
                out.append(
                    Violation(
                        "completion-uniqueness",
                        f"request {request.rid} completed more than once",
                    )
                )
            completed_ids.add(request.rid)
        shed = sum(gate.stats.rejected for gate in self.gates)
        if self.generators:
            admitted = sum(g.offered for g in self.generators) - shed
        else:
            admitted = self.system.metrics.offered
        resident = sum(len(r.pending) for r in self.routers().values()) + sum(
            len(replica.batcher) + replica.inflight_requests
            for replica in self.replicas()
        )
        if len(completed_ids) + resident != admitted:
            out.append(
                Violation(
                    "request-conservation",
                    f"admitted {admitted} != completed {len(completed_ids)} "
                    f"+ resident {resident} (shed {shed}) — "
                    f"{admitted - len(completed_ids) - resident} request(s) lost",
                )
            )
        return out

    def _check_admission_accounting(self) -> list[Violation]:
        """Gate books balance, per tenant, and sheds are exactly-once."""
        out: list[Violation] = []
        for i, gate in enumerate(self.gates):
            stats = gate.stats
            if stats.offered != stats.admitted + stats.rejected:
                out.append(
                    Violation(
                        "admission-accounting",
                        f"gate#{i}: offered {stats.offered} != admitted "
                        f"{stats.admitted} + shed {stats.rejected}",
                    )
                )
            tenant_stats = getattr(gate, "tenant_stats", None)
            if tenant_stats is None:
                continue
            tenants = tenant_stats()
            for model, t in tenants.items():
                if t.offered != t.admitted + t.rejected:
                    out.append(
                        Violation(
                            "admission-accounting",
                            f"gate#{i} tenant {model}: offered {t.offered} "
                            f"!= admitted {t.admitted} + shed {t.rejected}",
                        )
                    )
            # Tenant triples must sum to (at most) the aggregate: the
            # difference is exactly the unregistered pass-through traffic,
            # which by construction is never shed.
            spill = stats.offered - sum(t.offered for t in tenants.values())
            shed_spill = stats.rejected - sum(
                t.rejected for t in tenants.values()
            )
            if spill < 0 or shed_spill != 0:
                out.append(
                    Violation(
                        "admission-accounting",
                        f"gate#{i}: tenant triples do not reconcile with "
                        f"the aggregate (offered spill {spill}, shed "
                        f"spill {shed_spill})",
                    )
                )
        if self.gates and self.generators:
            # Exactly-once shedding, checked against ground truth: the
            # population of requests carrying the rejected mark is the
            # population the gates counted — no double shed (a request
            # counted twice would leave marks != counts), no unmarked
            # shed, no shed minted outside a gate.
            marked = sum(
                1
                for g in self.generators
                for r in g.requests
                if r.rejected
            )
            counted = sum(gate.stats.rejected for gate in self.gates)
            if marked != counted:
                out.append(
                    Violation(
                        "shed-accounting",
                        f"{marked} request(s) marked rejected but gates "
                        f"counted {counted} shed(s)",
                    )
                )
            completed_shed = [
                r.rid
                for g in self.generators
                for r in g.requests
                if r.rejected and r.completed
            ]
            if completed_shed:
                out.append(
                    Violation(
                        "shed-accounting",
                        f"shed request(s) completed anyway: "
                        f"{completed_shed[:8]}"
                        f"{'...' if len(completed_shed) > 8 else ''}",
                    )
                )
        return out

    def _check_share_caps(self) -> list[Violation]:
        """No capped tenant ever exceeded its fleet-memory share."""
        allocator = self._allocator
        caps = getattr(allocator, "share_caps", None)
        if not caps:
            return []
        out: list[Violation] = []
        fleet = allocator.fleet_memory()
        elastic = getattr(allocator, "elastic_shares", False)
        for model, cap in caps.items():
            # Relative epsilon: running tenant totals drift a few float
            # ulps per operation at the 10^12-byte scale.
            limit = cap * fleet
            limit += max(_CAPACITY_EPS, 1e-9 * limit)
            live = allocator.tenant_reserved.get(model, 0.0)
            peak = allocator.tenant_peak.get(model, 0.0)
            if elastic:
                # Under elastic contracts the cap loosens by exactly the
                # tenant's current borrow-ledger total; transient peaks
                # above cap are legal as long as the ledger covered them
                # (``borrow-accounting`` audits the uncovered peak).
                limit += allocator._borrowed_total(model)
                if live > limit:
                    out.append(
                        Violation(
                            "share-cap",
                            f"{model} holds {live:.0f} bytes, over its "
                            f"{cap:.0%} cap plus borrowed bytes of "
                            f"{fleet:.0f}-byte fleet",
                        )
                    )
                continue
            if live > limit:
                out.append(
                    Violation(
                        "share-cap",
                        f"{model} holds {live:.0f} bytes, over its "
                        f"{cap:.0%} cap of {fleet:.0f}-byte fleet",
                    )
                )
            elif peak > limit:
                out.append(
                    Violation(
                        "share-cap",
                        f"{model} peaked at {peak:.0f} bytes, over its "
                        f"{cap:.0%} cap of {fleet:.0f}-byte fleet",
                    )
                )
        return out

    def _check_borrow_accounting(self) -> list[Violation]:
        """Elastic-contract books: ledger == overage, lenders covered."""
        allocator = self._allocator
        if not getattr(allocator, "elastic_shares", False):
            return []
        out: list[Violation] = []
        fleet = allocator.fleet_memory()
        eps = max(_CAPACITY_EPS, 1e-9 * fleet)
        # The ledger is derived from the tenant books: each borrower's
        # ledger sum must equal its overage above cap, and an uncapped
        # tenant must never carry a ledger row at all.
        for borrower, debts in allocator._borrows.items():
            total = sum(debts.values())
            cap = allocator.share_caps.get(borrower)
            if cap is None:
                out.append(
                    Violation(
                        "borrow-accounting",
                        f"uncapped tenant {borrower} carries a borrow "
                        f"ledger of {total:.0f} bytes",
                    )
                )
                continue
            overage = max(
                allocator.tenant_reserved.get(borrower, 0.0) - cap * fleet, 0.0
            )
            if abs(total - overage) > eps:
                out.append(
                    Violation(
                        "borrow-accounting",
                        f"{borrower} ledger sums to {total:.0f} bytes but "
                        f"its overage above cap is {overage:.0f}",
                    )
                )
        # Cap never violated beyond the ledger, not even transiently.
        for model, over in allocator.tenant_overage_peak.items():
            if over > eps:
                out.append(
                    Violation(
                        "borrow-accounting",
                        f"{model} exceeded its cap by {over:.0f} bytes "
                        f"beyond what the borrow ledger covered",
                    )
                )
        # An over-committed lender (own demand + lent-out above its cap)
        # must be pressing its borrowers via an open reclaim demand.
        open_lenders = {d.lender for d in allocator.open_reclaim_demands()}
        for lender, cap in allocator.share_caps.items():
            lent = allocator._lent_out(lender)
            if lent <= eps:
                continue
            own = allocator.tenant_reserved.get(
                lender, 0.0
            ) - allocator._borrowed_total(lender)
            if own + lent > cap * fleet + eps and lender not in open_lenders:
                out.append(
                    Violation(
                        "borrow-accounting",
                        f"lender {lender} is over-committed (own "
                        f"{own:.0f} + lent {lent:.0f} bytes over its "
                        f"{cap:.0%} cap) with no open reclaim demand",
                    )
                )
        # Bounded reclamation latency.
        now = self.system.sim.now
        bound = getattr(allocator, "reclaim_bound", 60.0)
        for demand in allocator.open_reclaim_demands():
            age = now - demand.issued_at
            if age > bound:
                out.append(
                    Violation(
                        "borrow-reclaim-latency",
                        f"reclaim demand by {demand.lender} for "
                        f"{demand.nbytes:.0f} bytes open for {age:.1f}s "
                        f"(bound {bound:.1f}s)",
                    )
                )
        return out

    def _check_borrow_quiesce(self) -> list[Violation]:
        """At quiesce every borrowed byte is back with its lender."""
        allocator = self._allocator
        if not getattr(allocator, "elastic_shares", False):
            return []
        out: list[Violation] = []
        if allocator._borrows:
            out.append(
                Violation(
                    "borrow-accounting",
                    f"borrow ledger not empty at quiesce: "
                    f"{sorted(allocator._borrows)}",
                )
            )
        still_open = allocator.open_reclaim_demands()
        if still_open:
            out.append(
                Violation(
                    "borrow-accounting",
                    f"{len(still_open)} reclaim demand(s) still open at "
                    f"quiesce: {[d.lender for d in still_open][:8]}",
                )
            )
        for borrower in set(allocator.bytes_borrowed) | set(
            allocator.bytes_returned
        ):
            borrowed = allocator.bytes_borrowed.get(borrower, 0.0)
            returned = allocator.bytes_returned.get(borrower, 0.0)
            if abs(borrowed - returned) > max(_CAPACITY_EPS, 1e-9 * borrowed):
                out.append(
                    Violation(
                        "borrow-accounting",
                        f"{borrower} borrowed {borrowed:.0f} bytes but "
                        f"returned {returned:.0f} by quiesce",
                    )
                )
        return out

    def _executors(self) -> dict:
        """Per-model refactoring executors, when the system has them."""
        getter = getattr(self.system, "executors", None)
        return getter() if callable(getter) else {}

    def _check_prepared_claims(self) -> list[Violation]:
        """A cancelled preparation never switches in (token disjointness);
        stale prepared-chain claims fall out of the existing pending-claim
        and preemption-record checks."""
        out: list[Violation] = []
        for name, executor in self._executors().items():
            both = executor.switched_tokens & executor.aborted_tokens
            if both:
                out.append(
                    Violation(
                        "prepared-claim",
                        f"{name}: transition token(s) {sorted(both)[:8]} "
                        f"both switched in and aborted — a cancelled "
                        f"preparation must never serve",
                    )
                )
        return out

    def _check_inplace_service(self) -> list[Violation]:
        """The replica never left ACTIVE inside an in-place transition."""
        out: list[Violation] = []
        for name, executor in self._executors().items():
            for replica, start, end in executor.inplace_spans:
                inside = [
                    (t, state)
                    for t, state in replica.state_history
                    if start < t < end
                ]
                if inside:
                    t, state = inside[0]
                    out.append(
                        Violation(
                            "inplace-service-gap",
                            f"{replica.name} moved to {state.value} at "
                            f"t={t:.6f} inside an in-place transition "
                            f"({start:.6f}..{end:.6f}) of {name}",
                        )
                    )
        return out

    def _check_preemption_accounting(
        self, *, expect_no_pending: bool = True
    ) -> list[Violation]:
        """Preempted deploys never serve and release exactly once."""
        allocator = self._allocator
        out: list[Violation] = []
        for record in getattr(allocator, "preemptions", ()):
            if record.claim.state != "preempted":
                out.append(
                    Violation(
                        "preemption-accounting",
                        f"preempted deploy of {record.victim_model} "
                        f"resolved to {record.claim.state!r} (must stay "
                        f"preempted — a preempted deploy never serves)",
                    )
                )
            leaked = [r.res_id for r in record.reservations if not r.released]
            if leaked:
                out.append(
                    Violation(
                        "preemption-accounting",
                        f"preempted deploy of {record.victim_model} (for "
                        f"{record.claimant_model}) still holds {leaked}",
                    )
                )
        if expect_no_pending:
            stale = getattr(allocator, "pending_claims", lambda: [])()
            if stale:
                out.append(
                    Violation(
                        "preemption-accounting",
                        f"{len(stale)} pending deploy claim(s) never "
                        f"resolved: "
                        f"{[c.model for c in stale][:8]}",
                    )
                )
        return out

    def _check_span_conservation(self) -> list[Violation]:
        """Traced runs only: finalized spans tile each latency interval."""
        tracer = getattr(getattr(self.system, "sim", None), "tracer", None)
        if tracer is None:
            return []
        from repro.observability.attribution import conservation_violations

        return [
            Violation("span-conservation", problem)
            for problem in conservation_violations(tracer.finalized)
        ]

    def _check_allocator_empty(self) -> list[Violation]:
        out: list[Violation] = []
        if self._allocator.live:
            leaked = sorted(self._allocator.live)
            out.append(
                Violation(
                    "allocator-empty",
                    f"{len(leaked)} reservation(s) leaked after shutdown: "
                    f"{leaked[:8]}{'...' if len(leaked) > 8 else ''}",
                )
            )
        for gpu in self._cluster.gpus:
            stray = gpu.stage_allocations
            if stray:
                out.append(
                    Violation(
                        "allocator-empty",
                        f"{gpu.gid} still carries stage allocation(s) "
                        f"{sorted(stray)} after shutdown",
                    )
                )
        for replica in self.replicas():
            if replica.state is not ReplicaState.RELEASED:
                out.append(
                    Violation(
                        "allocator-empty",
                        f"{replica.name} still {replica.state.value} after shutdown",
                    )
                )
        return out
