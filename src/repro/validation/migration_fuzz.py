"""Direct fuzzing of the transfer/migration layer.

The chaos harness exercises migration only as a side effect of refactors;
this module fuzzes the planning and link layers *directly*, where the
scheduling invariants can be stated exactly:

:func:`check_schedule` (per :class:`~repro.transfer.migration.MigrationSchedule`)
    * **byte conservation** — every input item is scheduled exactly once
      and the schedule's total bytes equal the input's;
    * **channel exclusivity** — no two transfers overlap on any NIC
      direction or PCIe channel (channels are single-occupancy);
    * **makespan bounds** — the makespan is at least the longest single
      stream and the busiest channel's total occupancy (lower bounds),
      and at most the all-serial time (upper bound);
    * **KV-before-activate** — with ``kv_first`` (the Fig. 6 sequence),
      on every channel all KV shards complete before any parameter load
      starts, so the switchover pause is never gated behind bulk loads.

:func:`check_method_selection` (the §8 DataMover hierarchy)
    * **RDMA preference** — a cross-server stream whose endpoints both
      have RDMA uses RDMA, never the sendfile fallback;
    * **fallback ordering** — same-server streams stay on the local
      PCIe path, RDMA-less pairs fall back to sendfile, and NCCL appears
      only under ``force_nccl`` (the ablation knob);
    * **costs honoured** — each transfer's scheduled slot equals the
      chosen method's setup latency plus bytes over *that method's*
      bandwidth, recomputed independently from the cost table (a plan
      that claims RDMA but schedules at sendfile speed is caught).

:func:`check_inplace_delta` (the executor's live resize planning math)
    * **only the delta moves** — a reused stage's parameter traffic is
      exactly its new span minus the bytes already resident (restated
      here by set arithmetic over fine units, independent of the
      executor's slice sums), and KV moves only for units that change
      devices;
    * **conservation** — every fine unit lands in exactly one new stage,
      so resident + delta bytes across stages equal the total, and KV
      totals are preserved;
    * **reuse exclusivity** — an old stage's device is claimed by at
      most one new stage, and only when their leading units align;
    * **detection power** — a poisoned plan (a reused stage re-moving
      its resident bytes) must be flagged, else the oracle itself is
      broken (``fuzz-detection-power``).
    The planned deltas then flow through :class:`MigrationPlanner` and
    :func:`check_schedule`, so the resize traffic also honours channel
    exclusivity and the makespan bounds.

:func:`fuzz_link_case` (for :class:`~repro.transfer.links.FairShareLink`)
    * every transfer completes, exactly once;
    * no transfer beats its physics: duration >= latency +
      bytes / min(bandwidth, rate cap);
    * the link conserves work: busy time covers the bytes moved.

Cases are seeded and picklable; ``fuzz_seeds`` fans them out through the
parallel experiment runner (``repro fuzz --seeds N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.transfer.datamover import DataMover, TransferCosts, TransferMethod
from repro.transfer.links import FairShareLink, LinkSpec, MB
from repro.transfer.migration import (
    Endpoint,
    ItemKind,
    MigrationItem,
    MigrationPlanner,
    MigrationSchedule,
    channels_of,
)
from repro.validation.auditor import Violation

_EPS = 1e-6


@dataclass(frozen=True)
class MigrationFuzzCase:
    """One seeded fuzz case: several random item sets + link workloads."""

    seed: int = 0
    rounds: int = 25  # independent item sets per case
    max_items: int = 40
    max_servers: int = 6
    link_rounds: int = 8  # FairShareLink workloads per case
    inplace_rounds: int = 8  # random in-place resize schedules per case


@dataclass
class MigrationFuzzReport:
    case: MigrationFuzzCase
    violations: list[Violation] = field(default_factory=list)
    schedules: int = 0
    items: int = 0
    transfers: int = 0
    inplace: int = 0  # in-place resize schedules fuzzed

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# Schedule invariants
# ----------------------------------------------------------------------
def check_schedule(
    items: list[MigrationItem],
    schedule: MigrationSchedule,
    *,
    kv_first: bool = True,
) -> list[Violation]:
    """All scheduling invariants for one planned transition."""
    out: list[Violation] = []
    transfers = schedule.transfers

    # Byte conservation: the schedule carries exactly the input items
    # (identity-matched — no item dropped, duplicated, or substituted).
    scheduled = sorted(id(t.item) for t in transfers)
    expected = sorted(id(i) for i in items)
    if scheduled != expected:
        out.append(
            Violation(
                "migration-conservation",
                f"scheduled {len(transfers)} transfer(s) for "
                f"{len(items)} item(s) (or items duplicated/replaced)",
            )
        )
    total_in = sum(i.nbytes for i in items)
    if abs(schedule.total_bytes - total_in) > max(total_in, 1.0) * 1e-9:
        out.append(
            Violation(
                "migration-conservation",
                f"total bytes {schedule.total_bytes} != input {total_in}",
            )
        )

    # Per-transfer sanity.
    for t in transfers:
        if t.start < -_EPS:
            out.append(
                Violation(
                    "migration-timing", f"{t.item.tag}: negative start {t.start}"
                )
            )
        if abs((t.end - t.start) - t.plan.duration) > _EPS:
            out.append(
                Violation(
                    "migration-timing",
                    f"{t.item.tag}: slot {t.end - t.start} != plan "
                    f"duration {t.plan.duration}",
                )
            )

    # Channel exclusivity + KV-before-params per channel.
    by_channel: dict[str, list] = {}
    for t in transfers:
        for channel in channels_of(t.item):
            by_channel.setdefault(channel, []).append(t)
    for channel, slots in by_channel.items():
        slots.sort(key=lambda t: (t.start, t.end))
        for a, b in zip(slots, slots[1:]):
            if b.start < a.end - _EPS:
                out.append(
                    Violation(
                        "migration-channel-overlap",
                        f"{channel}: {a.item.tag} [{a.start:.6f},{a.end:.6f}) "
                        f"overlaps {b.item.tag} [{b.start:.6f},{b.end:.6f})",
                    )
                )
        if kv_first:
            kv_end = max(
                (t.end for t in slots if t.item.kind is ItemKind.KV),
                default=None,
            )
            params_start = min(
                (t.start for t in slots if t.item.kind is ItemKind.PARAMS),
                default=None,
            )
            if (
                kv_end is not None
                and params_start is not None
                and params_start < kv_end - _EPS
            ):
                out.append(
                    Violation(
                        "migration-kv-ordering",
                        f"{channel}: params load starts at {params_start:.6f} "
                        f"before KV completes at {kv_end:.6f}",
                    )
                )

    # Makespan bounds.
    makespan = schedule.makespan
    longest = max((t.plan.duration for t in transfers), default=0.0)
    if makespan < longest - _EPS:
        out.append(
            Violation(
                "migration-makespan",
                f"makespan {makespan} below longest stream {longest}",
            )
        )
    busiest = schedule.busiest_channel_time()
    if makespan < busiest - _EPS:
        out.append(
            Violation(
                "migration-makespan",
                f"makespan {makespan} below busiest channel {busiest}",
            )
        )
    if makespan > schedule.serial_time + _EPS:
        out.append(
            Violation(
                "migration-makespan",
                f"makespan {makespan} exceeds serial time "
                f"{schedule.serial_time} (worse than no parallelism)",
            )
        )
    return out


# ----------------------------------------------------------------------
# Method-selection invariants (the §8 DataMover hierarchy)
# ----------------------------------------------------------------------
def expected_method(item: MigrationItem, *, force_nccl: bool = False) -> TransferMethod:
    """The §8 decision procedure, restated independently of DataMover.

    ``force_nccl`` wins (the ablation), same-server stays local, RDMA is
    preferred whenever *both* endpoints support it, and sendfile is the
    only remaining fallback.  Keeping this a second implementation is the
    point: a regression in the production hierarchy (e.g. falling back to
    sendfile despite RDMA on both ends) disagrees with it.
    """
    if force_nccl:
        return TransferMethod.NCCL
    if item.same_server:
        return TransferMethod.LOCAL
    if item.src.rdma and item.dst.rdma:
        return TransferMethod.RDMA
    return TransferMethod.SENDFILE


def _method_costs(costs: TransferCosts, method: TransferMethod) -> tuple[float, float]:
    """(setup, bandwidth) of ``method`` in the given cost table."""
    return {
        TransferMethod.LOCAL: (costs.local_setup, costs.local_bandwidth),
        TransferMethod.RDMA: (costs.rdma_setup, costs.rdma_bandwidth),
        TransferMethod.SENDFILE: (costs.sendfile_setup, costs.sendfile_bandwidth),
        TransferMethod.NCCL: (costs.nccl_setup, costs.nccl_bandwidth),
    }[method]


def check_method_selection(
    items: list[MigrationItem],
    schedule: MigrationSchedule,
    *,
    costs: TransferCosts,
    force_nccl: bool = False,
) -> list[Violation]:
    """Method-selection invariants for one planned transition.

    Items absent from the schedule are ignored here —
    :func:`check_schedule`'s conservation check owns that failure mode.
    """
    out: list[Violation] = []
    plans = {id(t.item): t for t in schedule.transfers}
    for item in items:
        scheduled = plans.get(id(item))
        if scheduled is None:
            continue
        plan = scheduled.plan
        expected = expected_method(item, force_nccl=force_nccl)
        if plan.method is not expected:
            out.append(
                Violation(
                    "migration-method",
                    f"{item.tag}: chose {plan.method.value}, hierarchy "
                    f"demands {expected.value} (same_server="
                    f"{item.same_server}, rdma={item.src.rdma}/"
                    f"{item.dst.rdma}, force_nccl={force_nccl})",
                )
            )
            continue
        setup, bandwidth = _method_costs(costs, plan.method)
        if plan.bandwidth != bandwidth or plan.setup_time != setup:
            out.append(
                Violation(
                    "migration-method-costs",
                    f"{item.tag}: plan carries setup {plan.setup_time}/"
                    f"bw {plan.bandwidth}, the {plan.method.value} cost "
                    f"table says {setup}/{bandwidth}",
                )
            )
            continue
        # The chosen method's bandwidth must be what the schedule
        # *actually budgets*: slot length == setup + bytes / bandwidth.
        floor = setup + item.nbytes / bandwidth
        slot = scheduled.end - scheduled.start
        if abs(slot - floor) > max(floor, 1.0) * 1e-9 + _EPS:
            out.append(
                Violation(
                    "migration-method-costs",
                    f"{item.tag}: scheduled slot {slot:.9f}s but "
                    f"{plan.method.value} physics give {floor:.9f}s",
                )
            )
    return out


# ----------------------------------------------------------------------
# In-place resize invariants (the executor's delta planning math)
# ----------------------------------------------------------------------
def random_groups(rng, n_units: int) -> list[tuple[int, int]]:
    """A random contiguous partition of ``range(n_units)`` into stages."""
    n_stages = int(rng.integers(1, n_units + 1))
    cuts = sorted(
        rng.choice(range(1, n_units), size=n_stages - 1, replace=False).tolist()
        if n_stages > 1
        else []
    )
    bounds = [0, *cuts, n_units]
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


def check_inplace_delta(
    old_groups: list[tuple[int, int]],
    new_groups: list[tuple[int, int]],
    unit_params: list[float],
    unit_kv: list[float],
    deltas: list[dict],
) -> list[Violation]:
    """Oracle for one in-place delta plan, by set arithmetic.

    Restates the only-the-delta-moves rule over explicit fine-unit sets
    (``stay = new span ∩ owner's old span``), independently of the
    executor's slice sums — a regression that re-moves resident bytes or
    drops a unit disagrees with it.
    """
    out: list[Violation] = []
    if len(deltas) != len(new_groups):
        out.append(
            Violation(
                "inplace-delta",
                f"plan has {len(deltas)} stage(s) for "
                f"{len(new_groups)} new group(s)",
            )
        )
        return out
    fine_owner = {
        f: j for j, (lo, hi) in enumerate(old_groups) for f in range(lo, hi)
    }
    claimed: set[int] = set()
    resident_total = delta_total = kv_seen = 0.0
    for j, ((lo, hi), d) in enumerate(zip(new_groups, deltas)):
        span = set(range(lo, hi))
        stage_params = sum(unit_params[f] for f in span)
        stage_kv = sum(unit_kv[f] for f in span)
        owner = fine_owner[lo]
        can_reuse = old_groups[owner][0] == lo and owner not in claimed
        if d["reused"] and not can_reuse:
            out.append(
                Violation(
                    "inplace-delta",
                    f"stage {j} claims reuse of old stage {owner} but its "
                    f"leading unit is misaligned or the device is taken",
                )
            )
        stay: set[int] = set()
        if d["reused"] and can_reuse:
            claimed.add(owner)
            stay = span & set(range(*old_groups[owner]))
        resident = sum(unit_params[f] for f in stay)
        kv_stay = sum(unit_kv[f] for f in stay)
        eps = max(stage_params, 1.0) * 1e-9
        kv_eps = max(stage_kv, 1.0) * 1e-9
        if abs(d["resident_param_bytes"] - resident) > eps:
            out.append(
                Violation(
                    "inplace-delta",
                    f"stage {j}: claims {d['resident_param_bytes']:.0f} "
                    f"resident bytes, the staying units hold {resident:.0f}",
                )
            )
        if abs(d["param_delta_bytes"] - (stage_params - resident)) > eps:
            out.append(
                Violation(
                    "inplace-delta",
                    f"stage {j}: moves {d['param_delta_bytes']:.0f} param "
                    f"bytes, the delta beyond resident is "
                    f"{stage_params - resident:.0f} — only the delta moves",
                )
            )
        if abs(d["kv_moved_bytes"] - (stage_kv - kv_stay)) > kv_eps:
            out.append(
                Violation(
                    "inplace-delta",
                    f"stage {j}: moves {d['kv_moved_bytes']:.0f} KV bytes, "
                    f"units changing devices hold {stage_kv - kv_stay:.0f}",
                )
            )
        if abs(d["kv_total_bytes"] - stage_kv) > kv_eps:
            out.append(
                Violation(
                    "inplace-delta",
                    f"stage {j}: KV total {d['kv_total_bytes']:.0f} != "
                    f"span total {stage_kv:.0f}",
                )
            )
        resident_total += d["resident_param_bytes"]
        delta_total += d["param_delta_bytes"]
        kv_seen += d["kv_total_bytes"]
    total_params = sum(unit_params)
    total_kv = sum(unit_kv)
    if abs((resident_total + delta_total) - total_params) > max(
        total_params, 1.0
    ) * 1e-9:
        out.append(
            Violation(
                "inplace-delta",
                f"resident {resident_total:.0f} + delta {delta_total:.0f} "
                f"!= total params {total_params:.0f} — a unit was dropped "
                f"or double-counted",
            )
        )
    if abs(kv_seen - total_kv) > max(total_kv, 1.0) * 1e-9:
        out.append(
            Violation(
                "inplace-delta",
                f"KV totals {kv_seen:.0f} != input {total_kv:.0f}",
            )
        )
    return out


def fuzz_inplace_round(rng) -> tuple[list[Violation], int]:
    """One random in-place resize: delta plan, oracle, schedule, poison.

    Returns (violations, migration items scheduled).
    """
    from repro.refactoring.executor import plan_inplace_delta

    out: list[Violation] = []
    n_units = int(rng.integers(4, 25))
    unit_params = [
        float(rng.lognormal(mean=0.0, sigma=1.0) * 64 * MB)
        for _ in range(n_units)
    ]
    unit_kv = [
        float(rng.lognormal(mean=0.0, sigma=1.0) * 8 * MB)
        for _ in range(n_units)
    ]
    old_groups = random_groups(rng, n_units)
    new_groups = random_groups(rng, n_units)
    deltas = plan_inplace_delta(old_groups, new_groups, unit_params, unit_kv)
    out += check_inplace_delta(
        old_groups, new_groups, unit_params, unit_kv, deltas
    )

    # The delta traffic through the real planner: the resize's parameter
    # and KV movement must honour channel exclusivity and the makespan
    # bounds like any other migration.
    host = Endpoint(server_id="host", gpu_id="host", rdma=True)
    gpus = [
        Endpoint(
            server_id=f"s{j // 4}", gpu_id=f"s{j // 4}g{j % 4}", rdma=True
        )
        for j in range(max(len(old_groups), len(new_groups)))
    ]
    items: list[MigrationItem] = []
    for j, d in enumerate(deltas):
        if d["param_delta_bytes"] > 0:
            items.append(
                MigrationItem(
                    ItemKind.PARAMS,
                    d["param_delta_bytes"],
                    host,
                    gpus[j],
                    tag=f"delta-params{j}",
                )
            )
        if d["kv_moved_bytes"] > 0:
            items.append(
                MigrationItem(
                    ItemKind.KV,
                    d["kv_moved_bytes"],
                    gpus[d["owner"]],
                    gpus[j],
                    tag=f"delta-kv{j}",
                )
            )
    schedule = MigrationPlanner(DataMover(TransferCosts())).schedule(
        items, kv_first=True
    )
    out += check_schedule(items, schedule, kv_first=True)

    # Detection power: a plan that re-moves a reused stage's resident
    # bytes (the bug in-place transitions exist to avoid) must be caught.
    reusable = [
        j
        for j, d in enumerate(deltas)
        if d["reused"] and d["resident_param_bytes"] > 0
    ]
    if reusable:
        j = reusable[int(rng.integers(len(reusable)))]
        poisoned = [dict(d) for d in deltas]
        poisoned[j]["param_delta_bytes"] += poisoned[j]["resident_param_bytes"]
        if not check_inplace_delta(
            old_groups, new_groups, unit_params, unit_kv, poisoned
        ):
            out.append(
                Violation(
                    "fuzz-detection-power",
                    f"oracle missed a poisoned plan that re-moves stage "
                    f"{j}'s {poisoned[j]['resident_param_bytes']:.0f} "
                    f"resident bytes",
                )
            )
    return out, len(items)


# ----------------------------------------------------------------------
# Random item sets
# ----------------------------------------------------------------------
def random_costs(rng) -> TransferCosts:
    """A random (but physical) transfer cost table spanning the §8 regimes."""
    gb = 1024 * MB
    return TransferCosts(
        rdma_setup=float(rng.uniform(50e-6, 500e-6)),
        rdma_bandwidth=float(rng.uniform(5.0, 20.0)) * gb,
        sendfile_setup=float(rng.uniform(0.5e-3, 5e-3)),
        sendfile_bandwidth=float(rng.uniform(2.0, 10.0)) * gb,
        nccl_setup=float(rng.uniform(1.0, 5.0)),
        nccl_bandwidth=float(rng.uniform(5.0, 20.0)) * gb,
        local_setup=float(rng.uniform(5e-6, 50e-6)),
        local_bandwidth=float(rng.uniform(10.0, 40.0)) * gb,
    )


def random_items(rng, *, max_items: int, max_servers: int) -> list[MigrationItem]:
    """A random (possibly degenerate) migration item set."""
    n_servers = int(rng.integers(1, max_servers + 1))
    endpoints = [
        Endpoint(
            server_id=f"s{s}",
            gpu_id=f"s{s}g{g}",
            rdma=bool(rng.random() < 0.7),
        )
        for s in range(n_servers)
        for g in range(int(rng.integers(1, 5)))
    ]
    items = []
    for i in range(int(rng.integers(0, max_items + 1))):
        src = endpoints[int(rng.integers(len(endpoints)))]
        dst = endpoints[int(rng.integers(len(endpoints)))]
        kind = ItemKind.KV if rng.random() < 0.5 else ItemKind.PARAMS
        # Heavy-tailed sizes spanning the §8 method thresholds, plus the
        # occasional zero-byte stream (metadata-only, pure latency).
        nbytes = 0.0 if rng.random() < 0.05 else float(
            rng.lognormal(mean=0.0, sigma=2.5) * 64 * MB
        )
        items.append(
            MigrationItem(kind, nbytes, src, dst, tag=f"{kind.value}{i}")
        )
    return items


def fuzz_migration_case(case: MigrationFuzzCase) -> MigrationFuzzReport:
    """Run one seeded fuzz case over planner and link layers."""
    report = MigrationFuzzReport(case=case)
    try:
        rng = RandomStreams(case.seed).stream("migration-fuzz")
        for _ in range(case.rounds):
            items = random_items(
                rng, max_items=case.max_items, max_servers=case.max_servers
            )
            kv_first = bool(rng.random() < 0.5)
            # A third of the rounds randomise the cost table: the
            # bandwidth-actually-used check must hold for *any* costs,
            # not just the defaults it could have been hard-coded to.
            costs = (
                random_costs(rng) if rng.random() < 1 / 3 else TransferCosts()
            )
            planner = MigrationPlanner(
                DataMover(costs), force_nccl=bool(rng.random() < 0.2)
            )
            schedule = planner.schedule(items, kv_first=kv_first)
            report.schedules += 1
            report.items += len(items)
            report.violations += check_schedule(
                items, schedule, kv_first=kv_first
            )
            report.violations += check_method_selection(
                items, schedule, costs=costs, force_nccl=planner.force_nccl
            )
        link_rng = RandomStreams(case.seed).stream("link-fuzz")
        for _ in range(case.link_rounds):
            report.violations += fuzz_link_case(link_rng)
            report.transfers += 1
        # Own stream: the migration/link rounds above draw byte-identical
        # sequences whether or not in-place fuzzing runs.
        inplace_rng = RandomStreams(case.seed).stream("inplace-fuzz")
        for _ in range(case.inplace_rounds):
            problems, n_items = fuzz_inplace_round(inplace_rng)
            report.violations += problems
            report.inplace += 1
            report.items += n_items
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        report.violations.append(
            Violation("harness-crash", f"{type(exc).__name__}: {exc}")
        )
    return report


# ----------------------------------------------------------------------
# FairShareLink fuzz
# ----------------------------------------------------------------------
def fuzz_link_case(rng) -> list[Violation]:
    """One random contention workload against a FairShareLink."""
    out: list[Violation] = []
    sim = Simulator()
    bandwidth = float(rng.uniform(0.5, 32.0)) * 1024 * MB
    latency = float(rng.choice([0.0, 1e-4, 1e-3]))
    link = FairShareLink(sim, LinkSpec("fuzz-link", bandwidth, latency))
    n = int(rng.integers(1, 24))
    handles = []
    for i in range(n):
        nbytes = 0.0 if rng.random() < 0.08 else float(
            rng.lognormal(mean=0.0, sigma=2.0) * 16 * MB
        )
        cap = (
            float(rng.uniform(0.05, 1.5)) * bandwidth
            if rng.random() < 0.5
            else None
        )
        start_at = float(rng.exponential(0.02))
        sim.schedule(
            start_at,
            lambda nb=nbytes, c=cap: handles.append(
                link.transfer(nb, max_rate=c)
            ),
        )
    sim.run_until_idle()

    done = [h for h in handles if h.done]
    if len(done) != n:
        out.append(
            Violation(
                "link-completion",
                f"{n - len(done)} of {n} transfer(s) never completed",
            )
        )
    if link.transfers_completed != n:
        out.append(
            Violation(
                "link-completion",
                f"link counted {link.transfers_completed} completions "
                f"for {n} transfers",
            )
        )
    for h in done:
        floor_rate = min(h.max_rate or bandwidth, bandwidth)
        floor = latency + h.nbytes / floor_rate
        if h.duration is not None and h.duration < floor - 1e-6:
            out.append(
                Violation(
                    "link-physics",
                    f"transfer of {h.nbytes:.0f} B finished in "
                    f"{h.duration:.6f}s, below its floor {floor:.6f}s",
                )
            )
    # Work conservation: the busy span must cover the bytes at line rate.
    total = sum(h.nbytes for h in done)
    first = min((h.started_at for h in done), default=0.0)
    last = max((h.finished_at for h in done if h.finished_at is not None), default=0.0)
    if total > 0 and (last - first) < total / bandwidth - 1e-6:
        out.append(
            Violation(
                "link-physics",
                f"{total:.0f} B moved in {last - first:.6f}s — faster "
                f"than line rate {bandwidth:.0f} B/s allows",
            )
        )
    return out


# ----------------------------------------------------------------------
# Fan-out
# ----------------------------------------------------------------------
def fuzz_seeds(
    *,
    seeds: int = 10,
    runner=None,
    jobs: int | None = None,
    case_kwargs: dict | None = None,
) -> list[MigrationFuzzReport]:
    """Run the migration fuzzer over ``seeds`` seeded cases."""
    from repro.experiments.runner import make_runner

    kwargs = case_kwargs or {}
    cases = [MigrationFuzzCase(seed=seed, **kwargs) for seed in range(seeds)]
    exp_runner = make_runner(runner, jobs=jobs, use_cache=False)
    return exp_runner.map(fuzz_migration_case, cases)
