"""Chaos fuzz harness: seeded adversarial lifecycle interleavings.

One chaos case = one serving system + one seed.  The seed derives the
whole scenario — workload intensity/burstiness, admission cap,
fragmentation, and a random schedule of refactor / scale-out / drain /
failure injections fired while traffic flows.  After the run the system
is shut down, the simulator drained to quiesce, and the full
:class:`~repro.validation.auditor.InvariantAuditor` suite asserted: any
dropped request or leaked reservation under *any* interleaving is a bug.

Cases are independent and picklable, so ``audit_seeds`` fans them out
through the parallel experiment runner (``repro audit --seeds N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.allocator import AllocationError
from repro.cluster.failures import (
    FailureInjector,
    ReclamationPolicy,
    VictimChoice,
)
from repro.core.admission import AdmissionGate, QueueCapPolicy
from repro.core.context import ServingContext
from repro.experiments.common import (
    ExperimentConfig,
    build_environment,
    make_arrival_process,
    make_workload_sampler,
)
from repro.experiments.systems import SYSTEM_FACTORIES, make_distserve
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.validation.auditor import InvariantAuditor, Violation
from repro.workloads.generator import WorkloadGenerator

def _chaos_distserve(ctx, cfg, **overrides):
    """DistServe sized for the small chaos cluster (its paper-provisioned
    defaults — 16 decode stages, peak-fraction replica counts — cannot
    even start on 16 fragmented GPUs)."""
    overrides.setdefault("initial_replicas", 2)
    overrides.setdefault("decode_stages", 8)
    return make_distserve(ctx, cfg, **overrides)


# Everything the chaos audit exercises: the figure-sweep systems plus
# DistServe (kept out of SYSTEM_FACTORIES so paper sweeps are unchanged).
CHAOS_SYSTEMS = dict(SYSTEM_FACTORIES, DistServe=_chaos_distserve)


@dataclass(frozen=True)
class ChaosCase:
    """One seeded chaos scenario against one system.

    The default case is the PR-2 shape (one model, small cluster);
    ``extra_models``/``cluster`` lift it to the paper's fragmented
    multi-model setting, where refactors, drains and reclamations of one
    tenant interleave with traffic of the others.
    """

    system: str = "FlexPipe"
    seed: int = 0
    model: str = "LLAMA2-7B"
    extra_models: tuple[str, ...] = ()
    cluster: str = "small"  # "small" | "paper"
    settle: float = 60.0  # initial replicas load before traffic/chaos
    duration: float = 30.0  # traffic + chaos window
    mean_action_interval: float = 1.0  # mean gap between chaos actions (s)
    # (model, class-name) annotations: annotated tenants get QoS classes
    # (class deadlines, priority routing, per-tenant admission) and the
    # run is audited for the per-tenant shed-accounting invariant too.
    slo_classes: tuple[tuple[str, str], ...] = ()
    # (model, cap) share caps as fractions of fleet memory, and the
    # elastic-contract switch: with ``elastic`` the caps become
    # borrowable and FlexPipe's executor unlocks in-place transitions +
    # preemptible prepared claims — and the chaos schedule adds
    # borrow/reclaim-storm and mid-preparation-preemption actions.
    # Both require a classed fleet (QoS on).
    share_caps: tuple[tuple[str, float], ...] = ()
    elastic: bool = False
    max_events: int = 10_000_000

    def __post_init__(self) -> None:
        if len(set(self.models)) != len(self.models):
            raise ValueError(f"chaos case repeats a tenant: {self.models}")
        from repro.qos.classes import SLO_CLASSES

        for model, name in self.slo_classes:
            if model not in self.models:
                raise ValueError(
                    f"slo_classes annotates {model!r}, not a tenant of "
                    f"{self.models}"
                )
            if name not in SLO_CLASSES:
                raise ValueError(
                    f"unknown SLO class {name!r}; "
                    f"available: {sorted(SLO_CLASSES)}"
                )
        for model, cap in self.share_caps:
            if model not in self.models:
                raise ValueError(
                    f"share_caps annotates {model!r}, not a tenant of "
                    f"{self.models}"
                )
            if not 0.0 < cap <= 1.0:
                raise ValueError(f"share cap must be in (0, 1]: {model}={cap}")
        if (self.share_caps or self.elastic) and not self.slo_classes:
            raise ValueError(
                "share_caps/elastic need a classed fleet (slo_classes)"
            )

    @property
    def caps_of(self) -> dict[str, float]:
        return dict(self.share_caps)

    @property
    def models(self) -> tuple[str, ...]:
        return (self.model, *self.extra_models)

    @property
    def class_of(self) -> dict[str, str]:
        return dict(self.slo_classes)


# Model fleets the paper-cluster chaos cases rotate through (kept small
# models first so the common case stays fast; the OPT-66B fleet exercises
# the big-checkpoint load/refactor paths).
PAPER_FLEETS: tuple[tuple[str, ...], ...] = (
    ("LLAMA2-7B", "BERT-21B"),
    ("LLAMA2-7B", "WHISPER-9B", "BERT-21B"),
    ("OPT-66B", "LLAMA2-7B"),
)

# Class annotations for the fleets above (position-matched): every
# paper-cluster chaos case is a *multi-class* fleet, so reclaim / drain /
# refactor interleavings run against priority routing and per-tenant
# admission, and the shed-accounting invariant is exercised under chaos.
PAPER_FLEET_CLASSES: tuple[tuple[str, ...], ...] = (
    ("interactive", "batch"),
    ("interactive", "standard", "batch"),
    ("batch", "interactive"),
)

# Elastic-contract arming for the fleets above (position-matched): caps
# generous enough that the fleet's initial provisioning fits under them,
# so the chaos (borrow surges, reclaim storms) — not the cold start — is
# what pushes tenants across their caps.  The OPT-66B fleet stays
# uncapped: its big-checkpoint loads need the whole fragmented cluster.
PAPER_FLEET_CAPS: tuple[tuple[tuple[str, float], ...], ...] = (
    (("LLAMA2-7B", 0.45), ("BERT-21B", 0.45)),
    (("LLAMA2-7B", 0.40), ("BERT-21B", 0.40)),
    (),
)


def paper_case(system: str, seed: int, **kwargs) -> ChaosCase:
    """A paper-cluster multi-model chaos case for ``seed``.

    ``kwargs`` take precedence over the fleet defaults, preserving
    ``audit_seeds``' documented ``case_kwargs`` pass-through even for
    keys the paper shape also sets (model, extra_models, cluster).
    """
    index = seed % len(PAPER_FLEETS)
    fleet = PAPER_FLEETS[index]
    classes = dict(zip(fleet, PAPER_FLEET_CLASSES[index]))
    fields = dict(model=fleet[0], extra_models=fleet[1:], cluster="paper")
    fields.update(kwargs)
    # A pinned primary may coincide with a fleet member; drop the
    # duplicate so the case keeps one generator per tenant.
    fields["extra_models"] = tuple(
        m for m in fields["extra_models"] if m != fields["model"]
    )
    if "slo_classes" not in fields:
        tenants = (fields["model"], *fields["extra_models"])
        fields["slo_classes"] = tuple(
            (m, classes[m]) for m in tenants if m in classes
        )
    if "share_caps" not in fields:
        # Caps (and elastic, below) require a classed fleet, so a caller
        # that overrode the annotations away gets a static uncapped case.
        caps = dict(PAPER_FLEET_CAPS[index]) if fields["slo_classes"] else {}
        tenants = (fields["model"], *fields["extra_models"])
        fields["share_caps"] = tuple(
            (m, caps[m]) for m in tenants if m in caps
        )
    if "elastic" not in fields:
        # Elastic contracts ride along wherever caps are armed, so the
        # audit rotation exercises borrow/reclaim and in-place
        # transitions under every capped paper fleet.
        fields["elastic"] = bool(fields["share_caps"])
    return ChaosCase(system=system, seed=seed, **fields)


@dataclass
class ChaosReport:
    """Outcome of one chaos case."""

    case: ChaosCase
    violations: list[Violation] = field(default_factory=list)
    actions: dict[str, int] = field(default_factory=dict)
    offered: int = 0
    completed: int = 0
    shed: int = 0
    offered_by_model: dict[str, int] = field(default_factory=dict)
    completed_by_model: dict[str, int] = field(default_factory=dict)
    shed_by_model: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


class ChaosSchedule:
    """Fires seeded random lifecycle actions into a live serving system.

    Actions work strictly through public interfaces (factories, routers,
    executors, the failure injector), exactly like the disturbances a
    fragmented serverless platform produces.  Every tick also runs the
    auditor's mid-run checks, so a transient violation is caught at the
    interleaving that produced it, not just at quiesce.
    """

    def __init__(
        self,
        sim: Simulator,
        system,
        rng,
        *,
        auditor: InvariantAuditor,
        injector: FailureInjector | None = None,
        mean_interval: float = 1.0,
        audit_every_tick: bool = True,
    ):
        self.sim = sim
        self.system = system
        self.rng = rng
        self.auditor = auditor
        self.injector = injector
        self.mean_interval = mean_interval
        self.audit_every_tick = audit_every_tick
        self.actions: dict[str, int] = {}
        self.violations: dict[tuple[str, str], Violation] = {}
        self._stopped = True

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._stopped = False
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        delay = float(self.rng.exponential(self.mean_interval))
        self.sim.schedule(delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        choices = ["scale_out", "drain", "refactor", "fail"]
        weights = [0.3, 0.3, 0.25, 0.15]
        if getattr(self.system.ctx.allocator, "elastic_shares", False):
            # Armed-only extension (appended, weights rescaled): unarmed
            # runs draw byte-identical action sequences to before.
            choices += ["borrow_surge", "reclaim_lender", "preempt_prep"]
            weights = [w * 0.7 for w in weights] + [0.12, 0.09, 0.09]
        action = str(self.rng.choice(choices, p=weights))
        outcome = getattr(self, f"_do_{action}")()
        key = f"{action}:{outcome}" if outcome else action
        self.actions[key] = self.actions.get(key, 0) + 1
        if self.audit_every_tick:
            self.record(self.auditor.audit_running())
        self._schedule_next()

    def record(self, violations: list[Violation]) -> None:
        """Accumulate violations, de-duplicated on (invariant, detail)."""
        for violation in violations:
            self.violations.setdefault(
                (violation.invariant, violation.detail), violation
            )

    # ------------------------------------------------------------------
    # Actions (shared with the scenario engine's scripted events)
    # ------------------------------------------------------------------
    def _do_scale_out(self) -> str:
        return action_scale_out(self.system, self.rng)

    def _do_drain(self) -> str:
        return action_drain(self.system, self.rng)

    def _do_refactor(self) -> str:
        return action_refactor(self.system, self.rng)

    def _do_fail(self) -> str:
        if self.injector is None:
            return "unsupported"
        event = self.injector.inject()
        return "ok" if event is not None else "noop"

    # --- elastic-contract actions (armed only when elastic shares on) ---
    def _do_borrow_surge(self) -> str:
        """Push one capped tenant over its cap into borrowed headroom."""
        allocator = self.system.ctx.allocator
        capped = sorted(
            m for m in allocator.share_caps if m in self.system.specs
        )
        if not capped:
            return "noop"
        model = capped[int(self.rng.integers(len(capped)))]
        outcomes = [
            action_scale_out(self.system, self.rng, model=model)
            for _ in range(2)
        ]
        return "ok" if "ok" in outcomes else "blocked"

    def _do_reclaim_lender(self) -> str:
        """A lender wants its headroom back: deploy for a tenant with
        bytes lent out, forcing reclamation pressure on its borrowers."""
        allocator = self.system.ctx.allocator
        lenders = sorted(
            m
            for m in allocator.share_caps
            if m in self.system.specs and allocator._lent_out(m) > 0
        )
        if not lenders:
            return "noop"
        model = lenders[int(self.rng.integers(len(lenders)))]
        return action_scale_out(self.system, self.rng, model=model)

    def _do_preempt_prep(self) -> str:
        """Mid-preparation preemption pressure: start a refactor, then
        contend for memory with every other tenant's deploys — if the
        cluster is tight, arbitration preempts the in-flight
        preparation's prepared-chain claim."""
        started = action_refactor(self.system, self.rng)
        if started != "ok":
            return "noop"
        for model in sorted(self.system.specs):
            action_scale_out(self.system, self.rng, model=model)
        return "contended"


# ----------------------------------------------------------------------
# Lifecycle actions, usable by any harness (chaos schedule, scenario
# engine).  All work strictly through public interfaces.
# ----------------------------------------------------------------------
def pick_model(system, rng) -> str:
    names = sorted(system.specs)
    return names[int(rng.integers(len(names)))]


def action_scale_out(system, rng, model: str | None = None) -> str:
    """Deploy one more replica for ``model`` (random if omitted)."""
    model = model or pick_model(system, rng)
    profile = system.profiles[model]
    states = getattr(system, "_models", None)
    deploy_decode = getattr(system, "_deploy_decode", None)
    if states is not None:  # FlexPipe: random ladder rung
        ladder = states[model].ladder
        counts = ladder.stage_counts
        plan = ladder.plan(int(counts[int(rng.integers(len(counts)))]))
        deploy = lambda: system.factory.deploy(
            profile, plan, batch_cap=system.batch_cap
        )
    elif deploy_decode is not None and rng.random() < 0.5:
        # DistServe: also churn the decode pool, or drains could
        # empty it permanently with the fuzzer never re-growing it.
        deploy = lambda: deploy_decode(profile, model)
    else:  # baselines: their fixed granularity
        plan = system.plans[model]
        deploy = lambda: system._deploy(profile, plan)
    try:
        deploy()
    except AllocationError:
        return "blocked"
    return "ok"


def action_drain(system, rng, model: str | None = None) -> str:
    """Release one live replica (of ``model`` when given)."""
    factory = system.factory
    live = factory.live_replicas()
    if model is not None:
        live = [r for r in live if r.profile.spec.name == model]
    if not live:
        return "noop"
    factory.release(live[int(rng.integers(len(live)))])
    return "ok"


def action_refactor(
    system, rng, model: str | None = None, target_stages: int | None = None
) -> str:
    """Force an inflight refactor of one active replica (FlexPipe only)."""
    states = getattr(system, "_models", None)
    if not states:
        return "unsupported"
    model = model or pick_model(system, rng)
    state = states[model]
    active = system.routers[model].active_replicas
    if not active:
        return "noop"
    replica = active[int(rng.integers(len(active)))]
    if target_stages is not None:
        counts = state.ladder.stage_counts
        target = min(counts, key=lambda c: abs(c - target_stages))
        if target == replica.plan.n_stages:
            return "noop"
    else:
        targets = [
            c for c in state.ladder.stage_counts if c != replica.plan.n_stages
        ]
        if not targets:
            return "noop"
        target = int(targets[int(rng.integers(len(targets)))])
    started = state.executor.refactor(replica, int(target))
    return "ok" if started else "declined"


# ----------------------------------------------------------------------
# Case execution
# ----------------------------------------------------------------------
def run_chaos_case(case: ChaosCase) -> ChaosReport:
    """Run one seeded chaos scenario end-to-end and audit it.

    A crash anywhere inside the case is itself a finding: it is reported
    as a ``harness-crash`` violation on the case's report (so ``repro
    audit`` keeps its (system, seed, invariant) reproducer contract and
    the remaining seeds still run) rather than propagating.
    """
    try:
        return _run_chaos_case(case)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return ChaosReport(
            case=case,
            violations=[
                Violation(
                    "harness-crash",
                    f"{type(exc).__name__}: {exc}",
                )
            ],
        )


def _run_chaos_case(case: ChaosCase) -> ChaosReport:
    # Scenario knobs come from their own named stream, so drawing them
    # before the environment exists leaves every other stream untouched
    # (streams derive from (seed, name), not draw order).
    knobs = RandomStreams(case.seed).stream("chaos-config")
    qps = float(knobs.uniform(4.0, 12.0))
    cv = float(knobs.choice([1.0, 2.0, 4.0, 8.0]))
    cap = knobs.choice([0, 32, 128])  # 0 = no admission gate
    fragmented = bool(knobs.random() < 0.5)

    cfg = ExperimentConfig(
        model=case.model,
        qps=qps,
        cv=cv,
        duration=case.duration,
        seed=case.seed,
        cluster=case.cluster,
        batch_cap=16,
        settle_time=case.settle,
        extra_models=case.extra_models,
        fragmentation=fragmented,
    )
    sim, cluster, streams, fragmentation = build_environment(cfg)
    ctx = ServingContext.create(sim, cluster, streams)
    system = CHAOS_SYSTEMS[case.system](ctx, cfg)
    try:
        system.start()
    except AllocationError:
        # An under-provisioned cold start on a fragmented cluster is part
        # of the chaos: the system proceeds with whatever replicas fit
        # (per-replica allocation is atomic, so nothing dangles).
        pass
    sim.run(until=case.settle, max_events=case.max_events)

    class_of = case.class_of
    if class_of:
        # Multi-class fleet: the QoS control plane replaces the shared
        # gate — per-tenant policy chains, priority routing, attainment
        # signals — with unannotated tenants passing through unchanged.
        from repro.qos.admission import build_tenant_controller
        from repro.qos.classes import get_slo_class

        class_map = {m: get_slo_class(c) for m, c in class_of.items()}
        system.enable_qos(
            class_map,
            share_caps=case.caps_of or None,
            elastic=case.elastic,
        )
        gate = build_tenant_controller(system, class_map, cap=int(cap))
    else:
        policy = (
            QueueCapPolicy(_total_queue(system), int(cap)) if cap else None
        )
        gate = AdmissionGate(system.submit, policy)
    generators = [
        WorkloadGenerator(
            sim,
            make_arrival_process(cfg, streams),
            make_workload_sampler(
                cfg, streams, slo_class=class_of.get(case.model)
            ),
            gate.submit,
            case.duration,
        )
    ]
    # Co-resident tenants: every extra model offers its own seeded traffic
    # through the same admission gate, so one tenant's burst can shed (or
    # starve) another's — the paper-cluster multiplexing effect.
    for extra in case.extra_models:
        extra_qps = float(knobs.uniform(2.0, 8.0))
        extra_cv = float(knobs.choice([1.0, 2.0, 4.0]))
        extra_cfg = ExperimentConfig(
            model=extra,
            qps=extra_qps,
            cv=extra_cv,
            duration=case.duration,
            seed=case.seed,
            batch_cap=16,
        )
        generators.append(
            WorkloadGenerator(
                sim,
                make_arrival_process(extra_cfg, streams, tag=f"_{extra}"),
                make_workload_sampler(
                    extra_cfg,
                    streams,
                    model=extra,
                    tag=f"_{extra}",
                    slo_class=class_of.get(extra),
                ),
                gate.submit,
                case.duration,
            )
        )
    auditor = InvariantAuditor(system, generators=generators, gates=[gate])
    injector = FailureInjector(
        sim,
        cluster,
        streams.stream("chaos-failures"),
        system,
        # mtbf is irrelevant (the schedule injects directly); short
        # downtimes keep the post-run quiesce window bounded.
        policy=ReclamationPolicy(
            mtbf=1e9, downtime_mean=5.0, choice=VictimChoice.SERVING_BIASED
        ),
    )
    chaos = ChaosSchedule(
        sim,
        system,
        streams.stream("chaos-actions"),
        auditor=auditor,
        injector=injector,
        mean_interval=case.mean_action_interval,
    )
    chaos.start()
    sim.run(until=case.settle + case.duration, max_events=case.max_events)
    chaos.stop()
    injector.stop()
    system.shutdown()
    if fragmentation is not None:
        fragmentation.stop()
    # Drain to quiesce: in-flight batches, pending loads, reclamation
    # restores and teardown all complete, then the conservation laws must
    # hold exactly.
    sim.run_until_idle(max_events=case.max_events)
    chaos.record(auditor.audit_quiesce())

    unique = {r.rid: r for r in system.metrics.records}
    completed_by_model: dict[str, int] = {}
    for request in unique.values():
        completed_by_model[request.model] = (
            completed_by_model.get(request.model, 0) + 1
        )
    return ChaosReport(
        case=case,
        violations=list(chaos.violations.values()),
        actions=dict(sorted(chaos.actions.items())),
        offered=sum(g.offered for g in generators),
        completed=len(unique),
        shed=gate.stats.rejected,
        offered_by_model={
            g.sampler.model: g.offered for g in generators
        },
        completed_by_model=completed_by_model,
        shed_by_model={
            g.sampler.model: sum(1 for r in g.requests if r.rejected)
            for g in generators
        },
    )


def _total_queue(system):
    """Live backlog across every router (admission-cap signal)."""

    def total() -> int:
        return sum(r.total_queue for r in system.all_routers().values())

    return total


def audit_seeds(
    *,
    seeds: int = 10,
    systems: list[str] | None = None,
    runner=None,
    jobs: int | None = None,
    case_kwargs: dict | None = None,
    paper_every: int | None = 4,
) -> list[ChaosReport]:
    """Run the chaos audit over ``seeds`` seeds for each system.

    Every ``paper_every``-th seed runs as a *paper-cluster multi-model*
    case (rotating through :data:`PAPER_FLEETS`) instead of the
    single-model small-cluster shape, so the audit covers the paper's
    fragmented multiplexing setting too.  ``paper_every=None`` disables
    the mix (the PR-2 behaviour).

    Cases fan out through the parallel experiment runner's worker pool
    (``--jobs`` / ``REPRO_JOBS``); the result cache is bypassed — a chaos
    audit must always re-execute.
    """
    from repro.experiments.runner import make_runner

    chosen = list(systems) if systems else sorted(CHAOS_SYSTEMS)
    unknown = [s for s in chosen if s not in CHAOS_SYSTEMS]
    if unknown:
        raise KeyError(
            f"unknown system(s) {unknown}; available: {sorted(CHAOS_SYSTEMS)}"
        )
    kwargs = case_kwargs or {}
    cases = []
    for name in chosen:
        for seed in range(seeds):
            if paper_every and seed % paper_every == paper_every - 1:
                cases.append(paper_case(name, seed, **kwargs))
            else:
                cases.append(ChaosCase(system=name, seed=seed, **kwargs))
    exp_runner = make_runner(runner, jobs=jobs, use_cache=False)
    return exp_runner.map(run_chaos_case, cases)
