"""Chaos fuzz harness: seeded adversarial lifecycle interleavings.

One chaos case = one serving system + one seed.  The seed derives the
whole scenario — workload intensity/burstiness, admission cap,
fragmentation, and a random schedule of refactor / scale-out / drain /
failure injections fired while traffic flows.  After the run the system
is shut down, the simulator drained to quiesce, and the full
:class:`~repro.validation.auditor.InvariantAuditor` suite asserted: any
dropped request or leaked reservation under *any* interleaving is a bug.

Cases are independent and picklable, so ``audit_seeds`` fans them out
through the parallel experiment runner (``repro audit --seeds N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.allocator import AllocationError
from repro.cluster.cluster import make_small_cluster
from repro.cluster.failures import (
    FailureInjector,
    ReclamationPolicy,
    VictimChoice,
)
from repro.cluster.fragmentation import FragmentationModel
from repro.core.admission import AdmissionGate, QueueCapPolicy
from repro.core.context import ServingContext
from repro.experiments.common import (
    ExperimentConfig,
    make_arrival_process,
    make_workload_sampler,
)
from repro.experiments.systems import SYSTEM_FACTORIES, make_distserve
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.validation.auditor import InvariantAuditor, Violation
from repro.workloads.generator import WorkloadGenerator

def _chaos_distserve(ctx, cfg, **overrides):
    """DistServe sized for the small chaos cluster (its paper-provisioned
    defaults — 16 decode stages, peak-fraction replica counts — cannot
    even start on 16 fragmented GPUs)."""
    overrides.setdefault("initial_replicas", 2)
    overrides.setdefault("decode_stages", 8)
    return make_distserve(ctx, cfg, **overrides)


# Everything the chaos audit exercises: the figure-sweep systems plus
# DistServe (kept out of SYSTEM_FACTORIES so paper sweeps are unchanged).
CHAOS_SYSTEMS = dict(SYSTEM_FACTORIES, DistServe=_chaos_distserve)


@dataclass(frozen=True)
class ChaosCase:
    """One seeded chaos scenario against one system."""

    system: str = "FlexPipe"
    seed: int = 0
    model: str = "LLAMA2-7B"
    settle: float = 60.0  # initial replicas load before traffic/chaos
    duration: float = 30.0  # traffic + chaos window
    mean_action_interval: float = 1.0  # mean gap between chaos actions (s)
    max_events: int = 10_000_000


@dataclass
class ChaosReport:
    """Outcome of one chaos case."""

    case: ChaosCase
    violations: list[Violation] = field(default_factory=list)
    actions: dict[str, int] = field(default_factory=dict)
    offered: int = 0
    completed: int = 0
    shed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class ChaosSchedule:
    """Fires seeded random lifecycle actions into a live serving system.

    Actions work strictly through public interfaces (factories, routers,
    executors, the failure injector), exactly like the disturbances a
    fragmented serverless platform produces.  Every tick also runs the
    auditor's mid-run checks, so a transient violation is caught at the
    interleaving that produced it, not just at quiesce.
    """

    def __init__(
        self,
        sim: Simulator,
        system,
        rng,
        *,
        auditor: InvariantAuditor,
        injector: FailureInjector | None = None,
        mean_interval: float = 1.0,
        audit_every_tick: bool = True,
    ):
        self.sim = sim
        self.system = system
        self.rng = rng
        self.auditor = auditor
        self.injector = injector
        self.mean_interval = mean_interval
        self.audit_every_tick = audit_every_tick
        self.actions: dict[str, int] = {}
        self.violations: dict[tuple[str, str], Violation] = {}
        self._stopped = True

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._stopped = False
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        delay = float(self.rng.exponential(self.mean_interval))
        self.sim.schedule(delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        choices = ["scale_out", "drain", "refactor", "fail"]
        weights = [0.3, 0.3, 0.25, 0.15]
        action = str(self.rng.choice(choices, p=weights))
        outcome = getattr(self, f"_do_{action}")()
        key = f"{action}:{outcome}" if outcome else action
        self.actions[key] = self.actions.get(key, 0) + 1
        if self.audit_every_tick:
            self.record(self.auditor.audit_running())
        self._schedule_next()

    def record(self, violations: list[Violation]) -> None:
        """Accumulate violations, de-duplicated on (invariant, detail)."""
        for violation in violations:
            self.violations.setdefault(
                (violation.invariant, violation.detail), violation
            )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _pick_model(self) -> str:
        names = sorted(self.system.specs)
        return names[int(self.rng.integers(len(names)))]

    def _do_scale_out(self) -> str:
        model = self._pick_model()
        profile = self.system.profiles[model]
        states = getattr(self.system, "_models", None)
        deploy_decode = getattr(self.system, "_deploy_decode", None)
        if states is not None:  # FlexPipe: random ladder rung
            ladder = states[model].ladder
            counts = ladder.stage_counts
            plan = ladder.plan(int(counts[int(self.rng.integers(len(counts)))]))
            deploy = lambda: self.system.factory.deploy(
                profile, plan, batch_cap=self.system.batch_cap
            )
        elif deploy_decode is not None and self.rng.random() < 0.5:
            # DistServe: also churn the decode pool, or drains could
            # empty it permanently with the fuzzer never re-growing it.
            deploy = lambda: deploy_decode(profile, model)
        else:  # baselines: their fixed granularity
            plan = self.system.plans[model]
            deploy = lambda: self.system._deploy(profile, plan)
        try:
            deploy()
        except AllocationError:
            return "blocked"
        return "ok"

    def _do_drain(self) -> str:
        factory = self.system.factory
        live = factory.live_replicas()
        if not live:
            return "noop"
        factory.release(live[int(self.rng.integers(len(live)))])
        return "ok"

    def _do_refactor(self) -> str:
        states = getattr(self.system, "_models", None)
        if not states:
            return "unsupported"
        model = self._pick_model()
        state = states[model]
        active = self.system.routers[model].active_replicas
        if not active:
            return "noop"
        replica = active[int(self.rng.integers(len(active)))]
        targets = [
            c for c in state.ladder.stage_counts if c != replica.plan.n_stages
        ]
        if not targets:
            return "noop"
        target = int(targets[int(self.rng.integers(len(targets)))])
        started = state.executor.refactor(replica, target)
        return "ok" if started else "declined"

    def _do_fail(self) -> str:
        if self.injector is None:
            return "unsupported"
        event = self.injector.inject()
        return "ok" if event is not None else "noop"


# ----------------------------------------------------------------------
# Case execution
# ----------------------------------------------------------------------
def run_chaos_case(case: ChaosCase) -> ChaosReport:
    """Run one seeded chaos scenario end-to-end and audit it.

    A crash anywhere inside the case is itself a finding: it is reported
    as a ``harness-crash`` violation on the case's report (so ``repro
    audit`` keeps its (system, seed, invariant) reproducer contract and
    the remaining seeds still run) rather than propagating.
    """
    try:
        return _run_chaos_case(case)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return ChaosReport(
            case=case,
            violations=[
                Violation(
                    "harness-crash",
                    f"{type(exc).__name__}: {exc}",
                )
            ],
        )


def _run_chaos_case(case: ChaosCase) -> ChaosReport:
    sim = Simulator()
    streams = RandomStreams(case.seed)
    knobs = streams.stream("chaos-config")
    qps = float(knobs.uniform(4.0, 12.0))
    cv = float(knobs.choice([1.0, 2.0, 4.0, 8.0]))
    cap = knobs.choice([0, 32, 128])  # 0 = no admission gate
    fragmented = bool(knobs.random() < 0.5)

    cluster = make_small_cluster(sim)
    fragmentation = None
    if fragmented:
        fragmentation = FragmentationModel(sim, cluster, streams)
        fragmentation.warm_up()
    ctx = ServingContext.create(sim, cluster, streams)
    cfg = ExperimentConfig(
        model=case.model,
        qps=qps,
        cv=cv,
        duration=case.duration,
        seed=case.seed,
        cluster="small",
        batch_cap=16,
        settle_time=case.settle,
    )
    system = CHAOS_SYSTEMS[case.system](ctx, cfg)
    try:
        system.start()
    except AllocationError:
        # An under-provisioned cold start on a fragmented cluster is part
        # of the chaos: the system proceeds with whatever replicas fit
        # (per-replica allocation is atomic, so nothing dangles).
        pass
    sim.run(until=case.settle, max_events=case.max_events)

    policy = QueueCapPolicy(_total_queue(system), int(cap)) if cap else None
    gate = AdmissionGate(system.submit, policy)
    generator = WorkloadGenerator(
        sim,
        make_arrival_process(cfg, streams),
        make_workload_sampler(cfg, streams),
        gate.submit,
        case.duration,
    )
    auditor = InvariantAuditor(system, generators=[generator], gates=[gate])
    injector = FailureInjector(
        sim,
        cluster,
        streams.stream("chaos-failures"),
        system,
        # mtbf is irrelevant (the schedule injects directly); short
        # downtimes keep the post-run quiesce window bounded.
        policy=ReclamationPolicy(
            mtbf=1e9, downtime_mean=5.0, choice=VictimChoice.SERVING_BIASED
        ),
    )
    chaos = ChaosSchedule(
        sim,
        system,
        streams.stream("chaos-actions"),
        auditor=auditor,
        injector=injector,
        mean_interval=case.mean_action_interval,
    )
    chaos.start()
    sim.run(until=case.settle + case.duration, max_events=case.max_events)
    chaos.stop()
    injector.stop()
    system.shutdown()
    if fragmentation is not None:
        fragmentation.stop()
    # Drain to quiesce: in-flight batches, pending loads, reclamation
    # restores and teardown all complete, then the conservation laws must
    # hold exactly.
    sim.run_until_idle(max_events=case.max_events)
    chaos.record(auditor.audit_quiesce())

    completed = len({r.rid for r in system.metrics.records})
    return ChaosReport(
        case=case,
        violations=list(chaos.violations.values()),
        actions=dict(sorted(chaos.actions.items())),
        offered=generator.offered,
        completed=completed,
        shed=gate.stats.rejected,
    )


def _total_queue(system):
    """Live backlog across every router (admission-cap signal)."""

    def total() -> int:
        return sum(r.total_queue for r in system.all_routers().values())

    return total


def audit_seeds(
    *,
    seeds: int = 10,
    systems: list[str] | None = None,
    runner=None,
    jobs: int | None = None,
    case_kwargs: dict | None = None,
) -> list[ChaosReport]:
    """Run the chaos audit over ``seeds`` seeds for each system.

    Cases fan out through the parallel experiment runner's worker pool
    (``--jobs`` / ``REPRO_JOBS``); the result cache is bypassed — a chaos
    audit must always re-execute.
    """
    from repro.experiments.runner import make_runner

    chosen = list(systems) if systems else sorted(CHAOS_SYSTEMS)
    unknown = [s for s in chosen if s not in CHAOS_SYSTEMS]
    if unknown:
        raise KeyError(
            f"unknown system(s) {unknown}; available: {sorted(CHAOS_SYSTEMS)}"
        )
    kwargs = case_kwargs or {}
    cases = [
        ChaosCase(system=name, seed=seed, **kwargs)
        for name in chosen
        for seed in range(seeds)
    ]
    exp_runner = make_runner(runner, jobs=jobs, use_cache=False)
    return exp_runner.map(run_chaos_case, cases)
