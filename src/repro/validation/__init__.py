"""Lifecycle-invariant validation: the auditor and the chaos fuzz harness.

FlexPipe's central claim (§6, Fig. 6) is that inflight refactoring drops
no request and leaks no resource while stage chains are swapped live.
This package turns that claim into machine-checked conservation laws:

* :class:`InvariantAuditor` — checks the invariants over a live serving
  system (cheap subset mid-run, the full set at simulation quiesce);
* :class:`ChaosSchedule` / :func:`run_chaos_case` — seeded random
  interleavings of refactor / scale-out / scale-in / drain / failure
  injection against random workloads — single-model small-cluster and
  multi-model paper-cluster shapes — asserting the auditor after each
  run (``repro audit --seeds N`` fans cases out via the parallel runner);
* :mod:`repro.validation.migration_fuzz` — direct fuzzing of the
  transfer/migration layer: random :class:`MigrationItem` sets against
  the LPT planner's scheduling invariants and random contention
  workloads against the fair-share link model (``repro fuzz``).
"""

from repro.validation.auditor import (
    InvariantAuditor,
    InvariantViolationError,
    Violation,
)
from repro.validation.chaos import (
    CHAOS_SYSTEMS,
    PAPER_FLEET_CLASSES,
    PAPER_FLEETS,
    ChaosCase,
    ChaosReport,
    ChaosSchedule,
    audit_seeds,
    paper_case,
    run_chaos_case,
)
from repro.validation.migration_fuzz import (
    MigrationFuzzCase,
    MigrationFuzzReport,
    check_method_selection,
    check_schedule,
    fuzz_migration_case,
    fuzz_seeds,
)

__all__ = [
    "CHAOS_SYSTEMS",
    "PAPER_FLEETS",
    "PAPER_FLEET_CLASSES",
    "ChaosCase",
    "ChaosReport",
    "ChaosSchedule",
    "InvariantAuditor",
    "InvariantViolationError",
    "MigrationFuzzCase",
    "MigrationFuzzReport",
    "Violation",
    "audit_seeds",
    "check_method_selection",
    "check_schedule",
    "fuzz_migration_case",
    "fuzz_seeds",
    "paper_case",
    "run_chaos_case",
]
