"""Lifecycle-invariant validation: the auditor and the chaos fuzz harness.

FlexPipe's central claim (§6, Fig. 6) is that inflight refactoring drops
no request and leaks no resource while stage chains are swapped live.
This package turns that claim into machine-checked conservation laws:

* :class:`InvariantAuditor` — checks the invariants over a live serving
  system (cheap subset mid-run, the full set at simulation quiesce);
* :class:`ChaosSchedule` / :func:`run_chaos_case` — seeded random
  interleavings of refactor / scale-out / scale-in / drain / failure
  injection against random workloads, asserting the auditor after each
  run (``repro audit --seeds N`` fans cases out via the parallel runner).
"""

from repro.validation.auditor import (
    InvariantAuditor,
    InvariantViolationError,
    Violation,
)
from repro.validation.chaos import (
    CHAOS_SYSTEMS,
    ChaosCase,
    ChaosReport,
    ChaosSchedule,
    audit_seeds,
    run_chaos_case,
)

__all__ = [
    "CHAOS_SYSTEMS",
    "ChaosCase",
    "ChaosReport",
    "ChaosSchedule",
    "InvariantAuditor",
    "InvariantViolationError",
    "Violation",
    "audit_seeds",
    "run_chaos_case",
]
