"""Fleet flight recorder: a bounded ring buffer of control-plane events.

Structured events (deploys, cache evictions with their GDSF clock state,
allocator borrows/reclaims/preemptions, refactor switches) are appended
by hooks in the control plane whenever a :class:`FlightRecorder` is
installed (``sim.recorder``, plus the cache/allocator ``recorder``
attributes for components without a simulator handle).  The buffer is a
``deque(maxlen=...)`` — overhead is bounded no matter how long the run —
and per-kind deterministic counter sampling (keep every Nth event of a
kind) bounds the append rate without any RNG draw, so traced runs stay
reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class FleetEvent:
    """One structured control-plane event."""

    seq: int  # global arrival index (pre-sampling), unique per recorder
    time: float
    kind: str
    detail: dict = field(default_factory=dict)
    shard: int | None = None  # provenance after a sharded merge

    def retagged(self, shard: int) -> "FleetEvent":
        return replace(self, shard=shard)


class FlightRecorder:
    """Bounded, sampled event bus for fleet control-plane telemetry."""

    def __init__(self, capacity: int = 65536, sample_every: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.capacity = capacity
        self.sample_every = sample_every
        self.events: deque[FleetEvent] = deque(maxlen=capacity)
        self.seen = 0  # every offered event
        self.recorded = 0  # survived sampling (may since be ring-evicted)
        self.kind_counts: dict[str, int] = {}

    def record(self, time: float, kind: str, **detail) -> None:
        self.seen += 1
        count = self.kind_counts.get(kind, 0)
        self.kind_counts[kind] = count + 1
        if count % self.sample_every:
            return
        self.recorded += 1
        self.events.append(FleetEvent(self.seen, time, kind, detail))

    @property
    def sampled_out(self) -> int:
        return self.seen - self.recorded

    @property
    def evicted(self) -> int:
        """Events that survived sampling but fell off the ring."""
        return self.recorded - len(self.events)

    def by_kind(self, kind: str) -> list[FleetEvent]:
        return [e for e in self.events if e.kind == kind]
