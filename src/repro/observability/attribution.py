"""Tail-latency attribution over finalized request traces.

Given the :class:`~repro.observability.tracer.FinalTrace` population of a
run, decompose the seconds spent by the p99/p999 tail (TTFT and full
latency) into cause buckets, per tenant and per SLO class.  Because the
span builder tiles every request's latency interval exactly (the
``span-conservation`` invariant), the attributed fraction is 1.0 by
construction — anything lower is a tracing bug, which is exactly why the
report carries the fraction instead of assuming it.

Also here: the conservation checker the auditor calls, Perfetto/Chrome
``trace_event`` JSON export, and the cross-shard trace merge with
re-tagged provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.observability.flight_recorder import FleetEvent
from repro.observability.tracer import BUCKETS, FinalTrace


def bucket_seconds(
    trace: FinalTrace, cutoff: float | None = None
) -> dict[str, float]:
    """Seconds per cause bucket, with spans clipped to ``[arrival, cutoff]``.

    ``cutoff=None`` uses the full latency interval; pass
    ``trace.prefill_done`` to decompose TTFT.
    """
    end = trace.completion if cutoff is None else cutoff
    out = dict.fromkeys(BUCKETS, 0.0)
    for span in trace.spans:
        hi = min(span.end, end)
        if hi > span.start:
            out[span.bucket] += hi - span.start
    return out


def conservation_violations(
    traces, eps: float = 1e-6
) -> list[str]:
    """Check that each trace's spans tile ``[arrival, completion]``.

    Returns human-readable defect strings (empty = invariant holds).
    Spans must be contiguous (no gap or overlap beyond ``eps``), start at
    arrival, and end at completion.
    """
    out: list[str] = []
    for trace in traces:
        tol = eps + 1e-9 * abs(trace.completion)
        if not trace.spans:
            if trace.latency > tol:
                out.append(
                    f"request {trace.rid} ({trace.model}): "
                    f"{trace.latency:.6f}s latency with no spans"
                )
            continue
        cursor = trace.arrival
        for span in trace.spans:
            if abs(span.start - cursor) > tol:
                kind = "gap" if span.start > cursor else "overlap"
                out.append(
                    f"request {trace.rid} ({trace.model}): {kind} of "
                    f"{abs(span.start - cursor):.6g}s before {span.phase} "
                    f"span at t={span.start:.6f}"
                )
                break
            if span.end < span.start:
                out.append(
                    f"request {trace.rid} ({trace.model}): negative "
                    f"{span.phase} span at t={span.start:.6f}"
                )
                break
            cursor = span.end
        else:
            if abs(cursor - trace.completion) > tol:
                out.append(
                    f"request {trace.rid} ({trace.model}): spans end at "
                    f"t={cursor:.6f} but completion is "
                    f"t={trace.completion:.6f}"
                )
    return out


# ----------------------------------------------------------------------
# Tail attribution
# ----------------------------------------------------------------------
@dataclass
class AttributionReport:
    """Cause-bucket decomposition of one tail (metric x percentile)."""

    metric: str  # "ttft" | "latency"
    percentile: float
    threshold: float  # tail entry value in seconds
    tail_count: int
    total_seconds: float  # sum of the tail's metric seconds
    buckets: dict[str, float] = field(default_factory=dict)
    by_tenant: dict[str, dict[str, float]] = field(default_factory=dict)
    by_class: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def attributed_fraction(self) -> float:
        if self.total_seconds <= 0.0:
            return 1.0
        return sum(self.buckets.values()) / self.total_seconds


def attribute_tail(
    traces: list[FinalTrace],
    *,
    metric: str = "ttft",
    percentile: float = 99.0,
) -> AttributionReport:
    """Decompose the seconds spent by the ``percentile`` tail of ``metric``."""
    if metric not in ("ttft", "latency"):
        raise ValueError(f"metric must be 'ttft' or 'latency', got {metric!r}")
    if not traces:
        return AttributionReport(metric, percentile, 0.0, 0, 0.0)
    values = np.array(
        [t.ttft if metric == "ttft" else t.latency for t in traces]
    )
    threshold = float(np.percentile(values, percentile))
    tail = [t for t, v in zip(traces, values) if v >= threshold]
    report = AttributionReport(
        metric=metric,
        percentile=percentile,
        threshold=threshold,
        tail_count=len(tail),
        total_seconds=float(
            sum(t.ttft if metric == "ttft" else t.latency for t in tail)
        ),
        buckets=dict.fromkeys(BUCKETS, 0.0),
    )
    for trace in tail:
        cutoff = trace.prefill_done if metric == "ttft" else None
        seconds = bucket_seconds(trace, cutoff)
        for bucket, value in seconds.items():
            report.buckets[bucket] += value
        for group, key in (
            (report.by_tenant, trace.model),
            (report.by_class, trace.slo_class or "-"),
        ):
            slot = group.setdefault(key, dict.fromkeys(BUCKETS, 0.0))
            for bucket, value in seconds.items():
                slot[bucket] += value
    return report


# ----------------------------------------------------------------------
# Cross-shard merge (PR-6 sharded runs)
# ----------------------------------------------------------------------
def merge_shard_traces(
    shards: list[tuple[int, list[FinalTrace], list[FleetEvent]]],
) -> tuple[list[FinalTrace], list[FleetEvent]]:
    """Merge per-shard trace payloads, re-tagging shard provenance.

    ``shards`` holds ``(shard_index, traces, recorder_events)`` triples.
    Traces merge in (arrival, rid) order and events in (time, shard, seq)
    order, so the merged result is independent of shard enumeration
    order.
    """
    traces: list[FinalTrace] = []
    events: list[FleetEvent] = []
    for index, shard_traces, shard_events in shards:
        traces.extend(t.retagged(index) for t in shard_traces)
        events.extend(e.retagged(index) for e in shard_events)
    traces.sort(key=lambda t: (t.arrival, t.rid))
    events.sort(key=lambda e: (e.time, e.shard or 0, e.seq))
    return traces, events


# ----------------------------------------------------------------------
# Perfetto / Chrome trace_event export
# ----------------------------------------------------------------------
def perfetto_trace(
    traces: list[FinalTrace],
    events: list[FleetEvent] | None = None,
) -> dict:
    """Render traces + recorder events as Chrome ``trace_event`` JSON.

    Each shard becomes a process (pid), each request a thread (tid), each
    span a complete ``"ph": "X"`` event and each recorder event a global
    instant.  Load the result in Perfetto UI / ``chrome://tracing``.
    """
    trace_events: list[dict] = []
    pids: set[int] = set()
    for trace in traces:
        pid = trace.shard if trace.shard is not None else 0
        pids.add(pid)
        args = {
            "rid": trace.rid,
            "model": trace.model,
            "class": trace.slo_class or "-",
            "replica": trace.replica or "-",
        }
        for span in trace.spans:
            trace_events.append(
                {
                    "name": span.phase,
                    "cat": span.bucket,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": (span.end - span.start) * 1e6,
                    "pid": pid,
                    "tid": trace.rid,
                    "args": {**args, "stage": span.stage},
                }
            )
    for event in events or ():
        pid = event.shard if event.shard is not None else 0
        pids.add(pid)
        trace_events.append(
            {
                "name": event.kind,
                "cat": "control-plane",
                "ph": "i",
                "s": "p",
                "ts": event.time * 1e6,
                "pid": pid,
                "tid": 0,
                "args": dict(event.detail),
            }
        )
    for pid in sorted(pids):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"shard {pid}"},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
