"""Per-request causal span tracing.

A :class:`SpanTracer` installed on the simulator (``sim.tracer``) makes
every admitted request carry a :class:`RequestTrace`.  Hooks threaded
through the serving stack record raw *marks* (timestamps the runtime
already computes — no extra events are scheduled and no RNG is drawn),
and at completion the tracer assembles them into a span list that tiles
the request's latency interval ``[arrival, completion]`` **exactly** —
the ``span-conservation`` invariant the auditor asserts.

Span phases and their cause buckets:

====================  ===========  ==========================================
phase                 bucket       meaning
====================  ===========  ==========================================
``park``              cold-load    waited in the router's pending queue with
                                   no ACTIVE replica (cold start surfaces as
                                   queue time here)
``batch-formation``   queue        waited in a replica's batcher
``stage-wait``        queue        waited for a pipeline stage to go idle
``cold-gate``         cold-load    waited for a gated stage's parameter
                                   transfer (pipelined loading)
``refactor-pause``    refactor     stage wait that overlapped an in-flight
                                   refactor transition on the serving replica
``gpu-stall``         preempt      serialised behind another model's stage
                                   occupying the shared GPU
``prefill``           prefill      prefill execution seconds
``decode``            decode       decode execution seconds
``handoff``           handoff      inter-stage activation transfer
====================  ===========  ==========================================

Everything is a plain attribute read when tracing is off, so untraced
runs stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.workloads.requests import Request

#: Cause buckets the attribution report decomposes tail seconds into.
BUCKETS = (
    "queue",
    "cold-load",
    "refactor",
    "preempt",
    "prefill",
    "decode",
    "handoff",
)

#: span phase -> cause bucket
PHASE_BUCKET = {
    "park": "cold-load",
    "batch-formation": "queue",
    "stage-wait": "queue",
    "cold-gate": "cold-load",
    "refactor-pause": "refactor",
    "gpu-stall": "preempt",
    "prefill": "prefill",
    "decode": "decode",
    "handoff": "handoff",
}


@dataclass(frozen=True)
class Span:
    """One contiguous, causally-labelled slice of a request's lifetime."""

    phase: str
    bucket: str
    start: float
    end: float
    stage: int = -1  # pipeline stage index; -1 = not stage-scoped
    replica: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FinalTrace:
    """A completed request's finalized span tree (picklable, immutable).

    ``shard`` carries provenance after a PR-6 sharded run is merged;
    monolithic runs leave it ``None``.
    """

    rid: int
    model: str
    slo_class: str | None
    arrival: float
    prefill_done: float
    completion: float
    replica: str | None
    spans: tuple[Span, ...]
    shard: int | None = None

    @property
    def ttft(self) -> float:
        return self.prefill_done - self.arrival

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    def retagged(self, shard: int) -> "FinalTrace":
        return replace(self, shard=shard)


class JobMarks:
    """Raw per-stage timing marks shared by every request of one batch.

    ``stages`` holds one tuple per executed stage::

        (index, enqueued_at, started_at, gate_wait, stall, completion,
         prefill_scaled)

    where ``gate_wait`` is the slice of the stage wait spent behind a
    pipelined-loading gate, ``stall`` the GPU-serialisation delay before
    execution, ``completion`` the recorded GPU completion timestamp
    (stored verbatim so spans tile bit-exactly), and ``prefill_scaled``
    the interference-scaled prefill seconds of the stage's busy time.
    """

    __slots__ = ("jid", "replica", "dispatched_at", "stages")

    def __init__(self, jid: int, replica: str, dispatched_at: float):
        self.jid = jid
        self.replica = replica
        self.dispatched_at = dispatched_at
        self.stages: list[tuple] = []


class RequestTrace:
    """Mutable per-request mark sheet, attached as ``request.trace``."""

    __slots__ = (
        "rid",
        "model",
        "slo_class",
        "arrival",
        "parked_at",
        "unparked_at",
        "routed_at",
        "shed_at",
        "job",
    )

    def __init__(self, request: Request):
        self.rid = request.rid
        self.model = request.model
        self.slo_class = request.slo_class
        self.arrival = request.arrival_time
        self.parked_at: float | None = None
        self.unparked_at: float | None = None
        self.routed_at: float | None = None
        self.shed_at: float | None = None
        self.job: JobMarks | None = None


class SpanTracer:
    """Collects marks from the serving stack and finalizes span trees."""

    def __init__(self):
        self.begun = 0
        self.shed_count = 0
        self.finalized: list[FinalTrace] = []
        # replica name -> [start, end] transition windows (end None while
        # the transition is still in flight).  Lives here — not in the
        # flight recorder — so ring-buffer eviction can never lose a
        # window the span builder still needs.
        self.refactor_windows: dict[str, list[list]] = {}

    # ------------------------------------------------------------------
    # Marks (called from the serving-stack hooks)
    # ------------------------------------------------------------------
    def begin(self, request: Request) -> RequestTrace:
        trace = RequestTrace(request)
        request.trace = trace
        self.begun += 1
        return trace

    def shed(self, request: Request, now: float) -> None:
        trace = request.trace
        if trace is not None:
            trace.shed_at = now
            self.shed_count += 1

    def attach_job(self, job, replica: str, now: float) -> JobMarks:
        marks = JobMarks(job.jid, replica, now)
        job.marks = marks
        for request in job.requests:
            trace = request.trace
            if trace is not None:
                trace.job = marks
        return marks

    def refactor_begin(self, replica: str, now: float) -> None:
        self.refactor_windows.setdefault(replica, []).append([now, None])

    def refactor_end(self, replica: str, now: float) -> None:
        windows = self.refactor_windows.get(replica)
        if windows and windows[-1][1] is None:
            windows[-1][1] = now

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def complete(self, request: Request) -> FinalTrace | None:
        trace = request.trace
        if trace is None or request.completion_time is None:
            return None
        spans = self._build_spans(trace, request)
        final = FinalTrace(
            rid=trace.rid,
            model=trace.model,
            slo_class=trace.slo_class,
            arrival=request.arrival_time,
            prefill_done=request.prefill_done,
            completion=request.completion_time,
            replica=trace.job.replica if trace.job is not None else None,
            spans=tuple(spans),
        )
        self.finalized.append(final)
        return final

    def _build_spans(self, trace: RequestTrace, request: Request) -> list[Span]:
        spans: list[Span] = []
        replica = trace.job.replica if trace.job is not None else None

        def emit(phase: str, start: float, end: float, stage: int = -1) -> None:
            if end > start:
                spans.append(
                    Span(phase, PHASE_BUCKET[phase], start, end, stage, replica)
                )

        cursor = request.arrival_time
        if trace.parked_at is not None:
            unparked = (
                trace.unparked_at
                if trace.unparked_at is not None
                else request.batch_time
            )
            emit("park", cursor, unparked)
            cursor = unparked
        if request.batch_time is not None:
            emit("batch-formation", cursor, request.batch_time)
            cursor = request.batch_time
        marks = trace.job
        if marks is not None:
            windows = self.refactor_windows.get(marks.replica, ())
            for (
                index,
                enqueued_at,
                started,
                gate_wait,
                stall,
                completion,
                prefill_scaled,
            ) in marks.stages:
                # The gap between the previous stage's completion and this
                # stage's enqueue is the activation handoff.
                emit("handoff", cursor, enqueued_at, index)
                t = enqueued_at
                if gate_wait > 0.0:
                    emit("cold-gate", t, t + gate_wait, index)
                    t = t + gate_wait
                # Remaining stage wait, split against this replica's
                # refactor-transition windows.
                for seg_start, seg_end, in_refactor in _split_by_windows(
                    t, started, windows
                ):
                    emit(
                        "refactor-pause" if in_refactor else "stage-wait",
                        seg_start,
                        seg_end,
                        index,
                    )
                exec_start = started + stall
                emit("gpu-stall", started, exec_start, index)
                prefill_end = min(exec_start + prefill_scaled, completion)
                emit("prefill", exec_start, prefill_end, index)
                emit("decode", prefill_end, completion, index)
                cursor = completion
        # Any residue (a path the builder does not model) is surfaced as
        # queue time rather than silently dropped; the conservation
        # auditor still sees a fully tiled interval.
        emit("stage-wait", cursor, request.completion_time)
        return spans


def _split_by_windows(start: float, end: float, windows) -> list[tuple]:
    """Split ``[start, end]`` into ``(s, e, in_window)`` segments against
    a list of ``[w_start, w_end_or_None]`` windows (None = still open)."""
    if start >= end:
        return []
    marks: list[tuple] = []
    cursor = start
    for w_start, w_end in windows:
        w_end = end if w_end is None else w_end
        lo = max(cursor, w_start)
        hi = min(end, w_end)
        if hi <= lo:
            continue
        if lo > cursor:
            marks.append((cursor, lo, False))
        marks.append((lo, hi, True))
        cursor = hi
        if cursor >= end:
            break
    if cursor < end:
        marks.append((cursor, end, False))
    return marks
