"""Causal request tracing, fleet flight recorder, tail attribution.

The package is entirely opt-in: nothing here runs unless a
:class:`SpanTracer` / :class:`FlightRecorder` is installed on the
simulator (``sim.tracer`` / ``sim.recorder``).  Every hook threaded
through the serving stack is a plain attribute read when tracing is
off, so untraced runs stay byte-identical.
"""

from repro.observability.attribution import (
    AttributionReport,
    attribute_tail,
    bucket_seconds,
    conservation_violations,
    merge_shard_traces,
    perfetto_trace,
)
from repro.observability.flight_recorder import FleetEvent, FlightRecorder
from repro.observability.tracer import (
    BUCKETS,
    FinalTrace,
    RequestTrace,
    Span,
    SpanTracer,
)

__all__ = [
    "BUCKETS",
    "AttributionReport",
    "FinalTrace",
    "FleetEvent",
    "FlightRecorder",
    "RequestTrace",
    "Span",
    "SpanTracer",
    "attribute_tail",
    "bucket_seconds",
    "conservation_violations",
    "merge_shard_traces",
    "perfetto_trace",
]
