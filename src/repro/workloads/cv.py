"""Coefficient-of-variation estimators (Fig. 1 methodology + §6 monitoring).

Two distinct CVs appear in the paper:

* **inter-arrival CV** ``ν_t = σ_t / μ_t`` of request gaps — the control
  signal of the granularity policy (Eq. 4);
* **windowed count CV** — the Fig. 1 statistic, computed over per-window
  request counts, whose value depends strongly on the window size (the 7x
  mismatch motivating runtime adaptation).
"""

from __future__ import annotations

from collections import deque

import numpy as np


def interarrival_cv(timestamps: list[float] | np.ndarray) -> float:
    """CV of inter-arrival gaps; 0.0 when fewer than 3 arrivals."""
    ts = np.asarray(timestamps, dtype=float)
    if ts.size < 3:
        return 0.0
    gaps = np.diff(np.sort(ts))
    mean = gaps.mean()
    if mean <= 0:
        return 0.0
    return float(gaps.std() / mean)


def count_cv(timestamps: list[float] | np.ndarray, window: float, duration: float | None = None) -> float:
    """CV of per-window request counts (the Fig. 1 statistic)."""
    ts = np.asarray(timestamps, dtype=float)
    if ts.size == 0:
        return 0.0
    end = duration if duration is not None else float(ts.max()) + 1e-9
    n_bins = max(int(np.ceil(end / window)), 1)
    if n_bins < 2:
        return 0.0
    counts, _ = np.histogram(ts, bins=n_bins, range=(0.0, n_bins * window))
    mean = counts.mean()
    if mean <= 0:
        return 0.0
    return float(counts.std() / mean)


class SlidingWindowCV:
    """Online inter-arrival CV over a sliding time window.

    The FlexPipe monitor samples this every optimisation interval; it keeps
    only the timestamps inside the window so memory stays bounded.
    """

    def __init__(self, window: float = 60.0, min_samples: int = 4):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.min_samples = min_samples
        self._times: deque[float] = deque()
        self._last_arrival: float | None = None

    def observe(self, timestamp: float) -> None:
        if self._last_arrival is not None and timestamp < self._last_arrival - 1e-9:
            raise ValueError("arrivals must be observed in time order")
        self._times.append(timestamp)
        self._last_arrival = timestamp

    def _trim(self, now: float) -> None:
        horizon = now - self.window
        while self._times and self._times[0] < horizon:
            self._times.popleft()

    def value(self, now: float) -> float:
        """Current inter-arrival CV; 0.0 until enough samples arrive."""
        self._trim(now)
        if len(self._times) < self.min_samples:
            return 0.0
        return interarrival_cv(list(self._times))

    def arrival_rate(self, now: float) -> float:
        """Requests/second over the current window."""
        self._trim(now)
        if not self._times:
            return 0.0
        span = min(self.window, max(now - self._times[0], 1e-9))
        return len(self._times) / span

    def count(self, now: float) -> int:
        self._trim(now)
        return len(self._times)
