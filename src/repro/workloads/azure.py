"""Azure-Functions-style invocation traces (the paper's workload source).

The paper drives its evaluation with Microsoft Azure Functions traces [57]
(per-minute invocation counts per function, keyed by hashed owner/app ids)
and reports the Fig. 1 phenomenon on the "Top-1" and "Top-2" apps: the CV
of the request distribution differs by up to 7x depending on the window it
is measured over.  The real dataset is proprietary-scale but its *schema*
is public, so this module provides:

* :class:`FunctionTrace` / :class:`TraceBundle` — in-memory representation
  of per-minute invocation-count traces, one row per function;
* CSV read/write in the Azure Functions dataset layout
  (``HashOwner,HashApp,HashFunction,Trigger,1,2,...,N``);
* :func:`synthesize_azure_like` — a generator that reproduces the dataset's
  published structure (Zipf app popularity, diurnal + weekly envelopes,
  bursty minutes) so every experiment has a drop-in substitute;
* :func:`counts_to_timestamps` — thinning binned counts into request
  timestamps for replay through the simulator;
* :class:`TraceReplayArrivals` — an :class:`~repro.workloads.arrivals.\
ArrivalProcess` that replays a trace, composable with every driver that
  accepts synthetic arrivals.
"""

from __future__ import annotations

import csv
import math
import pathlib
from dataclasses import dataclass

import numpy as np

from repro.workloads.arrivals import ArrivalProcess

#: Bin width of the real Azure Functions dataset.
AZURE_BIN_SECONDS = 60.0

#: The Fig. 1 measurement windows (seconds).
FIG1_WINDOWS = (180.0, 3 * 3600.0, 12 * 3600.0)


@dataclass(frozen=True)
class FunctionTrace:
    """Per-minute invocation counts for one serverless function.

    ``counts[i]`` is the number of invocations in bin ``i``; bins are
    ``bin_seconds`` wide and start at t=0.
    """

    owner: str
    app: str
    function: str
    trigger: str
    counts: np.ndarray
    bin_seconds: float = AZURE_BIN_SECONDS

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.ndim != 1:
            raise ValueError(f"counts must be 1-D, got shape {counts.shape}")
        if (counts < 0).any():
            raise ValueError("invocation counts cannot be negative")
        if self.bin_seconds <= 0:
            raise ValueError(f"bin_seconds must be positive, got {self.bin_seconds}")
        object.__setattr__(self, "counts", counts)

    @property
    def n_bins(self) -> int:
        return int(self.counts.shape[0])

    @property
    def duration(self) -> float:
        """Trace length in seconds."""
        return self.n_bins * self.bin_seconds

    @property
    def total_invocations(self) -> int:
        return int(self.counts.sum())

    @property
    def mean_rate(self) -> float:
        """Average request rate in req/s over the whole trace."""
        if self.n_bins == 0:
            return 0.0
        return self.total_invocations / self.duration

    def rate_series(self) -> np.ndarray:
        """Per-bin request rate in req/s."""
        return self.counts / self.bin_seconds

    def rescaled(self, target_mean_rate: float) -> "FunctionTrace":
        """Scale counts so the mean rate becomes ``target_mean_rate`` req/s.

        Scaling preserves the *shape* (and therefore every windowed CV) while
        letting experiments replay a trace against a differently sized
        deployment.  Counts are rounded stochastically-free (largest
        remainder) so the total matches the target as closely as integer
        counts allow.
        """
        if target_mean_rate <= 0:
            raise ValueError("target_mean_rate must be positive")
        if self.total_invocations == 0:
            raise ValueError("cannot rescale an empty trace")
        factor = target_mean_rate * self.duration / self.total_invocations
        scaled = self.counts * factor
        floors = np.floor(scaled).astype(np.int64)
        deficit = int(round(scaled.sum())) - int(floors.sum())
        if deficit > 0:
            # Give the remaining invocations to the bins with the largest
            # fractional remainders, keeping the temporal shape intact.
            remainders = scaled - floors
            top = np.argsort(remainders)[::-1][:deficit]
            floors[top] += 1
        return FunctionTrace(
            self.owner, self.app, self.function, self.trigger, floors, self.bin_seconds
        )

    def window_cv(self, window: float) -> float:
        """CV of invocation counts aggregated into ``window``-second bins."""
        return binned_count_cv(self.counts, self.bin_seconds, window)


def binned_count_cv(counts: np.ndarray, bin_seconds: float, window: float) -> float:
    """CV of counts re-aggregated from ``bin_seconds`` bins into ``window`` bins.

    Fig. 1 measures the CV of the request distribution at several window
    sizes; for a binned trace that is the std/mean of window-aggregated
    counts.  ``window`` is rounded to a whole number of source bins (and
    must be at least one bin).
    """
    counts = np.asarray(counts, dtype=np.float64)
    if window < bin_seconds:
        raise ValueError(
            f"window ({window}s) must be >= the trace bin width ({bin_seconds}s)"
        )
    group = max(int(round(window / bin_seconds)), 1)
    n_groups = counts.shape[0] // group
    if n_groups < 2:
        raise ValueError(
            f"trace too short: {counts.shape[0]} bins give {n_groups} windows of "
            f"{group} bins; need >= 2"
        )
    grouped = counts[: n_groups * group].reshape(n_groups, group).sum(axis=1)
    mean = grouped.mean()
    if mean == 0:
        return 0.0
    return float(grouped.std() / mean)


def multi_window_cv(
    trace: FunctionTrace, windows: tuple[float, ...] = FIG1_WINDOWS
) -> dict[float, float]:
    """The Fig. 1 measurement: CV of one trace at several window sizes."""
    return {w: trace.window_cv(w) for w in windows}


class TraceBundle:
    """A collection of function traces sharing a common bin grid.

    Mirrors one day-file of the Azure Functions dataset: many functions,
    grouped into apps, grouped into owners.
    """

    def __init__(self, functions: list[FunctionTrace]):
        if not functions:
            raise ValueError("a TraceBundle needs at least one function trace")
        n_bins = functions[0].n_bins
        bin_seconds = functions[0].bin_seconds
        for f in functions:
            if f.n_bins != n_bins or f.bin_seconds != bin_seconds:
                raise ValueError(
                    "all traces in a bundle must share bin width and length"
                )
        self.functions = list(functions)
        self.bin_seconds = bin_seconds
        self.n_bins = n_bins

    def __len__(self) -> int:
        return len(self.functions)

    @property
    def duration(self) -> float:
        return self.n_bins * self.bin_seconds

    def app_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        for f in self.functions:
            seen.setdefault(f.app, None)
        return list(seen)

    def app_trace(self, app: str) -> FunctionTrace:
        """Sum all functions of ``app`` into one per-app trace."""
        rows = [f for f in self.functions if f.app == app]
        if not rows:
            raise KeyError(f"unknown app {app!r}")
        counts = np.sum([f.counts for f in rows], axis=0)
        return FunctionTrace(
            rows[0].owner, app, f"{app}-all", "aggregate", counts, self.bin_seconds
        )

    def total_trace(self) -> FunctionTrace:
        """Sum every function into one cluster-wide trace (Fig. 1a)."""
        counts = np.sum([f.counts for f in self.functions], axis=0)
        return FunctionTrace("all", "all", "all", "aggregate", counts, self.bin_seconds)

    def top_apps(self, k: int = 2) -> list[FunctionTrace]:
        """Apps ranked by total invocations — the paper's Top-1/Top-2 apps."""
        if k < 1:
            raise ValueError("k must be >= 1")
        per_app = [(self.app_trace(a)) for a in self.app_ids()]
        per_app.sort(key=lambda t: t.total_invocations, reverse=True)
        return per_app[:k]

    # ------------------------------------------------------------------
    # CSV IO (Azure Functions dataset layout)
    # ------------------------------------------------------------------
    HEADER_PREFIX = ["HashOwner", "HashApp", "HashFunction", "Trigger"]

    def write_csv(self, path: str | pathlib.Path) -> None:
        """Write the bundle in the Azure dataset layout (one row/function)."""
        path = pathlib.Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                self.HEADER_PREFIX + [str(i + 1) for i in range(self.n_bins)]
            )
            for f in self.functions:
                writer.writerow(
                    [f.owner, f.app, f.function, f.trigger] + f.counts.tolist()
                )

    @classmethod
    def read_csv(
        cls, path: str | pathlib.Path, bin_seconds: float = AZURE_BIN_SECONDS
    ) -> "TraceBundle":
        """Read a bundle written by :meth:`write_csv` (or the real dataset)."""
        path = pathlib.Path(path)
        functions = []
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if header[: len(cls.HEADER_PREFIX)] != cls.HEADER_PREFIX:
                raise ValueError(
                    f"{path} does not look like an Azure Functions trace "
                    f"(header starts {header[:4]!r})"
                )
            for row in reader:
                if not row:
                    continue
                owner, app, function, trigger = row[:4]
                counts = np.array([int(x) for x in row[4:]], dtype=np.int64)
                functions.append(
                    FunctionTrace(owner, app, function, trigger, counts, bin_seconds)
                )
        return cls(functions)


# ----------------------------------------------------------------------
# Synthetic Azure-like generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AzureSynthConfig:
    """Knobs for :func:`synthesize_azure_like`.

    Defaults are chosen so the synthetic bundle reproduces the published
    structure of the dataset: a Zipf-like popularity skew (a handful of
    apps dominate), diurnal rate envelopes with per-app phase offsets, and
    rare large burst minutes that give short-window CV its 7x excess over
    long-window CV.
    """

    n_apps: int = 40
    functions_per_app: int = 3
    days: float = 2.0
    bin_seconds: float = AZURE_BIN_SECONDS
    mean_total_rate: float = 20.0  # req/s across the whole bundle
    zipf_exponent: float = 1.2
    diurnal_amplitude: float = 0.55
    weekly_amplitude: float = 0.15
    burst_probability: float = 0.004  # per app-bin
    burst_scale: float = 25.0  # burst minutes multiply the base rate
    dispersion: float = 1.6  # negative-binomial overdispersion of bin counts


def _negative_binomial_counts(
    rng: np.random.Generator, mean: np.ndarray, dispersion: float
) -> np.ndarray:
    """Overdispersed per-bin counts with the given per-bin means.

    ``dispersion`` > 1 yields variance = dispersion * mean (Poisson when 1),
    matching the bursty minute-level counts seen in production FaaS traces.
    """
    mean = np.clip(mean, 0.0, None)
    if dispersion <= 1.0 + 1e-9:
        return rng.poisson(mean).astype(np.int64)
    # Gamma-Poisson mixture: shape r, success p with var = m * dispersion.
    r = mean / (dispersion - 1.0)
    lam = rng.gamma(np.clip(r, 1e-9, None), dispersion - 1.0)
    lam[mean == 0] = 0.0
    return rng.poisson(lam).astype(np.int64)


def synthesize_azure_like(
    rng: np.random.Generator, config: AzureSynthConfig | None = None
) -> TraceBundle:
    """Generate a bundle with the Azure dataset's published structure.

    The output is deterministic given ``rng`` state, writes/reads losslessly
    through the CSV layer, and exhibits the Fig. 1 multi-window CV mismatch
    (short windows see burst minutes, long windows see diurnal swings).
    """
    cfg = config or AzureSynthConfig()
    n_bins = int(round(cfg.days * 86_400.0 / cfg.bin_seconds))
    if n_bins < 2:
        raise ValueError("trace must span at least two bins")
    t = (np.arange(n_bins) + 0.5) * cfg.bin_seconds

    # Zipf-like popularity: app i gets weight 1/(i+1)^s.
    weights = 1.0 / np.arange(1, cfg.n_apps + 1) ** cfg.zipf_exponent
    weights /= weights.sum()

    functions: list[FunctionTrace] = []
    triggers = ["http", "queue", "timer", "event"]
    for a, app_weight in enumerate(weights):
        app_rate = cfg.mean_total_rate * app_weight  # req/s for the app
        phase = rng.uniform(0.0, 86_400.0)
        diurnal = 1.0 + cfg.diurnal_amplitude * np.sin(
            2 * np.pi * (t + phase) / 86_400.0
        )
        weekly = 1.0 + cfg.weekly_amplitude * np.sin(
            2 * np.pi * (t + phase) / (7 * 86_400.0)
        )
        envelope = np.clip(diurnal * weekly, 0.05, None)
        # Rare burst minutes: multiply selected bins by burst_scale.
        bursts = rng.random(n_bins) < cfg.burst_probability
        envelope = envelope * np.where(bursts, cfg.burst_scale, 1.0)
        # Split the app's rate across its functions (uneven, Dirichlet).
        shares = rng.dirichlet(np.ones(cfg.functions_per_app) * 2.0)
        for fi, share in enumerate(shares):
            mean_per_bin = app_rate * share * cfg.bin_seconds * envelope
            counts = _negative_binomial_counts(rng, mean_per_bin, cfg.dispersion)
            functions.append(
                FunctionTrace(
                    owner=f"owner{a:03d}",
                    app=f"app{a:03d}",
                    function=f"app{a:03d}-fn{fi}",
                    trigger=triggers[fi % len(triggers)],
                    counts=counts,
                    bin_seconds=cfg.bin_seconds,
                )
            )
    return TraceBundle(functions)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def counts_to_timestamps(
    trace: FunctionTrace,
    rng: np.random.Generator,
    *,
    placement: str = "uniform",
) -> np.ndarray:
    """Thin a binned trace into sorted request timestamps.

    ``placement`` controls where invocations land inside their bin:

    * ``"uniform"`` — i.i.d. uniform within the bin (the standard way to
      replay minute-binned FaaS traces);
    * ``"start"`` — all at the bin start (worst-case burst alignment, used
      to stress admission and scaling logic).
    """
    if placement not in ("uniform", "start"):
        raise ValueError(f"unknown placement {placement!r}")
    spans = []
    for i, c in enumerate(trace.counts):
        c = int(c)
        if c == 0:
            continue
        start = i * trace.bin_seconds
        if placement == "uniform":
            spans.append(start + rng.uniform(0.0, trace.bin_seconds, size=c))
        else:
            spans.append(np.full(c, start))
    if not spans:
        return np.empty(0, dtype=np.float64)
    stamps = np.concatenate(spans)
    stamps.sort()
    return stamps


class TraceReplayArrivals(ArrivalProcess):
    """Replays a (possibly rescaled) trace as an arrival process.

    After the trace is exhausted :meth:`next_interarrival` returns
    ``math.inf`` so drivers naturally stop admitting new work.
    """

    def __init__(
        self,
        trace: FunctionTrace,
        rng: np.random.Generator,
        *,
        target_mean_rate: float | None = None,
        placement: str = "uniform",
    ):
        if target_mean_rate is not None:
            trace = trace.rescaled(target_mean_rate)
        rate = max(trace.mean_rate, 1e-12)
        super().__init__(rate, rng)
        self.trace = trace
        self._stamps = counts_to_timestamps(trace, rng, placement=placement)
        self._index = 0
        self._last = 0.0

    def next_interarrival(self) -> float:
        if self._index >= self._stamps.shape[0]:
            return math.inf
        stamp = float(self._stamps[self._index])
        self._index += 1
        gap = stamp - self._last
        self._last = stamp
        return max(gap, 0.0)

    def cv(self) -> float:
        """Empirical inter-arrival CV of the replayed timestamps."""
        if self._stamps.shape[0] < 3:
            return 0.0
        gaps = np.diff(self._stamps)
        mean = gaps.mean()
        if mean <= 0:
            return 0.0
        return float(gaps.std() / mean)

    @property
    def remaining(self) -> int:
        return int(self._stamps.shape[0] - self._index)


def fig1_report(
    bundle: TraceBundle, windows: tuple[float, ...] = FIG1_WINDOWS
) -> dict[str, dict[float, float]]:
    """Fig. 1 in one call: multi-window CV for the total and top-2 apps."""
    out = {"total": multi_window_cv(bundle.total_trace(), windows)}
    for rank, app in enumerate(bundle.top_apps(2), start=1):
        out[f"top{rank}"] = multi_window_cv(app, windows)
    return out
