"""Inference requests and the Splitwise-like length sampler."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np


@dataclass
class Request:
    """One inference request plus its measured lifecycle.

    Timing fields are filled in by the pipeline runtime; ``None`` means the
    phase has not happened (yet).
    """

    rid: int
    model: str
    arrival_time: float
    prompt_tokens: int
    output_tokens: int
    slo_latency: float
    # QoS class name (see repro.qos.classes); None = unclassed (the
    # historical behaviour: slo_latency alone defines the deadline).
    slo_class: str | None = None
    # --- lifecycle, filled during simulation ---
    batch_time: float | None = None  # admitted into a batch
    exec_start: float | None = None  # first stage began computing
    prefill_done: float | None = None
    completion_time: float | None = None
    queue_time: float = 0.0
    exec_time: float = 0.0
    comm_time: float = 0.0
    rejected: bool = False
    # Observability: the span tracer's per-request mark sheet (a
    # repro.observability.tracer.RequestTrace); None unless tracing is on.
    trace: object | None = None

    @property
    def latency(self) -> float | None:
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def prefill_latency(self) -> float | None:
        if self.prefill_done is None:
            return None
        return self.prefill_done - self.arrival_time

    @property
    def slo_met(self) -> bool:
        latency = self.latency
        return latency is not None and latency <= self.slo_latency

    @property
    def completed(self) -> bool:
        return self.completion_time is not None


@dataclass(frozen=True)
class LengthDistribution:
    """Log-normal token-length distribution clipped to [lo, hi]."""

    median: float
    sigma: float
    lo: int
    hi: int

    def sample(self, rng: np.random.Generator) -> int:
        value = rng.lognormal(np.log(self.median), self.sigma)
        return int(np.clip(round(value), self.lo, self.hi))


def rid_namespace(name: str) -> int:
    """Deterministic rid base for a named request stream.

    Several samplers feed one run in multi-tenant scenarios; each must
    mint globally unique request ids or conservation audits (and any
    rid-keyed dedup) would conflate requests of different tenants.  The
    empty name maps to 0, keeping single-sampler runs byte-identical to
    the historical numbering.
    """
    from repro.simulation.randomness import stable_hash

    if not name:
        return 0
    return ((stable_hash(name) & 0x7FFFFFFF) | 0x1) << 32


class RequestSampler:
    """Draws request shapes (prompt/output lengths) for a model.

    Defaults follow the Splitwise corpus shape: prompts in the hundreds of
    tokens with a heavy tail, short-to-moderate outputs.  ``rid_base``
    offsets this sampler's request ids (see :func:`rid_namespace`).
    """

    def __init__(
        self,
        model: str,
        rng: np.random.Generator,
        *,
        prompt: LengthDistribution | None = None,
        output: LengthDistribution | None = None,
        slo_latency: float = 5.0,
        rid_base: int = 0,
        slo_class: str | None = None,
    ):
        self.model = model
        self.rng = rng
        self.prompt = prompt or LengthDistribution(median=512, sigma=0.6, lo=16, hi=4096)
        self.output = output or LengthDistribution(median=16, sigma=0.7, lo=1, hi=256)
        self.slo_latency = slo_latency
        self.rid_base = rid_base
        self.slo_class = slo_class
        self._ids = itertools.count()

    def sample(self, arrival_time: float) -> Request:
        return Request(
            rid=self.rid_base + next(self._ids),
            model=self.model,
            arrival_time=arrival_time,
            prompt_tokens=self.prompt.sample(self.rng),
            output_tokens=self.output.sample(self.rng),
            slo_latency=self.slo_latency,
            slo_class=self.slo_class,
        )
