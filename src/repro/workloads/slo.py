"""Service-level objectives used for goodput accounting."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SLO:
    """Latency target defining goodput: responses slower than
    ``latency_target`` count as throughput but not goodput."""

    latency_target: float = 5.0

    def __post_init__(self) -> None:
        if self.latency_target <= 0:
            raise ValueError(f"latency target must be positive, got {self.latency_target}")

    def met(self, latency: float | None) -> bool:
        return latency is not None and latency <= self.latency_target
