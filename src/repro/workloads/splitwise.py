"""Splitwise-like prompt/output corpus (the paper's prompt source).

The evaluation supplements Azure traces "with the Splitwise corpus for
prompt generation" (§9).  Splitwise [31] published production token-count
distributions for two LLM services: *conversation* (chat) and *coding*
(code completion).  Only the token counts — not the text — affect serving
behaviour, so this module reproduces the corpus as parametric length
distributions fit to the published summary statistics:

* conversation: prompts with median ≈ 1020 tokens and a heavy tail to the
  context limit; generations with median ≈ 205 tokens;
* coding: much longer prompts (median ≈ 1930 tokens, near-limit tail) and
  very short generations (median ≈ 13 tokens).

The fits are log-normal (clipped), which matches the published CDFs'
heavy-tailed shape.  Scenario objects plug directly into
:class:`~repro.workloads.requests.RequestSampler`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.requests import LengthDistribution, Request, RequestSampler


@dataclass(frozen=True)
class SplitwiseScenario:
    """One production service's token-shape profile."""

    name: str
    prompt: LengthDistribution
    output: LengthDistribution

    def sampler(
        self,
        model: str,
        rng: np.random.Generator,
        *,
        slo_latency: float = 5.0,
    ) -> RequestSampler:
        """A request sampler drawing this scenario's token shapes."""
        return RequestSampler(
            model,
            rng,
            prompt=self.prompt,
            output=self.output,
            slo_latency=slo_latency,
        )

    def mean_prompt_tokens(self, rng: np.random.Generator, n: int = 4096) -> float:
        """Monte-Carlo mean prompt length (clipping makes it non-analytic)."""
        return float(
            np.mean([self.prompt.sample(rng) for _ in range(n)])
        )


#: Chat-style traffic: medium prompts, long generations.
CONVERSATION = SplitwiseScenario(
    name="conversation",
    prompt=LengthDistribution(median=1020, sigma=0.9, lo=16, hi=8192),
    output=LengthDistribution(median=205, sigma=0.8, lo=1, hi=1024),
)

#: Code-completion traffic: long prompts, very short generations.
CODING = SplitwiseScenario(
    name="coding",
    prompt=LengthDistribution(median=1930, sigma=0.7, lo=64, hi=8192),
    output=LengthDistribution(median=13, sigma=0.9, lo=1, hi=256),
)

SCENARIOS: dict[str, SplitwiseScenario] = {
    CONVERSATION.name: CONVERSATION,
    CODING.name: CODING,
}


def get_scenario(name: str) -> SplitwiseScenario:
    """Look up a scenario by name (``"conversation"`` or ``"coding"``)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown Splitwise scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


class MixedCorpusSampler:
    """Samples requests from a weighted mix of Splitwise scenarios.

    Production clusters serve chat and coding traffic side by side; the mix
    ratio shifts the prompt/generation balance and therefore the prefill/
    decode split every pipeline stage sees.
    """

    def __init__(
        self,
        model: str,
        rng: np.random.Generator,
        *,
        weights: dict[str, float] | None = None,
        slo_latency: float = 5.0,
    ):
        if weights is None:
            weights = {"conversation": 0.7, "coding": 0.3}
        if not weights:
            raise ValueError("need at least one scenario weight")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("scenario weights must sum to a positive value")
        self.rng = rng
        self._names = list(weights)
        self._probs = np.array([weights[n] / total for n in self._names])
        self._samplers = {
            n: get_scenario(n).sampler(model, rng, slo_latency=slo_latency)
            for n in self._names
        }
        self.model = model

    def sample(self, arrival_time: float) -> Request:
        name = self._names[int(self.rng.choice(len(self._names), p=self._probs))]
        return self._samplers[name].sample(arrival_time)
