"""Streaming ingestion of the real AzureFunctionsDataset2019 format.

The published Microsoft Azure Functions 2019 dataset (the canonical
serverless trace, used by DeepServe / HydraServe / the FlexPipe paper's
workload section) ships as fourteen day-files:

* ``invocations_per_function_md.anon.d01.csv`` .. ``d14.csv`` — one row
  per function (``HashOwner,HashApp,HashFunction,Trigger``) followed by
  1440 per-minute invocation counts (day ``d`` covers absolute minutes
  ``[(d-1)*1440, d*1440)``);
* ``function_durations_percentiles.anon.dNN.csv`` — per-function
  execution-time statistics (``Average``/``Count``/``Minimum``/
  ``Maximum`` plus ``percentile_Average_{0,1,25,50,75,99,100}``, ms);
* ``app_memory_percentiles.anon.dNN.csv`` — per-app allocated-memory
  statistics (``SampleCount``, ``AverageAllocatedMb`` plus
  ``AverageAllocatedMb_pct{1,5,25,50,75,95,99,100}``).

This module ingests that layout at production scale without ever holding
it in memory:

* :func:`load_window` streams the day-files twice — pass one keeps one
  running total per function (for volume ranking), pass two keeps only
  the top-K selected functions' per-minute counts inside the requested
  window — so peak memory is ``O(functions + top_k * window_minutes)``
  regardless of how many day-files or invocations the window spans.
  Malformed rows are skipped (and counted), missing minutes/day-files
  read as zero invocations, and duplicate function hashes accumulate
  into one function.
* :func:`map_functions_to_zoo` assigns the ranked functions onto the
  synthetic ``FLEET-<rank>-<size>g`` model namespace with a seeded,
  volume-tiered rule: heavy functions land on small always-hot models,
  the long tail lands on larger cold models (the dataset's memory
  percentiles nudge sizes inside each tier; its duration averages pick
  each tenant's decode length).
* :func:`iter_minted_stamps` mints arrival timestamps as a *generator*
  with vectorised intra-minute spreading (``np.linspace`` over each
  minute, the standard way to replay minute-binned FaaS traces
  deterministically), so a multi-hour window with millions of requests
  streams through :class:`~repro.workloads.arrivals.ReplayArrivals`
  one minute's worth of stamps at a time.
* :func:`synthesize_2019_dataset` / :func:`write_2019_dataset` produce a
  deterministic synthetic dataset *in the real format* (Zipf volume
  skew, diurnal minute envelope, duration/memory tables), so CI and the
  bundled ``azure-replay-2019`` scenario never download anything.

Fetching the real dataset is documented in ``docs/workloads.md``; point
:class:`Azure2019Source.dataset_dir` at the unpacked directory and the
same code path replays it.
"""

from __future__ import annotations

import csv
import hashlib
import pathlib
import re
from dataclasses import dataclass, field

import numpy as np

#: Minute bins per day-file; day ``d`` covers absolute minutes
#: ``[(d-1)*MINUTES_PER_DAY, d*MINUTES_PER_DAY)``.
MINUTES_PER_DAY = 1440
BIN_SECONDS = 60.0

INVOCATIONS_PATTERN = "invocations_per_function_md.anon.d{day:02d}.csv"
DURATIONS_PATTERN = "function_durations_percentiles.anon.d{day:02d}.csv"
MEMORY_PATTERN = "app_memory_percentiles.anon.d{day:02d}.csv"
_DAY_RE = re.compile(r"\.d(\d\d)\.csv$")

INVOCATION_HEADER = ["HashOwner", "HashApp", "HashFunction", "Trigger"]


# ----------------------------------------------------------------------
# Source description (lives on ScenarioSpec, JSON round-trippable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Azure2019Source:
    """Where and how to read a 2019-format trace window.

    ``dataset_dir`` — directory holding the day-files; empty string means
    the bundled deterministic synthetic fixture (no download, identical
    bytes everywhere).  ``[start_minute, end_minute)`` is the absolute
    minute window across day-files; ``top_k`` caps the fleet at the K
    highest-volume functions inside the window; ``zoo_seed`` seeds the
    volume-tiered function-to-model assignment.
    """

    dataset_dir: str = ""
    start_minute: int = 0
    end_minute: int = 60
    top_k: int = 50
    zoo_seed: int = 0

    def __post_init__(self) -> None:
        if self.start_minute < 0:
            raise ValueError(
                f"start_minute cannot be negative: {self.start_minute}"
            )
        if self.end_minute <= self.start_minute:
            raise ValueError(
                f"window must be non-empty: "
                f"[{self.start_minute}, {self.end_minute})"
            )
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1: {self.top_k}")

    @property
    def window_minutes(self) -> int:
        return self.end_minute - self.start_minute

    @property
    def window_seconds(self) -> float:
        return self.window_minutes * BIN_SECONDS

    @property
    def days(self) -> range:
        """1-based day-file indices the window overlaps."""
        first = self.start_minute // MINUTES_PER_DAY + 1
        last = (self.end_minute - 1) // MINUTES_PER_DAY + 1
        return range(first, last + 1)


# ----------------------------------------------------------------------
# Streamed parsing
# ----------------------------------------------------------------------
@dataclass
class ParseStats:
    """What the streaming parser saw (surfaced for tests and reports)."""

    rows: int = 0
    malformed: int = 0
    duplicates: int = 0
    missing_files: int = 0


@dataclass(frozen=True)
class FunctionWindow:
    """One selected function's slice of the trace window."""

    key: str  # "HashOwner/HashApp/HashFunction"
    owner: str
    app: str
    function: str
    trigger: str
    counts: np.ndarray  # per-minute invocation counts inside the window
    avg_duration_ms: float | None = None
    avg_memory_mb: float | None = None

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def mean_rate(self) -> float:
        """Mean req/s over the window at real-time playback."""
        return self.total / (self.counts.shape[0] * BIN_SECONDS)

    @property
    def peak_minute(self) -> int:
        """Largest single-minute count (the mint buffer bound)."""
        return int(self.counts.max()) if self.counts.size else 0


@dataclass(frozen=True)
class Azure2019Window:
    """A loaded window: functions ranked by invocation volume (desc)."""

    source: Azure2019Source
    functions: tuple[FunctionWindow, ...]
    stats: ParseStats = field(default_factory=ParseStats, compare=False)

    def function(self, key: str) -> FunctionWindow:
        for fn in self.functions:
            if fn.key == key:
                return fn
        raise KeyError(
            f"function {key!r} not in the loaded window "
            f"({len(self.functions)} functions)"
        )

    @property
    def total(self) -> int:
        return sum(f.total for f in self.functions)


def _parse_count_row(
    row: list[str], lo: int, hi: int
) -> tuple[str, str, str, str, np.ndarray] | None:
    """One invocation row -> (identity, counts over columns [lo, hi)).

    Returns ``None`` for malformed rows: fewer than four identity
    columns, or non-integer count cells inside the requested span.
    Rows *shorter* than the nominal 1440 minutes are not malformed —
    the missing minutes simply read as zero invocations.
    """
    if len(row) < len(INVOCATION_HEADER) + 1:
        return None
    owner, app, function, trigger = (c.strip() for c in row[:4])
    if not (owner and app and function):
        return None
    cells = row[4 + lo : 4 + hi]
    counts = np.zeros(hi - lo, dtype=np.int64)
    try:
        for i, cell in enumerate(cells):
            if cell:
                value = int(float(cell))
                if value < 0:
                    return None
                counts[i] = value
    except (TypeError, ValueError):
        return None
    return owner, app, function, trigger, counts


def _day_span(source: Azure2019Source, day: int) -> tuple[int, int, int]:
    """The window's overlap with day ``day``: (lo_min, hi_min, offset).

    ``lo``/``hi`` are minute columns inside the day-file; ``offset`` is
    where that overlap starts inside the window's count arrays.
    """
    day_start = (day - 1) * MINUTES_PER_DAY
    lo = max(source.start_minute - day_start, 0)
    hi = min(source.end_minute - day_start, MINUTES_PER_DAY)
    return lo, hi, day_start + lo - source.start_minute


def _iter_invocation_rows(path: pathlib.Path):
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or [
            c.strip() for c in header[:4]
        ] != INVOCATION_HEADER:
            raise ValueError(
                f"{path} is not a 2019 invocation file "
                f"(header starts {header[:4] if header else header!r})"
            )
        yield from reader


def _load_table(
    path: pathlib.Path, key_cols: int, value_col: str
) -> dict[str, float]:
    """Stream one percentile table into ``identity -> value``.

    ``key_cols`` is 3 for the per-function duration table
    (owner/app/function) and 2 for the per-app memory table (owner/app).
    Missing files and malformed rows degrade to an empty/partial map —
    the tables refine the zoo mapping, they never gate ingestion.
    """
    if not path.exists():
        return {}
    out: dict[str, float] = {}
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            try:
                key = "/".join(
                    row[c].strip()
                    for c in ("HashOwner", "HashApp", "HashFunction")[:key_cols]
                )
                out[key] = float(row[value_col])
            except (KeyError, TypeError, ValueError, AttributeError):
                continue
    return out


def load_window(source: Azure2019Source) -> Azure2019Window:
    """Stream the dataset and return the window's top-K functions.

    Two streaming passes over the overlapping day-files:

    1. **Rank** — accumulate one integer total per function (duplicate
       hashes merge here), then select the ``top_k`` highest-volume
       functions (total desc, identity asc for a stable tie-break).
       Functions with zero invocations inside the window never rank.
    2. **Fill** — re-stream the same files keeping per-minute counts for
       the selected functions only.

    An empty ``dataset_dir`` loads the deterministic synthetic fixture
    through the identical selection path.
    """
    if not source.dataset_dir:
        return _fixture_window(source)
    root = pathlib.Path(source.dataset_dir)
    stats = ParseStats()

    totals: dict[str, int] = {}
    identity: dict[str, tuple[str, str, str, str]] = {}
    day_files = []
    for day in source.days:
        path = root / INVOCATIONS_PATTERN.format(day=day)
        if not path.exists():
            stats.missing_files += 1
            continue
        day_files.append((day, path))

    for day, path in day_files:
        lo, hi, _ = _day_span(source, day)
        seen_in_file: set[str] = set()
        for row in _iter_invocation_rows(path):
            if not row:
                continue
            stats.rows += 1
            parsed = _parse_count_row(row, lo, hi)
            if parsed is None:
                stats.malformed += 1
                continue
            owner, app, function, trigger, counts = parsed
            key = f"{owner}/{app}/{function}"
            if key in seen_in_file:
                # The same hash twice in one day-file: merge, count it.
                # (The same function across *different* day-files is just
                # the trace continuing — not a duplicate.)
                stats.duplicates += 1
            seen_in_file.add(key)
            if key in totals:
                totals[key] += int(counts.sum())
            else:
                totals[key] = int(counts.sum())
                identity[key] = (owner, app, function, trigger)

    selected = sorted(
        (k for k, total in totals.items() if total > 0),
        key=lambda k: (-totals[k], k),
    )[: source.top_k]
    chosen = set(selected)

    window_counts = {
        k: np.zeros(source.window_minutes, dtype=np.int64) for k in chosen
    }
    for day, path in day_files:
        lo, hi, offset = _day_span(source, day)
        for row in _iter_invocation_rows(path):
            if len(row) < 4:
                continue
            key = "/".join(c.strip() for c in row[:3])
            if key not in chosen:
                continue
            parsed = _parse_count_row(row, lo, hi)
            if parsed is None:
                continue
            window_counts[key][offset : offset + (hi - lo)] += parsed[4]

    durations: dict[str, float] = {}
    memory: dict[str, float] = {}
    for day in source.days:
        # First table that knows a function wins: stable under any
        # day-to-day drift in the published statistics.
        for key, value in _load_table(
            root / DURATIONS_PATTERN.format(day=day), 3, "Average"
        ).items():
            durations.setdefault(key, value)
        for key, value in _load_table(
            root / MEMORY_PATTERN.format(day=day), 2, "AverageAllocatedMb"
        ).items():
            memory.setdefault(key, value)

    functions = tuple(
        FunctionWindow(
            key=key,
            owner=identity[key][0],
            app=identity[key][1],
            function=identity[key][2],
            trigger=identity[key][3],
            counts=window_counts[key],
            avg_duration_ms=durations.get(key),
            avg_memory_mb=memory.get(f"{identity[key][0]}/{identity[key][1]}"),
        )
        for key in selected
    )
    return Azure2019Window(source=source, functions=functions, stats=stats)


# One small memo per process: scenario drivers compile one segment per
# tenant, and every tenant of a fleet shares the same source block.
_WINDOW_MEMO: dict[Azure2019Source, Azure2019Window] = {}


def load_window_cached(source: Azure2019Source) -> Azure2019Window:
    window = _WINDOW_MEMO.get(source)
    if window is None:
        if len(_WINDOW_MEMO) >= 4:
            _WINDOW_MEMO.clear()
        window = _WINDOW_MEMO[source] = load_window(source)
    return window


def dataset_fingerprint(source: Azure2019Source) -> str:
    """Cheap content identity of the dataset behind a source block.

    The result-cache key must change when the files behind
    ``dataset_dir`` change; hashing (name, size) of the window's
    day-files is enough to catch replaced or truncated downloads without
    reading gigabytes.  The bundled fixture is version-pinned code, so
    it contributes a constant.
    """
    if not source.dataset_dir:
        return f"fixture-v{_FIXTURE_VERSION}"
    root = pathlib.Path(source.dataset_dir)
    digest = hashlib.sha256()
    for pattern in (INVOCATIONS_PATTERN, DURATIONS_PATTERN, MEMORY_PATTERN):
        for day in source.days:
            path = root / pattern.format(day=day)
            size = path.stat().st_size if path.exists() else -1
            digest.update(f"{path.name}:{size};".encode())
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Vectorised streaming mint
# ----------------------------------------------------------------------
@dataclass
class MintStats:
    """Streaming witness: how much the mint ever buffered at once.

    ``peak_buffered`` is the largest single vectorised batch (= the
    busiest minute's count) — the property test's bound on resident
    requests; ``total`` counts everything minted.
    """

    total: int = 0
    peak_buffered: int = 0
    minutes: int = 0


def iter_minted_stamps(
    counts: np.ndarray,
    *,
    bin_seconds: float = BIN_SECONDS,
    scale: float = 1.0,
    stats: MintStats | None = None,
):
    """Mint sorted arrival stamps from per-minute counts, lazily.

    Each minute with ``c`` invocations yields ``c`` stamps spread
    uniformly across the minute (``linspace`` with ``endpoint=False`` —
    deterministic, no RNG, so replay is identical under any shard
    decomposition), scaled by ``scale`` for time-compressed playback.
    Only one minute's stamps exist at a time, which is what lets
    :class:`~repro.workloads.arrivals.ReplayArrivals` replay a
    million-request window without materialising it.
    """
    counts = np.asarray(counts)
    for minute, c in enumerate(counts):
        c = int(c)
        if c <= 0:
            continue
        offsets = np.linspace(0.0, bin_seconds, num=c, endpoint=False)
        stamps = (minute * bin_seconds + offsets) * scale
        if stats is not None:
            stats.total += c
            stats.minutes += 1
            stats.peak_buffered = max(stats.peak_buffered, c)
        yield from stamps.tolist()


# ----------------------------------------------------------------------
# Volume-tiered zoo mapping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ZooAssignment:
    """One function bound to a synthetic fleet model."""

    key: str  # the FunctionWindow key
    model: str  # FLEET-<rank>-<size>g
    rank: int
    total: int
    output_median: int


def map_functions_to_zoo(
    window: Azure2019Window, zoo_seed: int | None = None
) -> tuple[ZooAssignment, ...]:
    """Assign ranked functions onto the ``FLEET-*`` model namespace.

    Volume-tiered: the top quartile (heavy, always-warm traffic) gets
    small 4-5 GB models, the middle half 6-7 GB, the long tail (rare
    invocations, cold by construction) 9-12 GB — the serverless-LLM
    shape where popular endpoints run distilled models and the tail
    carries the big checkpoints.  A generator seeded by ``zoo_seed``
    picks the size within each tier, and the dataset's per-app memory
    average (when present) biases that pick, so the assignment is a
    deterministic function of (window ranking, seed) only.  Duration
    averages set each tenant's decode length: sub-second functions mint
    short completions, minutes-long functions mint long ones.
    """
    seed = window.source.zoo_seed if zoo_seed is None else zoo_seed
    rng = np.random.default_rng(seed)
    n = max(len(window.functions), 1)
    assignments = []
    for rank, fn in enumerate(window.functions):
        tier = rank / n
        if tier < 0.25:
            sizes = (4.0, 5.0)
        elif tier < 0.75:
            sizes = (6.0, 7.0)
        else:
            sizes = (9.0, 12.0)
        pick = int(rng.integers(len(sizes)))
        if fn.avg_memory_mb is not None:
            # Clearly hungry / clearly frugal apps override the seeded
            # pick; the broad middle keeps it, so ``zoo_seed`` matters.
            if fn.avg_memory_mb >= 300.0:
                pick = len(sizes) - 1
            elif 0 < fn.avg_memory_mb < 60.0:
                pick = 0
        size = sizes[pick]
        duration_ms = fn.avg_duration_ms or 0.0
        output_median = 4 if duration_ms < 1000.0 else (16 if duration_ms < 60_000.0 else 32)
        assignments.append(
            ZooAssignment(
                key=fn.key,
                model=f"FLEET-{rank}-{size:g}g",
                rank=rank,
                total=fn.total,
                output_median=output_median,
            )
        )
    return tuple(assignments)


# ----------------------------------------------------------------------
# Deterministic synthetic fixture (real format, no download)
# ----------------------------------------------------------------------
_FIXTURE_VERSION = 1
_FIXTURE_SEED = 2019
_FIXTURE_FUNCTIONS = 260
_FIXTURE_APPS = 64
_FIXTURE_OWNERS = 40
_TRIGGERS = ("http", "queue", "timer", "event", "storage", "orchestration")


@dataclass(frozen=True)
class SynthDataset:
    """An in-memory 2019-format dataset (one or more synthetic days)."""

    owners: tuple[str, ...]
    apps: tuple[str, ...]
    functions: tuple[str, ...]
    triggers: tuple[str, ...]
    counts: np.ndarray  # (n_functions, days * MINUTES_PER_DAY)
    durations_ms: np.ndarray  # (n_functions,)
    memory_mb: np.ndarray  # (n_functions,) per-app average, repeated

    @property
    def days(self) -> int:
        return self.counts.shape[1] // MINUTES_PER_DAY


def synthesize_2019_dataset(
    *,
    seed: int = _FIXTURE_SEED,
    n_functions: int = _FIXTURE_FUNCTIONS,
    days: int = 1,
) -> SynthDataset:
    """Generate a dataset with the published 2019 structure.

    Volume follows a Zipf-like rank law (a few heavy hitters, a long
    tail), minutes follow a diurnal envelope with a mid-day peak, and
    every function keeps enough tail volume that a one-hour-plus window
    anywhere in the day still sees the whole fleet — what the bundled
    ``azure-replay-2019`` scenario needs to field 200+ tenants without a
    download.  Deterministic for a given ``seed``.
    """
    if n_functions < 1 or days < 1:
        raise ValueError("n_functions and days must be >= 1")
    rng = np.random.default_rng(seed)
    minutes = days * MINUTES_PER_DAY
    t = (np.arange(minutes) % MINUTES_PER_DAY) / MINUTES_PER_DAY
    # Diurnal envelope: quiet nights, mid-day peak, never fully silent.
    envelope = 0.35 + 0.65 * np.clip(np.sin(np.pi * t) ** 2, 0.0, None)
    envelope /= envelope.sum()

    ranks = np.arange(1, n_functions + 1, dtype=np.float64)
    day_totals = np.maximum(2350.0 / ranks**0.7, 48.0) * days

    counts = np.zeros((n_functions, minutes), dtype=np.int64)
    for i in range(n_functions):
        counts[i] = rng.multinomial(int(round(day_totals[i])), envelope)

    owners = tuple(
        f"O{hashlib.sha1(f'{seed}-owner-{i}'.encode()).hexdigest()[:16]}"
        for i in range(_FIXTURE_OWNERS)
    )
    apps = tuple(
        f"A{hashlib.sha1(f'{seed}-app-{i}'.encode()).hexdigest()[:16]}"
        for i in range(_FIXTURE_APPS)
    )
    functions = tuple(
        f"F{hashlib.sha1(f'{seed}-fn-{i}'.encode()).hexdigest()[:16]}"
        for i in range(n_functions)
    )
    triggers = tuple(
        _TRIGGERS[int(rng.integers(len(_TRIGGERS)))] for _ in range(n_functions)
    )
    durations = rng.lognormal(mean=6.0, sigma=1.8, size=n_functions)  # ms
    app_memory = rng.lognormal(mean=5.0, sigma=0.7, size=_FIXTURE_APPS)  # MB
    memory = np.array(
        [app_memory[i % _FIXTURE_APPS] for i in range(n_functions)]
    )
    return SynthDataset(
        owners=owners,
        apps=apps,
        functions=functions,
        triggers=triggers,
        counts=counts,
        durations_ms=durations,
        memory_mb=memory,
    )


def _fixture_identity(ds: SynthDataset, i: int) -> tuple[str, str, str, str]:
    app = ds.apps[i % len(ds.apps)]
    owner = ds.owners[i % len(ds.owners)]
    return owner, app, ds.functions[i], ds.triggers[i]


_FIXTURE_MEMO: dict[tuple[int, int, int], SynthDataset] = {}


def _fixture_dataset() -> SynthDataset:
    key = (_FIXTURE_SEED, _FIXTURE_FUNCTIONS, 1)
    ds = _FIXTURE_MEMO.get(key)
    if ds is None:
        ds = _FIXTURE_MEMO[key] = synthesize_2019_dataset()
    return ds


def _fixture_window(source: Azure2019Source) -> Azure2019Window:
    """The bundled fixture through the same selection rules as files."""
    ds = _fixture_dataset()
    minutes = ds.counts.shape[1]
    lo = min(source.start_minute, minutes)
    hi = min(source.end_minute, minutes)
    span = source.window_minutes
    stats = ParseStats(rows=len(ds.functions))
    totals = {}
    for i in range(len(ds.functions)):
        owner, app, function, _ = _fixture_identity(ds, i)
        window = np.zeros(span, dtype=np.int64)
        if hi > lo:
            window[: hi - lo] = ds.counts[i, lo:hi]
        totals[f"{owner}/{app}/{function}"] = (i, window)
    selected = sorted(
        (k for k, (_, w) in totals.items() if w.sum() > 0),
        key=lambda k: (-int(totals[k][1].sum()), k),
    )[: source.top_k]
    functions = []
    for key in selected:
        i, window = totals[key]
        owner, app, function, trigger = _fixture_identity(ds, i)
        functions.append(
            FunctionWindow(
                key=key,
                owner=owner,
                app=app,
                function=function,
                trigger=trigger,
                counts=window,
                avg_duration_ms=float(ds.durations_ms[i]),
                avg_memory_mb=float(ds.memory_mb[i]),
            )
        )
    return Azure2019Window(
        source=source, functions=tuple(functions), stats=stats
    )


def write_2019_dataset(
    directory: str | pathlib.Path,
    dataset: SynthDataset | None = None,
    *,
    seed: int = _FIXTURE_SEED,
    n_functions: int = _FIXTURE_FUNCTIONS,
    days: int = 1,
) -> list[pathlib.Path]:
    """Write a synthetic dataset as real-format day-files.

    Emits ``invocations_per_function_md.anon.dNN.csv`` plus the duration
    and memory percentile tables for every synthesised day, so the
    file-parsing path (and any external 2019 tooling) reads it
    unchanged.  Returns the written paths.
    """
    ds = dataset or synthesize_2019_dataset(
        seed=seed, n_functions=n_functions, days=days
    )
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for day in range(1, ds.days + 1):
        lo = (day - 1) * MINUTES_PER_DAY
        hi = day * MINUTES_PER_DAY
        inv = root / INVOCATIONS_PATTERN.format(day=day)
        with inv.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                INVOCATION_HEADER + [str(m + 1) for m in range(MINUTES_PER_DAY)]
            )
            for i in range(len(ds.functions)):
                owner, app, function, trigger = _fixture_identity(ds, i)
                writer.writerow(
                    [owner, app, function, trigger]
                    + ds.counts[i, lo:hi].tolist()
                )
        written.append(inv)

        dur = root / DURATIONS_PATTERN.format(day=day)
        with dur.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                [
                    "HashOwner", "HashApp", "HashFunction",
                    "Average", "Count", "Minimum", "Maximum",
                    "percentile_Average_0", "percentile_Average_1",
                    "percentile_Average_25", "percentile_Average_50",
                    "percentile_Average_75", "percentile_Average_99",
                    "percentile_Average_100",
                ]
            )
            for i in range(len(ds.functions)):
                owner, app, function, _ = _fixture_identity(ds, i)
                avg = float(ds.durations_ms[i])
                writer.writerow(
                    [owner, app, function]
                    + [
                        f"{avg:.2f}",
                        int(ds.counts[i, lo:hi].sum()),
                        f"{avg * 0.2:.2f}", f"{avg * 5.0:.2f}",
                        f"{avg * 0.2:.2f}", f"{avg * 0.3:.2f}",
                        f"{avg * 0.7:.2f}", f"{avg:.2f}",
                        f"{avg * 1.4:.2f}", f"{avg * 4.0:.2f}",
                        f"{avg * 5.0:.2f}",
                    ]
                )
        written.append(dur)

        mem = root / MEMORY_PATTERN.format(day=day)
        seen_apps: dict[tuple[str, str], float] = {}
        for i in range(len(ds.functions)):
            owner, app, _, _ = _fixture_identity(ds, i)
            seen_apps.setdefault((owner, app), float(ds.memory_mb[i]))
        with mem.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["HashOwner", "HashApp", "SampleCount", "AverageAllocatedMb"]
                + [
                    f"AverageAllocatedMb_pct{p}"
                    for p in (1, 5, 25, 50, 75, 95, 99, 100)
                ]
            )
            for (owner, app), mb in seen_apps.items():
                writer.writerow(
                    [owner, app, MINUTES_PER_DAY, f"{mb:.2f}"]
                    + [
                        f"{mb * f:.2f}"
                        for f in (0.5, 0.6, 0.8, 1.0, 1.2, 1.5, 1.8, 2.2)
                    ]
                )
        written.append(mem)
    return written
