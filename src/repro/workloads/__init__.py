"""Workload generation: arrivals with controlled CV, traces, prompts, SLOs.

Every evaluation figure in the paper is parameterised by the coefficient of
variation (CV) of request inter-arrival times.  ``GammaArrivals`` provides
exact CV control; ``DiurnalTrace`` reproduces the Fig. 1 phenomenon (CV
measured over different window sizes differs by ~7x on production traces).
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    GammaArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workloads.requests import Request, RequestSampler
from repro.workloads.cv import (
    count_cv,
    interarrival_cv,
    SlidingWindowCV,
)
from repro.workloads.traces import DiurnalTrace
from repro.workloads.slo import SLO
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.azure import (
    FunctionTrace,
    TraceBundle,
    TraceReplayArrivals,
    synthesize_azure_like,
)
from repro.workloads.azure2019 import (
    Azure2019Source,
    Azure2019Window,
    FunctionWindow,
    dataset_fingerprint,
    iter_minted_stamps,
    load_window,
    load_window_cached,
    map_functions_to_zoo,
    synthesize_2019_dataset,
    write_2019_dataset,
)
from repro.workloads.splitwise import (
    CODING,
    CONVERSATION,
    MixedCorpusSampler,
    SplitwiseScenario,
    get_scenario,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "GammaArrivals",
    "MMPPArrivals",
    "Request",
    "RequestSampler",
    "interarrival_cv",
    "count_cv",
    "SlidingWindowCV",
    "DiurnalTrace",
    "SLO",
    "WorkloadGenerator",
    "FunctionTrace",
    "TraceBundle",
    "TraceReplayArrivals",
    "synthesize_azure_like",
    "Azure2019Source",
    "Azure2019Window",
    "FunctionWindow",
    "dataset_fingerprint",
    "iter_minted_stamps",
    "load_window",
    "load_window_cached",
    "map_functions_to_zoo",
    "synthesize_2019_dataset",
    "write_2019_dataset",
    "SplitwiseScenario",
    "CONVERSATION",
    "CODING",
    "MixedCorpusSampler",
    "get_scenario",
]
