"""Arrival processes with controllable burstiness.

``GammaArrivals`` is the workhorse: a Gamma renewal process with shape
``1/CV^2`` has inter-arrival CV exactly equal to the requested value, so the
x-axes of Figs. 3, 4, 8, 10-12 map directly onto its parameter.
``MMPPArrivals`` (Markov-modulated Poisson) provides the regime-switching
bursts used for the CV=8 timeline of Fig. 9.
"""

from __future__ import annotations

import abc
import math

import numpy as np


class ArrivalProcess(abc.ABC):
    """Generates successive inter-arrival times (seconds)."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.rng = rng

    @abc.abstractmethod
    def next_interarrival(self) -> float:
        """Draw the next inter-arrival gap."""

    @property
    @abc.abstractmethod
    def cv(self) -> float:
        """Theoretical coefficient of variation of inter-arrival times."""

    def timestamps(self, duration: float, start: float = 0.0) -> list[float]:
        """Materialise all arrival timestamps within ``[start, start+duration)``."""
        out = []
        t = start
        while True:
            t += self.next_interarrival()
            if t >= start + duration:
                break
            out.append(t)
        return out


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals (CV = 1)."""

    def next_interarrival(self) -> float:
        return float(self.rng.exponential(1.0 / self.rate))

    @property
    def cv(self) -> float:
        return 1.0


class GammaArrivals(ArrivalProcess):
    """Gamma-renewal arrivals with exact inter-arrival CV control."""

    def __init__(self, rate: float, cv: float, rng: np.random.Generator):
        super().__init__(rate, rng)
        if cv <= 0:
            raise ValueError(f"cv must be positive, got {cv}")
        self._cv = cv
        self.shape = 1.0 / (cv * cv)
        self.scale = 1.0 / (rate * self.shape)

    def next_interarrival(self) -> float:
        return float(self.rng.gamma(self.shape, self.scale))

    @property
    def cv(self) -> float:
        return self._cv


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    Alternates between a calm state and a burst state; inter-arrival CV is
    computed from the standard MMPP(2) formula.  Used to create the sustained
    burst episodes of Fig. 9 that a renewal process cannot produce.
    """

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        *,
        burst_factor: float = 8.0,
        burst_fraction: float = 0.12,
        mean_cycle: float = 30.0,
    ):
        super().__init__(rate, rng)
        if burst_factor <= 1:
            raise ValueError("burst_factor must exceed 1")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0,1)")
        # Solve state rates so the long-run average equals ``rate``.
        self.calm_rate = rate / (1 - burst_fraction + burst_fraction * burst_factor)
        self.burst_rate = self.calm_rate * burst_factor
        self.burst_fraction = burst_fraction
        self.mean_burst = mean_cycle * burst_fraction
        self.mean_calm = mean_cycle * (1 - burst_fraction)
        self._in_burst = False
        self._state_ends_in = self._draw_state_duration()

    def _draw_state_duration(self) -> float:
        mean = self.mean_burst if self._in_burst else self.mean_calm
        return float(self.rng.exponential(mean))

    def next_interarrival(self) -> float:
        gap = 0.0
        while True:
            state_rate = self.burst_rate if self._in_burst else self.calm_rate
            candidate = float(self.rng.exponential(1.0 / state_rate))
            if candidate <= self._state_ends_in:
                self._state_ends_in -= candidate
                return gap + candidate
            # State flips before the next arrival: consume remaining time.
            gap += self._state_ends_in
            self._in_burst = not self._in_burst
            self._state_ends_in = self._draw_state_duration()

    @classmethod
    def with_cv(
        cls,
        rate: float,
        cv: float,
        rng: np.random.Generator,
        *,
        mean_cycle: float = 60.0,
    ) -> "MMPPArrivals":
        """Construct an MMPP whose inter-arrival CV matches ``cv``.

        Sustained bursts (unlike a renewal process's micro-clumping) are
        what overwhelm statically provisioned capacity; this solver picks a
        burst fraction appropriate for the target CV and binary-searches
        the burst intensity.
        """
        if cv <= 1.0:
            raise ValueError("MMPP burst model needs cv > 1; use Poisson/Gamma")
        fraction = float(min(0.3, max(1.2 / (cv * cv), 0.04)))
        lo, hi = 1.01, 2000.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            probe = cls(
                rate,
                rng,
                burst_factor=mid,
                burst_fraction=fraction,
                mean_cycle=mean_cycle,
            )
            if probe.cv < cv:
                lo = mid
            else:
                hi = mid
        return cls(
            rate,
            rng,
            burst_factor=(lo + hi) / 2.0,
            burst_fraction=fraction,
            mean_cycle=mean_cycle,
        )

    @property
    def cv(self) -> float:
        """Approximate inter-arrival CV (exact for slow modulation)."""
        p = self.burst_fraction
        r1, r2 = self.calm_rate, self.burst_rate
        mean_rate = (1 - p) * r1 + p * r2
        # Variance of the conditional rate inflates the CV beyond Poisson.
        var_rate = (1 - p) * (r1 - mean_rate) ** 2 + p * (r2 - mean_rate) ** 2
        return math.sqrt(1.0 + 2.0 * var_rate / (mean_rate**2))


def make_arrivals(
    rate: float, cv: float, rng: np.random.Generator
) -> ArrivalProcess:
    """Factory: Poisson for CV=1, Gamma otherwise."""
    if abs(cv - 1.0) < 1e-9:
        return PoissonArrivals(rate, rng)
    return GammaArrivals(rate, cv, rng)
