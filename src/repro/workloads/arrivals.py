"""Arrival processes with controllable burstiness.

``GammaArrivals`` is the workhorse: a Gamma renewal process with shape
``1/CV^2`` has inter-arrival CV exactly equal to the requested value, so the
x-axes of Figs. 3, 4, 8, 10-12 map directly onto its parameter.
``MMPPArrivals`` (Markov-modulated Poisson) provides the regime-switching
bursts used for the CV=8 timeline of Fig. 9.
"""

from __future__ import annotations

import abc
import math

import numpy as np


class ArrivalProcess(abc.ABC):
    """Generates successive inter-arrival times (seconds)."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.rng = rng

    @abc.abstractmethod
    def next_interarrival(self) -> float:
        """Draw the next inter-arrival gap."""

    @property
    @abc.abstractmethod
    def cv(self) -> float:
        """Theoretical coefficient of variation of inter-arrival times."""

    def timestamps(self, duration: float, start: float = 0.0) -> list[float]:
        """Materialise all arrival timestamps within ``[start, start+duration)``."""
        out = []
        t = start
        while True:
            t += self.next_interarrival()
            if t >= start + duration:
                break
            out.append(t)
        return out


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals (CV = 1)."""

    def next_interarrival(self) -> float:
        return float(self.rng.exponential(1.0 / self.rate))

    @property
    def cv(self) -> float:
        return 1.0


class GammaArrivals(ArrivalProcess):
    """Gamma-renewal arrivals with exact inter-arrival CV control."""

    def __init__(self, rate: float, cv: float, rng: np.random.Generator):
        super().__init__(rate, rng)
        if cv <= 0:
            raise ValueError(f"cv must be positive, got {cv}")
        self._cv = cv
        self.shape = 1.0 / (cv * cv)
        self.scale = 1.0 / (rate * self.shape)

    def next_interarrival(self) -> float:
        return float(self.rng.gamma(self.shape, self.scale))

    @property
    def cv(self) -> float:
        return self._cv


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    Alternates between a calm state and a burst state; inter-arrival CV is
    computed from the standard MMPP(2) formula.  Used to create the sustained
    burst episodes of Fig. 9 that a renewal process cannot produce.
    """

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        *,
        burst_factor: float = 8.0,
        burst_fraction: float = 0.12,
        mean_cycle: float = 30.0,
    ):
        super().__init__(rate, rng)
        if burst_factor <= 1:
            raise ValueError("burst_factor must exceed 1")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0,1)")
        # Solve state rates so the long-run average equals ``rate``.
        self.calm_rate = rate / (1 - burst_fraction + burst_fraction * burst_factor)
        self.burst_rate = self.calm_rate * burst_factor
        self.burst_fraction = burst_fraction
        self.mean_burst = mean_cycle * burst_fraction
        self.mean_calm = mean_cycle * (1 - burst_fraction)
        self._in_burst = False
        self._state_ends_in = self._draw_state_duration()

    def _draw_state_duration(self) -> float:
        mean = self.mean_burst if self._in_burst else self.mean_calm
        return float(self.rng.exponential(mean))

    def next_interarrival(self) -> float:
        gap = 0.0
        while True:
            state_rate = self.burst_rate if self._in_burst else self.calm_rate
            candidate = float(self.rng.exponential(1.0 / state_rate))
            if candidate <= self._state_ends_in:
                self._state_ends_in -= candidate
                return gap + candidate
            # State flips before the next arrival: consume remaining time.
            gap += self._state_ends_in
            self._in_burst = not self._in_burst
            self._state_ends_in = self._draw_state_duration()

    @classmethod
    def with_cv(
        cls,
        rate: float,
        cv: float,
        rng: np.random.Generator,
        *,
        mean_cycle: float = 60.0,
    ) -> "MMPPArrivals":
        """Construct an MMPP whose inter-arrival CV matches ``cv``.

        Sustained bursts (unlike a renewal process's micro-clumping) are
        what overwhelm statically provisioned capacity; this solver picks a
        burst fraction appropriate for the target CV and binary-searches
        the burst intensity.
        """
        if cv <= 1.0:
            raise ValueError("MMPP burst model needs cv > 1; use Poisson/Gamma")
        fraction = float(min(0.3, max(1.2 / (cv * cv), 0.04)))
        lo, hi = 1.01, 2000.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            probe = cls(
                rate,
                rng,
                burst_factor=mid,
                burst_fraction=fraction,
                mean_cycle=mean_cycle,
            )
            if probe.cv < cv:
                lo = mid
            else:
                hi = mid
        return cls(
            rate,
            rng,
            burst_factor=(lo + hi) / 2.0,
            burst_fraction=fraction,
            mean_cycle=mean_cycle,
        )

    @property
    def cv(self) -> float:
        """Approximate inter-arrival CV (exact for slow modulation)."""
        p = self.burst_fraction
        r1, r2 = self.calm_rate, self.burst_rate
        mean_rate = (1 - p) * r1 + p * r2
        # Variance of the conditional rate inflates the CV beyond Poisson.
        var_rate = (1 - p) * (r1 - mean_rate) ** 2 + p * (r2 - mean_rate) ** 2
        return math.sqrt(1.0 + 2.0 * var_rate / (mean_rate**2))


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally rate-modulated Poisson arrivals (diurnal swing).

    The instantaneous rate is ``rate * (1 + amplitude*sin(2*pi*(t+phase)/
    period))``, sampled by Poisson thinning against the peak rate, so long
    measurement windows see the day-scale swing of Fig. 1 while short
    windows stay locally Poisson.  The process keeps its own clock (the
    sum of emitted gaps), which matches simulated time as long as every
    drawn gap is consumed — how :class:`~repro.workloads.generator.
    WorkloadGenerator` uses it.
    """

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        *,
        amplitude: float = 0.6,
        period: float = 86_400.0,
        phase: float = 0.0,
    ):
        super().__init__(rate, rng)
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must be in [0,1), got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.amplitude = amplitude
        self.period = period
        self.phase = phase
        self._t = 0.0
        self._peak = rate * (1.0 + amplitude)

    def rate_at(self, t: float) -> float:
        swing = math.sin(2 * math.pi * (t + self.phase) / self.period)
        return self.rate * max(1.0 + self.amplitude * swing, 1e-6)

    def next_interarrival(self) -> float:
        start = self._t
        while True:
            self._t += float(self.rng.exponential(1.0 / self._peak))
            if self.rng.random() <= self.rate_at(self._t) / self._peak:
                return self._t - start

    @property
    def cv(self) -> float:
        """Inter-arrival CV of a sinusoidally modulated Poisson process
        (slow-modulation limit: 1 + variance inflation of the rate)."""
        mean_rate = self.rate
        var_rate = 0.5 * (self.rate * self.amplitude) ** 2
        return math.sqrt(1.0 + 2.0 * var_rate / (mean_rate**2))


class ReplayArrivals(ArrivalProcess):
    """Replays arrival timestamps (trace replay), materialised or streamed.

    Timestamps are relative to the process start; once the trace is
    exhausted the process returns ``inf`` gaps, which any duration-bounded
    generator interprets as "no further arrivals".

    A *sized* input (list/tuple/array) is sorted and kept — the historical
    behaviour, with the empirical rate and CV known up front.  Any other
    iterable (generator, file reader) is consumed **lazily**, one stamp
    per arrival, so replaying a multi-hour Azure window never holds the
    full timestamp list in memory; the stream must already be
    time-ordered (out-of-order stamps are clamped forward, exactly like
    the sorted path's non-negative-gap clamp), and ``rate``/``cv`` become
    running estimates over the consumed prefix.
    """

    def __init__(self, timestamps, rng: np.random.Generator | None = None):
        rng = rng if rng is not None else np.random.default_rng(0)
        if hasattr(timestamps, "__len__"):
            times = sorted(float(t) for t in timestamps if t >= 0.0)
            mean_gap = (times[-1] / len(times)) if times and times[-1] > 0 else 1.0
            super().__init__(1.0 / mean_gap if mean_gap > 0 else 1.0, rng)
            self.timestamps: list[float] | None = times
            self._stream = None
        else:
            super().__init__(1.0, rng)  # provisional; refined as consumed
            self.timestamps = None
            self._stream = iter(timestamps)
        self._cursor = 0
        self._last = 0.0
        # Running gap statistics for the streaming path (Welford).
        self._gap_count = 0
        self._gap_mean = 0.0
        self._gap_m2 = 0.0

    def _next_stamp(self) -> float | None:
        if self.timestamps is not None:
            if self._cursor >= len(self.timestamps):
                return None
            t = self.timestamps[self._cursor]
            self._cursor += 1
            return t
        for t in self._stream:
            t = float(t)
            if t >= 0.0:
                return t
        return None

    def next_interarrival(self) -> float:
        t = self._next_stamp()
        if t is None:
            return math.inf
        gap = max(t - self._last, 0.0)
        self._last = max(t, self._last)
        self._gap_count += 1
        delta = gap - self._gap_mean
        self._gap_mean += delta / self._gap_count
        self._gap_m2 += delta * (gap - self._gap_mean)
        if self._stream is not None and self._last > 0:
            self.rate = self._gap_count / self._last
        return gap

    @property
    def cv(self) -> float:
        """Empirical CV of the trace's inter-arrival gaps.

        Sized traces report the full-trace CV up front; streamed traces
        report the CV of the gaps consumed so far.
        """
        if self.timestamps is not None:
            if len(self.timestamps) < 3:
                return 0.0
            gaps = np.diff(np.asarray(self.timestamps))
            mean = float(gaps.mean())
            return float(gaps.std() / mean) if mean > 0 else 0.0
        if self._gap_count < 3 or self._gap_mean <= 0:
            return 0.0
        std = math.sqrt(self._gap_m2 / self._gap_count)
        return std / self._gap_mean


def make_arrivals(
    rate: float, cv: float, rng: np.random.Generator
) -> ArrivalProcess:
    """Factory: Poisson for CV=1, Gamma otherwise."""
    if abs(cv - 1.0) < 1e-9:
        return PoissonArrivals(rate, rng)
    return GammaArrivals(rate, cv, rng)
