"""Synthetic production traces reproducing Fig. 1's CV-vs-window mismatch.

The Alibaba/Azure traces show CV values that differ by up to 7x depending
on the measurement window (180 s vs 3 h vs 12 h): short windows see local
burstiness, long windows see diurnal swings.  ``DiurnalTrace`` composes a
diurnal rate envelope with MMPP-style burst episodes to recreate both
effects without the proprietary data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DiurnalTraceConfig:
    base_rate: float = 4.0  # req/s at the diurnal trough-to-peak midpoint
    diurnal_amplitude: float = 0.6  # peak/trough swing (fraction of base)
    day_seconds: float = 86_400.0
    burst_factor: float = 30.0
    burst_rate_per_hour: float = 5.0  # expected burst episodes per hour
    burst_mean_duration: float = 45.0


class DiurnalTrace:
    """Generates arrival timestamps with diurnal + bursty structure."""

    def __init__(self, rng: np.random.Generator, config: DiurnalTraceConfig | None = None):
        self.rng = rng
        self.config = config or DiurnalTraceConfig()

    def rate_at(self, t: float, bursts: list[tuple[float, float]]) -> float:
        cfg = self.config
        diurnal = 1.0 + cfg.diurnal_amplitude * math.sin(2 * math.pi * t / cfg.day_seconds)
        rate = cfg.base_rate * max(diurnal, 0.05)
        for start, end in bursts:
            if start <= t < end:
                rate *= cfg.burst_factor
                break
        return rate

    def _draw_bursts(self, duration: float) -> list[tuple[float, float]]:
        cfg = self.config
        expected = cfg.burst_rate_per_hour * duration / 3600.0
        n = int(self.rng.poisson(max(expected, 0.0)))
        bursts = []
        for _ in range(n):
            start = float(self.rng.uniform(0.0, duration))
            length = float(self.rng.exponential(cfg.burst_mean_duration))
            bursts.append((start, start + length))
        return sorted(bursts)

    def generate(self, duration: float) -> np.ndarray:
        """Arrival timestamps over ``[0, duration)`` via Poisson thinning
        (vectorised: candidate times drawn in bulk, then accept/reject)."""
        cfg = self.config
        bursts = self._draw_bursts(duration)
        max_rate = cfg.base_rate * (1 + cfg.diurnal_amplitude) * cfg.burst_factor
        n_candidates = int(self.rng.poisson(max_rate * duration))
        times = np.sort(self.rng.uniform(0.0, duration, n_candidates))
        rates = cfg.base_rate * np.maximum(
            1.0 + cfg.diurnal_amplitude * np.sin(2 * np.pi * times / cfg.day_seconds),
            0.05,
        )
        in_burst = np.zeros(times.size, dtype=bool)
        for start, end in bursts:
            in_burst |= (times >= start) & (times < end)
        rates = np.where(in_burst, rates * cfg.burst_factor, rates)
        accept = self.rng.uniform(0.0, 1.0, times.size) <= rates / max_rate
        return times[accept]
