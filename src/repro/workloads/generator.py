"""Drives arrivals into a serving system inside the simulator."""

from __future__ import annotations

from typing import Callable

from repro.simulation.engine import Simulator
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.requests import Request, RequestSampler

RETAIN_MODES = ("all", "rejected")


class WorkloadGenerator:
    """Schedules sampled requests into a sink for ``duration`` seconds.

    The sink is any callable accepting a :class:`Request` — normally a
    serving system's ``submit`` method.

    ``retain`` controls which requests stay referenced in ``self.requests``
    after they are handed to the sink:

    * ``"all"`` (default, the historical behaviour) keeps everything for
      post-hoc metric computation;
    * ``"rejected"`` keeps only gate-shed requests — the evidence the
      invariant auditor needs for exactly-once-shed accounting — so a
      million-request trace replay never materialises the admitted
      population (streaming consumers observe arrivals via ``observer``
      instead).

    ``observer`` (optional) is called with each request immediately after
    the sink ran, i.e. once admission has stamped ``request.rejected``.
    """

    def __init__(
        self,
        sim: Simulator,
        arrivals: ArrivalProcess,
        sampler: RequestSampler,
        sink: Callable[[Request], None],
        duration: float,
        *,
        retain: str = "all",
        observer: Callable[[Request], None] | None = None,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if retain not in RETAIN_MODES:
            raise ValueError(
                f"unknown retain mode {retain!r}; choose from {RETAIN_MODES}"
            )
        self.sim = sim
        self.arrivals = arrivals
        self.sampler = sampler
        self.sink = sink
        self.duration = duration
        self.retain = retain
        self.observer = observer
        self.requests: list[Request] = []
        self._offered = 0
        self._start = sim.now
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self.arrivals.next_interarrival()
        arrival = self.sim.now + gap
        if arrival - self._start >= self.duration:
            return
        self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        request = self.sampler.sample(self.sim.now)
        self._offered += 1
        self.sink(request)
        # Admission gates reject synchronously inside the sink, so the
        # ``rejected`` mark is final by the time retention is decided.
        if self.retain == "all" or request.rejected:
            self.requests.append(request)
        if self.observer is not None:
            self.observer(request)
        self._schedule_next()

    @property
    def offered(self) -> int:
        return self._offered
