"""Drives arrivals into a serving system inside the simulator."""

from __future__ import annotations

from typing import Callable

from repro.simulation.engine import Simulator
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.requests import Request, RequestSampler


class WorkloadGenerator:
    """Schedules sampled requests into a sink for ``duration`` seconds.

    The sink is any callable accepting a :class:`Request` — normally a
    serving system's ``submit`` method.  All generated requests are kept in
    ``self.requests`` for post-hoc metric computation.
    """

    def __init__(
        self,
        sim: Simulator,
        arrivals: ArrivalProcess,
        sampler: RequestSampler,
        sink: Callable[[Request], None],
        duration: float,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.sim = sim
        self.arrivals = arrivals
        self.sampler = sampler
        self.sink = sink
        self.duration = duration
        self.requests: list[Request] = []
        self._start = sim.now
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self.arrivals.next_interarrival()
        arrival = self.sim.now + gap
        if arrival - self._start >= self.duration:
            return
        self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        request = self.sampler.sample(self.sim.now)
        self.requests.append(request)
        self.sink(request)
        self._schedule_next()

    @property
    def offered(self) -> int:
        return len(self.requests)
