"""Elastic scaling granularity decision (Eq. 11) and SLO constraint (Eq. 12)."""

from __future__ import annotations

import math


def scaling_granularity(
    cv: float,
    queue_length: int,
    *,
    g_max: int = 32,
    beta: float = 40.0,
    gamma: float = 10.0,
    queue_capacity: int = 512,
) -> int:
    """Eq. 11: sigmoid decision between coarse and fine scaling units.

        m_j = ceil( G_max / (1 + beta * exp(-gamma * cv_j * q̂_j)) )

    Calm, empty systems scale with coarse units (low communication
    overhead); bursty, congested systems scale with the finest units (fast
    parameter loads, large batch capacity).  With the default calibration
    the transition midpoint sits at cv*q̂ ≈ 0.37 (e.g. CV 2 with a ~20%
    full queue).
    """
    if g_max < 1:
        raise ValueError(f"g_max must be >= 1, got {g_max}")
    q_hat = min(max(queue_length, 0) / max(queue_capacity, 1), 1.0)
    m = g_max / (1.0 + beta * math.exp(-gamma * max(cv, 0.0) * q_hat))
    return max(int(math.ceil(m)), 1)


def slo_feasible_stages(
    slo_deadline: float,
    init_time: float,
    unit_throughput: float,
    backlog: int,
) -> int:
    """Eq. 12: minimum number of expanded units meeting the SLO constraint.

        (T_j - S_j) * sum_{k<=m_j} mu_jk >= r_j

    i.e. the units brought up (each with expected throughput ``mu_jk``)
    must clear the ``backlog`` within the remaining deadline budget after
    paying initialization time ``S_j``.  Returns 0 when no expansion is
    needed; a sentinel of 10**6 when the SLO is unmeetable (init alone
    exceeds the deadline) so the caller can cap or escalate.
    """
    if backlog <= 0:
        return 0
    budget = slo_deadline - init_time
    if budget <= 0:
        return 10**6
    if unit_throughput <= 0:
        raise ValueError("unit_throughput must be positive")
    return max(int(math.ceil(backlog / (budget * unit_throughput))), 0)
