"""Adaptive pipeline scaling (§7).

Components: the Eq. 11/12 scaling-granularity decision, the host-memory
warm parameter cache, the Eq. 13 affinity scheduler, the HRG-driven
topology-aware coordinator, and the autoscaler loop that ties them to the
request queue.
"""

from repro.scaling.warm_cache import HostParamCache
from repro.scaling.affinity import AffinityScheduler
from repro.scaling.decision import scaling_granularity, slo_feasible_stages
from repro.scaling.coordinator import ScalingCoordinator
from repro.scaling.autoscaler import Autoscaler, AutoscalerConfig

__all__ = [
    "HostParamCache",
    "AffinityScheduler",
    "scaling_granularity",
    "slo_feasible_stages",
    "ScalingCoordinator",
    "Autoscaler",
    "AutoscalerConfig",
]
