"""Topology-aware scaling coordination via the HRG (§7).

Combines the Eq. 13 affinity score (warm hosts first) with the HRG
contention score (avoid paths already ingesting parameters) into the GPU
scorer handed to the allocator.  This is the piece that "transforms a
resource contention problem into a resource coordination opportunity".
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.gpu import GPU
from repro.cluster.hrg import HierarchicalResourceGraph
from repro.refactoring.placement import multiplexing_penalty
from repro.scaling.affinity import AffinityScheduler


class ScalingCoordinator:
    """Builds placement scorers and records scaling traffic on the HRG."""

    def __init__(
        self,
        hrg: HierarchicalResourceGraph,
        affinity: AffinityScheduler,
        *,
        contention_weight: float = 0.5,
        isolation_weight: float = 2.0,
        use_hrg: bool = True,
        use_affinity: bool = True,
        cv_fn: Callable[[], float] | None = None,
    ):
        self.hrg = hrg
        self.affinity = affinity
        self.contention_weight = contention_weight
        self.isolation_weight = isolation_weight
        self.use_hrg = use_hrg
        self.use_affinity = use_affinity
        self.cv_fn = cv_fn

    def scorer(self, model: str, now: float) -> Callable[[GPU], float]:
        """Higher-is-better GPU placement score for one scaling operation.

        Combines the Eq. 13 affinity score (warm hosts first), the HRG
        contention score (spread ingest paths), and the Eq. 6/9 isolation
        objective (avoid multiplexing with other models under bursty load).
        """
        cv = self.cv_fn() if self.cv_fn is not None else 0.0
        penalty = multiplexing_penalty(cv)

        def score(gpu: GPU) -> float:
            server = gpu.server
            value = 0.0
            if self.use_affinity:
                value += self.affinity.score(model, server, now)
            if self.use_hrg:
                value -= self.contention_weight * self.hrg.contention_score(
                    server, now
                )
            value -= (
                self.isolation_weight * penalty * gpu.colocated_model_count
            )
            return value

        return score

    def record_scaling(self, model: str, gpus: list[GPU], now: float) -> None:
        """Mark parameter-ingest traffic on every touched server."""
        seen = set()
        for gpu in gpus:
            server = gpu.server
            if server.sid in seen:
                continue
            seen.add(server.sid)
            self.hrg.register_scaling_event(server, now)
            self.affinity.record_placement(model, server, now)
