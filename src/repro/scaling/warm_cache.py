"""Tiered host-memory/SSD parameter cache (§7, Memory-Aware Elastic Scaling).

"The system maintains parameter copies in host memory even after GPU
eviction, creating a middle-tier cache that survives instance termination."
Entries are keyed by (model, operator-range); coverage queries intersect a
requested stage's operator range with cached ranges so a merged stage can
warm-load from the pieces its fine-grained predecessors left behind.

Two tiers, two policies:

* **host** — the fast tier (PCIe loads).  Inserts land here; evictions
  *demote* to SSD instead of discarding, so a host-evicted model degrades
  to an SSD-warm start rather than a cold one.
* **ssd** — the demotion tier (local-NVMe loads).  Evictions here discard.

Eviction policy is pluggable per cache instance (``CACHE_POLICIES``):

* ``lru`` — least-recently-used, the historical behaviour;
* ``gdsf`` — Greedy-Dual-Size-Frequency.  Each entry carries a priority
  ``H = clock + freq * cost_density`` where ``cost_density`` is the
  reload cost per byte (callers pass the cold-load time of the range);
  the per-(server, tier) clock inflates to the evicted entry's H, aging
  out entries that stopped being referenced.  GDSF keeps cheap-to-hold,
  expensive-to-reload, frequently-used ranges over large cold ones.

Ranges are trimmed on insert and unioned on query, so overlapping entries
never double-charge host memory nor double-count coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.server import Server
from repro.models.profiler import ModelProfile

CACHE_POLICIES = ("lru", "gdsf")


@dataclass
class CacheEntry:
    model: str
    start: int  # operator range [start, end)
    end: int
    nbytes: float
    last_used: float
    freq: int = 1
    # Reload cost per byte (seconds/byte under GDSF; 1.0 when the caller
    # gave no cost, degrading GDSF to frequency-with-aging).
    cost_density: float = 1.0
    hvalue: float = 0.0


def _merge(segments: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Union of half-open integer ranges, sorted and merged."""
    out: list[tuple[int, int]] = []
    for lo, hi in sorted(segments):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _subtract(
    start: int, end: int, covered: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Sub-ranges of [start, end) not covered by the merged ``covered``."""
    out: list[tuple[int, int]] = []
    cursor = start
    for lo, hi in covered:
        if hi <= cursor or lo >= end:
            continue
        if lo > cursor:
            out.append((cursor, min(lo, end)))
        cursor = max(cursor, hi)
        if cursor >= end:
            break
    if cursor < end:
        out.append((cursor, end))
    return out


class HostParamCache:
    """Two-tier (host/SSD) parameter cache over every server, with
    pluggable eviction (``lru`` or ``gdsf``)."""

    def __init__(self, policy: str = "lru") -> None:
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; options: {CACHE_POLICIES}"
            )
        self.policy = policy
        self._host: dict[str, list[CacheEntry]] = {}
        self._ssd: dict[str, list[CacheEntry]] = {}
        # GDSF aging clock, per (server, tier).
        self._clock: dict[tuple[str, str], float] = {}
        self.hits = 0.0  # bytes served warm
        self.misses = 0.0  # bytes that had to come from storage
        # Observability: a FlightRecorder installed by a traced run (the
        # cache holds no simulator handle, so the tap lives here).
        self.recorder = None

    # ------------------------------------------------------------------
    def _priority(self, entry: CacheEntry, sid: str, tier: str) -> float:
        return self._clock.get((sid, tier), 0.0) + entry.freq * entry.cost_density

    def _touch(self, entry: CacheEntry, sid: str, tier: str, now: float) -> None:
        entry.freq += 1
        entry.last_used = now
        entry.hvalue = self._priority(entry, sid, tier)

    def _pick_victim(self, entries: list[CacheEntry], sid: str, tier: str):
        if self.policy == "gdsf":
            victim = min(entries, key=lambda e: e.hvalue)
            key = (sid, tier)
            self._clock[key] = max(self._clock.get(key, 0.0), victim.hvalue)
        else:
            victim = min(entries, key=lambda e: e.last_used)
        return victim

    def _model_segments(
        self, entries: list[CacheEntry], model: str
    ) -> list[tuple[int, int]]:
        return _merge([(e.start, e.end) for e in entries if e.model == model])

    # ------------------------------------------------------------------
    def put(
        self,
        server: Server,
        model: str,
        start: int,
        end: int,
        nbytes: float,
        now: float,
        *,
        load_cost: float | None = None,
    ) -> bool:
        """Cache a stage's parameters on ``server``; evicts to fit.

        Only the sub-ranges not already host-cached are inserted (bytes
        prorated by range length), so overlapping puts never double-charge
        host memory.  Host evictions demote to the SSD tier.  ``load_cost``
        is the reload cost of the full range in seconds (used by GDSF);
        omitted, the entry competes on frequency alone.

        Returns False when some sub-range could not be kept in the host
        tier even after evicting everything evictable.
        """
        if nbytes <= 0 or start >= end:
            return True
        entries = self._host.setdefault(server.sid, [])
        sid = server.sid
        # A re-put is a use: refresh every overlapping same-model entry.
        for entry in entries:
            if entry.model == model and entry.start < end and entry.end > start:
                self._touch(entry, sid, "host", now)
        density = nbytes / (end - start)
        cost_density = 1.0 if load_cost is None else load_cost / nbytes
        ok = True
        for lo, hi in _subtract(start, end, self._model_segments(entries, model)):
            seg_bytes = density * (hi - lo)
            if not self._insert(
                server, "host", CacheEntry(model, lo, hi, seg_bytes, now, 1, cost_density)
            ):
                ok = False
        return ok

    def _insert(self, server: Server, tier: str, entry: CacheEntry) -> bool:
        """Insert one trimmed entry into ``tier``, evicting to fit."""
        sid = server.sid
        store = self._host if tier == "host" else self._ssd
        reserve = server.host_reserve if tier == "host" else server.ssd_reserve
        release = server.host_release if tier == "host" else server.ssd_release
        capacity = server.host_memory if tier == "host" else server.ssd_capacity
        if entry.nbytes > capacity:
            return False
        entries = store.setdefault(sid, [])
        entry.hvalue = self._priority(entry, sid, tier)
        while not reserve(entry.nbytes):
            if not entries:
                return False
            victim = self._pick_victim(entries, sid, tier)
            entries.remove(victim)
            release(victim.nbytes)
            if self.recorder is not None:
                # The cache keeps no clock; the inserting entry's
                # last_used carries the put timestamp.
                self.recorder.record(
                    entry.last_used,
                    "cache_eviction",
                    server=sid,
                    tier=tier,
                    policy=self.policy,
                    model=victim.model,
                    range=(victim.start, victim.end),
                    nbytes=victim.nbytes,
                    freq=victim.freq,
                    hvalue=victim.hvalue,
                    clock=self._clock.get((sid, tier), 0.0),
                    for_model=entry.model,
                )
            if tier == "host":
                self._demote(server, victim)
        entries.append(entry)
        return True

    def _demote(self, server: Server, victim: CacheEntry) -> None:
        """A host eviction degrades to SSD-warm: keep the victim's
        not-already-SSD-cached sub-ranges in the SSD tier (discard on
        SSD pressure — the SSD never evicts back into host)."""
        ssd = self._ssd.setdefault(server.sid, [])
        covered = self._model_segments(ssd, victim.model)
        density = victim.nbytes / (victim.end - victim.start)
        for lo, hi in _subtract(victim.start, victim.end, covered):
            self._insert(
                server,
                "ssd",
                CacheEntry(
                    victim.model,
                    lo,
                    hi,
                    density * (hi - lo),
                    victim.last_used,
                    victim.freq,
                    victim.cost_density,
                ),
            )

    # ------------------------------------------------------------------
    def _tier_coverage(
        self,
        tier: str,
        server: Server,
        profile: ModelProfile,
        start: int,
        end: int,
        now: float | None,
        exclude: list[tuple[int, int]] | None = None,
    ) -> tuple[float, list[tuple[int, int]]]:
        """Warm bytes of [start, end) in ``tier`` over the *union* of the
        overlapping ranges (minus ``exclude``), plus the merged segments."""
        store = self._host if tier == "host" else self._ssd
        entries = store.get(server.sid, ())
        segments: list[tuple[int, int]] = []
        for entry in entries:
            if entry.model != profile.spec.name:
                continue
            lo, hi = max(start, entry.start), min(end, entry.end)
            if lo < hi:
                segments.append((lo, hi))
                if now is not None:
                    self._touch(entry, server.sid, tier, now)
        merged = _merge(segments)
        covered = 0.0
        for lo, hi in merged:
            if exclude:
                for sub_lo, sub_hi in _subtract(lo, hi, exclude):
                    covered += profile.graph.param_bytes(sub_lo, sub_hi)
            else:
                covered += profile.graph.param_bytes(lo, hi)
        return covered, merged

    def coverage(
        self,
        server: Server,
        profile: ModelProfile,
        start: int,
        end: int,
        now: float | None = None,
    ) -> float:
        """Bytes of the stage [start, end) warm in **host** memory on
        ``server``, computed over the union of cached ranges."""
        covered, _ = self._tier_coverage("host", server, profile, start, end, now)
        stage_bytes = profile.graph.param_bytes(start, end)
        return min(covered, stage_bytes)

    def coverage_by_tier(
        self,
        server: Server,
        profile: ModelProfile,
        start: int,
        end: int,
        now: float | None = None,
    ) -> tuple[float, float]:
        """(host_bytes, ssd_bytes) of the stage warm on ``server``.

        Host takes precedence: SSD counts only bytes *not* host-covered,
        so the two never overlap and ``host + ssd <= stage_bytes``.
        """
        stage_bytes = profile.graph.param_bytes(start, end)
        host, host_segs = self._tier_coverage(
            "host", server, profile, start, end, now
        )
        ssd, _ = self._tier_coverage(
            "ssd", server, profile, start, end, now, exclude=host_segs
        )
        host = min(host, stage_bytes)
        return host, min(ssd, stage_bytes - host)

    # ------------------------------------------------------------------
    def server_bytes(self, server: Server) -> float:
        return sum(e.nbytes for e in self._host.get(server.sid, ()))

    def ssd_bytes(self, server: Server) -> float:
        return sum(e.nbytes for e in self._ssd.get(server.sid, ()))

    def entry_count(self, server: Server, tier: str = "host") -> int:
        store = self._host if tier == "host" else self._ssd
        return len(store.get(server.sid, ()))

    def entries_for(self, server: Server, tier: str = "host") -> tuple[CacheEntry, ...]:
        store = self._host if tier == "host" else self._ssd
        return tuple(store.get(server.sid, ()))
