"""Host-memory parameter cache (§7, Memory-Aware Elastic Scaling).

"The system maintains parameter copies in host memory even after GPU
eviction, creating a middle-tier cache that survives instance termination."
Entries are keyed by (model, operator-range); coverage queries intersect a
requested stage's operator range with cached ranges so a merged stage can
warm-load from the pieces its fine-grained predecessors left behind.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.server import Server
from repro.models.profiler import ModelProfile


@dataclass
class CacheEntry:
    model: str
    start: int  # operator range [start, end)
    end: int
    nbytes: float
    last_used: float


class HostParamCache:
    """LRU parameter cache over every server's host memory."""

    def __init__(self) -> None:
        self._entries: dict[str, list[CacheEntry]] = {}
        self.hits = 0.0  # bytes served warm
        self.misses = 0.0  # bytes that had to come from storage

    # ------------------------------------------------------------------
    def put(
        self,
        server: Server,
        model: str,
        start: int,
        end: int,
        nbytes: float,
        now: float,
    ) -> bool:
        """Cache a stage's parameters on ``server``; LRU-evicts to fit.

        Returns False when the entry cannot fit even after evicting
        everything (never evicts more than needed).
        """
        if nbytes <= 0:
            return True
        entries = self._entries.setdefault(server.sid, [])
        for entry in entries:
            if entry.model == model and entry.start <= start and entry.end >= end:
                entry.last_used = now  # already covered
                return True
        if nbytes > server.host_memory:
            return False
        while not server.host_reserve(nbytes):
            if not entries:
                return False
            victim = min(entries, key=lambda e: e.last_used)
            entries.remove(victim)
            server.host_release(victim.nbytes)
        entries.append(CacheEntry(model, start, end, nbytes, now))
        return True

    def coverage(
        self,
        server: Server,
        profile: ModelProfile,
        start: int,
        end: int,
        now: float | None = None,
    ) -> float:
        """Bytes of the stage [start, end) available warm on ``server``."""
        entries = self._entries.get(server.sid, ())
        covered = 0.0
        for entry in entries:
            if entry.model != profile.spec.name:
                continue
            lo, hi = max(start, entry.start), min(end, entry.end)
            if lo < hi:
                covered += profile.graph.param_bytes(lo, hi)
                if now is not None:
                    entry.last_used = now
        stage_bytes = profile.graph.param_bytes(start, end)
        return min(covered, stage_bytes)

    def server_bytes(self, server: Server) -> float:
        return sum(e.nbytes for e in self._entries.get(server.sid, ()))

    def entry_count(self, server: Server) -> int:
        return len(self._entries.get(server.sid, ()))
