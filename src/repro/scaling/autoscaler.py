"""Queue- and rate-driven replica autoscaling for one model.

FlexPipe wires this with the Eq. 11 granularity decision (fine-grained
scale-out units during bursts) and Eq. 5 coordination-aware capacity;
reactive baselines use it with a fixed granularity; static baselines do
not create one at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.cluster.allocator import DEGRADE_FLOOR, AllocationError
from repro.metrics.collector import MetricsCollector, ScalingEvent
from repro.models.profiler import ModelProfile
from repro.partitioning.plan import PartitionPlan
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.pipeline.router import ModelRouter
from repro.refactoring.granularity import estimate_throughput, instance_count
from repro.refactoring.monitor import WorkloadMonitor
from repro.simulation.engine import Simulator
from repro.simulation.processes import PeriodicProcess


@dataclass(frozen=True)
class AutoscalerConfig:
    interval: float = 0.5
    slo_deadline: float = 5.0
    queue_factor: float = 1.5  # queue > factor x capacity-per-interval => burst
    idle_window: float = 30.0  # reclamation window before scale-in
    min_replicas: int = 1
    max_replicas: int = 8
    target_utilization: float = 0.6
    scale_out_cooldown: float = 1.0
    beta1: float = 1.0  # Eq. 5 coordination overhead
    beta2: float = 0.02
    prompt_tokens: int = 512
    output_tokens: int = 16
    batch_cap: int | None = None  # operating batch for capacity estimates
    # Eq. 12's burst-feasibility headroom: effective target utilization is
    # divided by (1 + cv_headroom * CV), so bursty workloads hold spare
    # capacity proportional to their variability.  0 disables (baselines
    # without FlexPipe's burst-aware provisioning).
    cv_headroom: float = 0.0


class Autoscaler:
    """Reconciles a model's replica count with its live workload."""

    def __init__(
        self,
        sim: Simulator,
        router: ModelRouter,
        monitor: WorkloadMonitor,
        profile: ModelProfile,
        metrics: MetricsCollector,
        deploy: Callable[..., PipelineReplica],
        release: Callable[[PipelineReplica], None],
        plan_for: Callable[[float, int], PartitionPlan],
        config: AutoscalerConfig | None = None,
    ):
        self.sim = sim
        self.router = router
        self.monitor = monitor
        self.profile = profile
        self.metrics = metrics
        self.deploy = deploy
        self.release_replica = release
        self.plan_for = plan_for
        self.config = config or AutoscalerConfig()
        self.loading: list[PipelineReplica] = []
        # Optional QoS hook: a callable returning the tenant's scale-out
        # urgency (>= 0, see AttainmentTracker.pressure).  While the
        # tenant misses its class SLO the effective utilization target
        # drops, so a violated interactive tenant scales out before a
        # happy batch tenant.  None (the default) changes nothing.
        self.slo_pressure: Callable[[], float] | None = None
        # Optional QoS hook: bytes this tenant may still reserve under its
        # share cap (math.inf = uncapped).  When set, scale-out desire is
        # clamped to what the cap can host, so the autoscaler never churns
        # the allocator with deploys the cap is guaranteed to refuse.
        # None (the default) changes nothing.
        self.share_headroom: Callable[[], float] | None = None
        self._blocked_since: float | None = None
        self._low_since: float | None = None
        self._last_scale_out = -math.inf
        self._throughput_cache: dict[tuple, float] = {}
        self._process = PeriodicProcess(sim, self.config.interval, self.tick)

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    def replica_throughput(
        self, plan: PartitionPlan, batch: int | None = None
    ) -> float:
        """Estimated req/s of one replica of ``plan`` serving at ``batch``.

        ``batch`` defaults to the plan's maximum (clipped by the operating
        batch cap); pass a replica's *effective* batch to price in memory
        degradation.
        """
        cfg = self.config
        effective = min(
            batch if batch is not None else plan.max_batch,
            cfg.batch_cap or plan.max_batch,
        )
        effective = max(effective, 1)
        key = (plan.n_stages, effective)
        value = self._throughput_cache.get(key)
        if value is None:
            value = estimate_throughput(
                self.profile,
                plan,
                batch=effective,
                prompt_tokens=cfg.prompt_tokens,
                output_tokens=cfg.output_tokens,
            )
            self._throughput_cache[key] = value
        return value

    def replica_capacity(self, replica: PipelineReplica) -> float:
        """Live capacity of one deployed replica.

        Uses the replica's *effective* ``max_batch`` (memory degradation
        may have halved it below ``plan.max_batch``), so a degraded fleet
        is not over-estimated — the over-estimate used to suppress burst
        scale-outs exactly when capacity was most impaired.
        """
        return self.replica_throughput(replica.plan, batch=replica.max_batch)

    # ------------------------------------------------------------------
    def tick(self) -> None:
        now = self.sim.now
        cfg = self.config
        self.monitor.sample_rate(now)
        self.loading = [
            r for r in self.loading if r.state is ReplicaState.LOADING
        ]
        active = self.router.active_replicas
        queue = self.router.total_queue
        cv = self.monitor.cv(now)
        rate = self.monitor.arrival_rate(now)
        plan = self.plan_for(cv, queue)
        per_replica = self.replica_throughput(plan)

        # Eq. 5: coordination-aware instance count for the offered rate,
        # with Eq. 12's burst headroom lowering the utilization target as
        # the live CV rises, and QoS attainment pressure lowering it
        # further while the tenant's class SLO is being missed.
        pressure = self.slo_pressure() if self.slo_pressure is not None else 0.0
        effective_util = cfg.target_utilization / (
            (1.0 + cfg.cv_headroom * cv) * (1.0 + pressure)
        )
        desired = instance_count(
            rate / max(effective_util, 1e-6),
            per_replica,
            plan.n_stages,
            beta1=cfg.beta1,
            beta2=cfg.beta2,
        )
        # Burst pressure: queued work the current capacity cannot clear in
        # one SLO budget demands more instances now (Eq. 12 spirit).
        capacity_now = sum(self.replica_capacity(r) for r in active)
        if queue > cfg.queue_factor * max(capacity_now * cfg.interval, 1.0):
            backlog_units = math.ceil(
                queue / max(per_replica * cfg.slo_deadline * 0.5, 1.0)
            )
            desired = max(desired, len(active) + backlog_units)
        if cfg.min_replicas == 0 and rate <= 0.0 and queue == 0:
            # Scale-to-zero: Eq. 5's instance count floors at one replica,
            # so an explicit zero floor with no arrivals in the monitor
            # window and nothing queued means the tenant is truly idle.
            desired = 0
        desired = min(max(desired, cfg.min_replicas), cfg.max_replicas)

        total = len(active) + len(self.loading)
        if self.share_headroom is not None and desired > total:
            # Respect the tenant's share cap: only ask for replicas the
            # remaining headroom can actually host.  The clamp never
            # *lowers* desired below the current fleet — the cap blocks
            # growth, it does not force scale-in.
            fit = self._replicas_within_headroom(plan)
            desired = min(desired, max(total + fit, total))
        if desired > total:
            self._scale_out(desired - total, plan, now)
        elif desired < len(active) and queue == 0:
            self._maybe_scale_in(active, desired, now)
        else:
            self._low_since = None

    def _replicas_within_headroom(self, plan: PartitionPlan) -> int:
        """How many more replicas of ``plan`` fit under the share cap.

        Sized at the memory-degradation *floor* batch — the smallest
        footprint ``ReplicaFactory.deploy`` would actually accept — so the
        clamp never blocks a scale-out the degrade path could still place
        (it only prunes deploys the cap is guaranteed to refuse).
        """
        headroom = self.share_headroom()
        if math.isinf(headroom):
            return self.config.max_replicas
        cfg = self.config
        batch = max(min(plan.max_batch, cfg.batch_cap or plan.max_batch), 1)
        floor = max(min(batch, DEGRADE_FLOOR), 1)
        replica_bytes = sum(
            plan.memory_per_stage(floor, self.profile.spec.kv_bytes_per_request)
        )
        if replica_bytes <= 0:
            return self.config.max_replicas
        return int(headroom // replica_bytes)

    # ------------------------------------------------------------------
    def _scale_out(self, n: int, plan: PartitionPlan, now: float) -> None:
        if now - self._last_scale_out < self.config.scale_out_cooldown:
            return
        wait = now - self._blocked_since if self._blocked_since is not None else 0.0
        for _ in range(n):
            try:
                replica = self.deploy(self.profile, plan, wait_time=wait)
            except AllocationError:
                if self._blocked_since is None:
                    self._blocked_since = now
                self.metrics.on_event(
                    ScalingEvent(time=now, kind="alloc_blocked", detail=plan.model_name)
                )
                return
            self.loading.append(replica)
        self._blocked_since = None
        self._last_scale_out = now

    def _maybe_scale_in(
        self, active: list[PipelineReplica], desired: int, now: float
    ) -> None:
        if self._low_since is None:
            self._low_since = now
            return
        if now - self._low_since < self.config.idle_window:
            return
        # Reclaim the most recently activated replicas first: older ones
        # carry the longest-lived warm state.
        excess = len(active) - desired
        victims = sorted(
            active, key=lambda r: r.activated_at or 0.0, reverse=True
        )[:excess]
        for victim in victims:
            self.release_replica(victim)
        self._low_since = None
