"""Affinity-based scheduling (Eq. 13).

    s* = argmax_{s in H_i} [ w_t * exp(-lambda (t_now - t_s))
                             + w_g * |g_s ∩ G_avail| ]

Servers that recently hosted a model keep warm host-memory caches, so
placing new stages there converts cold starts into warm starts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.server import Server


@dataclass(frozen=True)
class AffinityWeights:
    w_t: float = 1.0
    w_g: float = 0.25
    decay: float = 1.0 / 120.0


class AffinityScheduler:
    """Tracks placement history per model and scores candidate servers."""

    def __init__(self, weights: AffinityWeights | None = None):
        self.weights = weights or AffinityWeights()
        # model -> server id -> last time the model had parameters there
        self._history: dict[str, dict[str, float]] = {}

    def record_placement(self, model: str, server: Server, now: float) -> None:
        self._history.setdefault(model, {})[server.sid] = now

    def history(self, model: str) -> dict[str, float]:
        return dict(self._history.get(model, {}))

    def score(
        self, model: str, server: Server, now: float, min_free_bytes: float = 0.0
    ) -> float:
        """Eq. 13 score; servers never visited score on GPU availability only."""
        w = self.weights
        last = self._history.get(model, {}).get(server.sid)
        temporal = (
            w.w_t * math.exp(-w.decay * max(now - last, 0.0))
            if last is not None
            else 0.0
        )
        available = len(server.free_gpus(min_free_bytes))
        return temporal + w.w_g * available

    def rank(
        self,
        model: str,
        servers: list[Server],
        now: float,
        min_free_bytes: float = 0.0,
    ) -> list[Server]:
        return sorted(
            servers,
            key=lambda s: self.score(model, s, now, min_free_bytes),
            reverse=True,
        )
