"""Admission control: protect goodput under overload.

The paper measures *goodput* — completions within the SLO (§9).  Under
sustained overload an unguarded queue serves every request late, driving
goodput toward zero even though throughput stays high.  An admission gate
in front of a serving system sheds the load that cannot make its deadline
anyway, converting useless late work into capacity for feasible requests
(the loss-system view; Erlang-B in :mod:`repro.queueing` gives the
analytic counterpart).

The gate composes with any sink::

    gate = AdmissionGate(system.submit, policy)
    WorkloadGenerator(sim, arrivals, sampler, gate.submit, duration)

Rejected requests are marked ``rejected`` and never reach the system, so
its own metrics keep counting only admitted work; the gate tracks its own
offered/shed statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.qos.classes import effective_deadline
from repro.workloads.requests import Request


class AdmissionPolicy:
    """Base policy: decide whether to admit a request *now*."""

    def admit(self, request: Request) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class AlwaysAdmit(AdmissionPolicy):
    """The null policy (what every system in the paper's evaluation does)."""

    def admit(self, request: Request) -> bool:
        return True


class QueueCapPolicy(AdmissionPolicy):
    """Reject when the backlog exceeds a fixed cap.

    ``queue_length`` is a callable so the policy always sees the live
    value (e.g. ``lambda: router.total_queue``).
    """

    def __init__(self, queue_length: Callable[[], int], cap: int):
        if cap < 0:
            raise ValueError(f"cap cannot be negative, got {cap}")
        self.queue_length = queue_length
        self.cap = cap

    def admit(self, request: Request) -> bool:
        return self.queue_length() <= self.cap


class SLOFeasiblePolicy(AdmissionPolicy):
    """Reject requests whose deadline is already unattainable.

    Estimated completion = queue drain time (backlog / current capacity)
    plus the request's own service estimate.  ``headroom`` < 1 rejects
    earlier (hedging against estimate error); > 1 admits optimistically.

    The deadline is the *request's own*: a classed request is judged
    against its QoS class target (:func:`repro.qos.classes.
    effective_deadline`), never against a deadline frozen elsewhere — a
    batch-class request must not be shed for missing an interactive
    target it was never promised.
    """

    def __init__(
        self,
        queue_length: Callable[[], float],
        capacity: Callable[[], float],
        service_estimate: Callable[[Request], float],
        *,
        headroom: float = 1.0,
    ):
        if headroom <= 0:
            raise ValueError(f"headroom must be positive, got {headroom}")
        self.queue_length = queue_length
        self.capacity = capacity
        self.service_estimate = service_estimate
        self.headroom = headroom

    def admit(self, request: Request) -> bool:
        capacity = max(self.capacity(), 1e-9)
        wait = self.queue_length() / capacity
        estimate = wait + self.service_estimate(request)
        return estimate <= effective_deadline(request) * self.headroom


class TokenBucketPolicy(AdmissionPolicy):
    """Classic rate limiting: sustained ``rate`` with ``burst`` headroom.

    Uses the request's own arrival timestamp as the clock, so the policy
    is simulation-driven and needs no timer process.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = 0.0

    def admit(self, request: Request) -> bool:
        now = request.arrival_time
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class GateStats:
    """What the gate saw and what it shed."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


class AdmissionGate:
    """Wraps a serving system's ``submit`` with an admission policy."""

    def __init__(
        self,
        sink: Callable[[Request], None],
        policy: AdmissionPolicy | None = None,
        *,
        on_reject: Callable[[Request], None] | None = None,
    ):
        self.sink = sink
        self.policy = policy or AlwaysAdmit()
        self.on_reject = on_reject
        self.stats = GateStats()
        # Observability: a FlightRecorder installed by a traced run (the
        # gate holds no simulator handle, so the tap lives here).
        self.recorder = None

    def submit(self, request: Request) -> None:
        self.stats.offered += 1
        if self.policy.admit(request):
            self.stats.admitted += 1
            self.sink(request)
            return
        self.stats.rejected += 1
        request.rejected = True
        if self.recorder is not None:
            self.recorder.record(
                request.arrival_time,
                "shed",
                rid=request.rid,
                model=request.model,
                slo_class=request.slo_class,
            )
        if self.on_reject is not None:
            self.on_reject(request)
