"""FlexPipe: the adaptive serving system (Fig. 5, Algorithm 1).

Per control interval, for every model:

1. monitor request intensity λ_t, its gradient, and the inter-arrival CV ν_t;
2. score every ladder rung with Eq. 4 and select g*;
3. if g* differs from the current granularity (with hysteresis), trigger
   inflight refactoring of the active replicas — staggered one replica per
   interval so capacity never dips;
4. reconcile the replica count via the autoscaler (Eq. 5 capacity + Eq. 11
   burst granularity + Eq. 12 SLO pressure), placed with Eq. 13 affinity
   and HRG coordination, loading warm from host-memory caches.

Ablation flags disable individual mechanisms for the A1-A4 benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.allocator import DEGRADE_FLOOR
from repro.core.config import FlexPipeConfig
from repro.core.context import ServingContext
from repro.core.deployment import ReplicaFactory
from repro.core.serving import ServingSystem
from repro.models.zoo import ModelSpec
from repro.partitioning.ladder import GranularityLadder
from repro.partitioning.plan import PartitionPlan
from repro.refactoring.executor import RefactoringExecutor
from repro.refactoring.granularity import GranularityPolicy
from repro.refactoring.placement import interference_multiplier
from repro.scaling.affinity import AffinityScheduler, AffinityWeights
from repro.scaling.autoscaler import Autoscaler, AutoscalerConfig
from repro.scaling.coordinator import ScalingCoordinator
from repro.scaling.decision import scaling_granularity
from repro.scaling.warm_cache import HostParamCache
from repro.simulation.processes import PeriodicProcess


@dataclass
class _ModelState:
    spec: ModelSpec
    ladder: GranularityLadder
    policy: GranularityPolicy
    executor: RefactoringExecutor
    autoscaler: Autoscaler
    current_stages: int
    last_target_change: float = -1e9


class FlexPipeSystem(ServingSystem):
    """The full FlexPipe stack on the simulated substrate."""

    name = "FlexPipe"

    def __init__(
        self,
        ctx: ServingContext,
        model_specs: list[ModelSpec],
        config: FlexPipeConfig | None = None,
        *,
        initial_replicas: int = 1,
        enable_refactoring: bool = True,
        enable_warm_cache: bool = True,
        enable_hrg: bool = True,
        enable_affinity: bool = True,
        batch_cap: int | None = None,
        prompt_tokens: int = 512,
        output_tokens: int = 16,
        slo_deadline: float = 5.0,
        max_replicas: int | None = None,
        cache_policy: str = "lru",
        pipelined_loading: bool = False,
        # None keeps the historical floor max(cfg.min_replicas,
        # initial_replicas); 0 enables full scale-to-zero serverless churn.
        min_replicas: int | None = None,
        scale_in_idle_window: float | None = None,
    ):
        self.config = config or FlexPipeConfig()
        super().__init__(
            ctx,
            model_specs,
            cv_window=self.config.cv_window,
            cv_refresh=self.config.control_interval,
        )
        cfg = self.config
        self.enable_refactoring = enable_refactoring
        self.initial_replicas = initial_replicas
        self.batch_cap = batch_cap
        self.pipelined_loading = pipelined_loading
        self.warm_cache = (
            HostParamCache(policy=cache_policy) if enable_warm_cache else None
        )
        self.affinity = AffinityScheduler(
            AffinityWeights(cfg.affinity_w_t, cfg.affinity_w_g, cfg.affinity_decay)
        )
        self.coordinator = ScalingCoordinator(
            ctx.hrg,
            self.affinity,
            use_hrg=enable_hrg,
            use_affinity=enable_affinity,
            cv_fn=self.max_cv,
        )
        self.factory = ReplicaFactory(
            ctx,
            routers=self.routers,
            metrics=self.metrics,
            on_request_complete=self._on_request_complete,
            warm_cache=self.warm_cache,
            coordinator=self.coordinator,
            interference=self._interference,
            batcher_max_wait=cfg.batcher_max_wait,
            pipelined_loading=pipelined_loading,
        )
        scaler_config = AutoscalerConfig(
            slo_deadline=slo_deadline,
            idle_window=(
                cfg.scale_in_idle_window
                if scale_in_idle_window is None
                else scale_in_idle_window
            ),
            # The always-on reservation (30% of peak) is a floor: elastic
            # capacity above it is reclaimed, the floor never is (§9.6).
            # An explicit min_replicas overrides it (0 = scale-to-zero).
            min_replicas=(
                max(cfg.min_replicas, initial_replicas)
                if min_replicas is None
                else min_replicas
            ),
            max_replicas=max_replicas or cfg.max_replicas,
            target_utilization=cfg.target_utilization,
            beta1=cfg.beta1,
            beta2=cfg.beta2,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            batch_cap=batch_cap,
            cv_headroom=cfg.cv_headroom,
        )
        self._models: dict[str, _ModelState] = {}
        for spec in model_specs:
            profile = self.profiles[spec.name]
            ladder = ctx.ladder(spec, cfg.stage_counts)
            policy = GranularityPolicy(
                profile,
                ladder,
                alpha=cfg.alpha_tradeoff,
                sigma=cfg.sigma_sensitivity,
                cv_setpoint_scale=cfg.cv_setpoint_scale,
                prompt_tokens=prompt_tokens,
                output_tokens=output_tokens,
                batch_cap=batch_cap,
            )
            executor = RefactoringExecutor(
                ctx,
                profile,
                ladder,
                self.metrics,
                warm_cache=self.warm_cache,
                decision_latency=cfg.decision_latency,
                batch_cap=batch_cap,
                pipelined_loading=pipelined_loading,
            )
            initial = self._initial_stages(ladder)
            state = _ModelState(
                spec=spec,
                ladder=ladder,
                policy=policy,
                executor=executor,
                autoscaler=None,  # set below (needs plan_for closure)
                current_stages=initial,
            )
            state.autoscaler = Autoscaler(
                ctx.sim,
                self.routers[spec.name],
                self.monitors[spec.name],
                profile,
                self.metrics,
                self._autoscaler_deploy,
                self.factory.release,
                self._make_plan_for(state),
                scaler_config,
            )
            self._models[spec.name] = state
        self._controller = PeriodicProcess(
            ctx.sim, cfg.control_interval, self._control_tick
        )

    # ------------------------------------------------------------------
    def _initial_stages(self, ladder: GranularityLadder) -> int:
        wanted = self.config.initial_stages
        counts = ladder.stage_counts
        if wanted in counts:
            return wanted
        # Fall back to the closest feasible rung (large models may not
        # support very coarse granularities under the memory cap).
        return min(counts, key=lambda c: abs(c - wanted))

    def _make_plan_for(self, state: _ModelState):
        cfg = self.config

        def plan_for(cv: float, queue: int) -> PartitionPlan:
            """Scale-out granularity: Eq. 11, snapped to a ladder rung."""
            m = scaling_granularity(
                cv,
                queue,
                g_max=min(cfg.g_max, state.ladder.finest),
                beta=cfg.beta_sigmoid,
                gamma=cfg.gamma_sigmoid,
                queue_capacity=cfg.queue_capacity,
            )
            counts = state.ladder.stage_counts
            snapped = min(
                (c for c in counts if c >= m), default=counts[-1]
            )
            # Never scale out with a coarser unit than the serving target.
            return state.ladder.plan(max(snapped, state.current_stages))

        return plan_for

    def _interference(self, gpu) -> float:
        """Eq. 9 execution-time inflation on shared GPUs.

        Uses the control-interval CV cache: this runs on *every* stage
        start, and the windowed CV only moves on the control-loop timescale.
        """
        cfg = self.config
        return interference_multiplier(
            gpu, self.max_cv(), gamma0=cfg.gamma0, alpha=cfg.alpha_mux
        )

    # ------------------------------------------------------------------
    def _autoscaler_deploy(self, profile, plan, **kwargs):
        """Scale-out deploys honour the operating batch cap.

        Without the cap a scale-out replica reserves KV for
        ``plan.max_batch`` — for small models that is the whole GPU, so a
        handful of deploys exhaust the cluster and every later tenant's
        cold start blocks on allocation instead of on loading.
        """
        return self.factory.deploy(profile, plan, batch_cap=self.batch_cap, **kwargs)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Deploy the always-on replica set at the initial granularity."""
        for state in self._models.values():
            plan = state.ladder.plan(state.current_stages)
            for _ in range(self.initial_replicas):
                replica = self.factory.deploy(
                    self.profiles[state.spec.name],
                    plan,
                    batch_cap=self.batch_cap,
                    event_kind="initial",
                )
                state.autoscaler.loading.append(replica)

    # ------------------------------------------------------------------
    def enable_qos(self, classes, **kwargs) -> None:
        """QoS on FlexPipe also drives the *adaptive* layers.

        Beyond the base mechanisms (priority routing + attainment
        tracking), each tenant's autoscaler consumes its class-weighted
        attainment pressure, and the control loop visits tenants most
        urgent first (class priority, then worst attainment) — a violated
        interactive tenant scales out and refactors before a happy batch
        tenant gets a turn at scarce GPUs.
        """
        super().enable_qos(classes, **kwargs)
        for name, state in self._models.items():
            slo_class = self.qos_class_of(name)
            state.autoscaler.slo_pressure = (
                lambda n=name, c=slo_class: self.qos_tracker.pressure(n, c)
            )
            # Share-cap awareness: the autoscaler only asks for replicas
            # the tenant's remaining headroom can host.  With elastic
            # contracts on, share_headroom already includes borrowable
            # idle headroom, so the same hook becomes contract-aware.
            state.autoscaler.share_headroom = (
                lambda n=name: self.ctx.allocator.share_headroom(n)
            )
        if kwargs.get("elastic"):
            # Elastic mode arms the transition-machinery extensions too:
            # in-place resize/merge on live replicas (chosen per
            # transition by the executor's cost model) and preemptible
            # prepared-chain claims, so arbitration can cancel a
            # lower-class tenant's in-flight preparation.
            for state in self._models.values():
                state.executor.enable_inplace = True
                state.executor.preemptible_claims = True

    def _qos_ordered_states(self) -> list[_ModelState]:
        """Control-loop visit order: most urgent tenant first under QoS."""
        if self.qos_tracker is None:
            return list(self._models.values())
        tracker = self.qos_tracker

        def urgency(item):
            name, _ = item
            attainment = tracker.attainment(name)
            return (
                self.qos_class_of(name).priority,
                1.0 if attainment is None else attainment,
            )

        return [state for _, state in sorted(self._models.items(), key=urgency)]

    # ------------------------------------------------------------------
    def _control_tick(self) -> None:
        """Algorithm 1's main loop body."""
        now = self.sim.now
        cfg = self.config
        for state in self._qos_ordered_states():
            if not self.enable_refactoring:
                continue
            monitor = self.monitors[state.spec.name]
            cv = monitor.cv(now)
            # A tenant actively missing its class SLO halves its dwell:
            # the refactoring monitor reacts on the violation timescale,
            # not the calm-weather hysteresis timescale.
            dwell = cfg.refactor_dwell
            if state.autoscaler.slo_pressure is not None and (
                state.autoscaler.slo_pressure() > 0
            ):
                dwell *= 0.5
            if (
                monitor.window_count(now) >= 4
                and now - state.last_target_change >= dwell
            ):
                target = state.policy.select(cv)
                if target != state.current_stages:
                    scores = state.policy.scores(cv)
                    if scores[target] >= cfg.switch_margin * scores[
                        state.current_stages
                    ]:
                        state.current_stages = target
                        state.last_target_change = now
            # Converge replicas toward the target granularity, one per
            # interval (staggered so serving capacity never dips).  A
            # refactor transiently co-resides old and new chains, so a
            # tenant without share-cap headroom for even the most degraded
            # target chain skips the attempt instead of churning the
            # allocator against its own cap every interval.
            if not self._share_allows_refactor(state):
                continue
            router = self.routers[state.spec.name]
            for replica in router.active_replicas:
                if replica.plan.n_stages != state.current_stages:
                    if state.executor.refactor(replica, state.current_stages):
                        break

    def _share_allows_refactor(self, state: _ModelState) -> bool:
        """Whether the tenant's share cap could host a prepared chain."""
        headroom = self.ctx.allocator.share_headroom(state.spec.name)
        if math.isinf(headroom):
            return True
        if state.executor.enable_inplace:
            # In-place transitions only need the parameter/KV *delta*;
            # the executor's prepare does the real byte-level checks (and
            # falls back between modes), so a cap that cannot host a full
            # prepared chain no longer vetoes the attempt up front.
            return True
        plan = state.ladder.plan(state.current_stages)
        start = max(min(plan.max_batch, self.batch_cap or plan.max_batch), 1)
        floor = max(min(start, DEGRADE_FLOOR), 1)
        need = sum(
            plan.memory_per_stage(floor, state.spec.kv_bytes_per_request)
        )
        return headroom >= need

    # ------------------------------------------------------------------
    def on_gpu_reclaimed(self, gpu) -> None:
        """Abort refactor transitions holding prepared stages on ``gpu``."""
        for state in self._models.values():
            state.executor.abort_on_cordon(gpu)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        super().shutdown()
        self._controller.stop()
        for state in self._models.values():
            state.autoscaler.stop()

    # ------------------------------------------------------------------
    # Introspection for tests/benchmarks
    # ------------------------------------------------------------------
    def current_granularity(self, model: str) -> int:
        return self._models[model].current_stages

    def refactor_counts(self) -> dict[str, int]:
        return {
            name: state.executor.transitions_completed
            for name, state in self._models.items()
        }

    def executors(self) -> dict[str, RefactoringExecutor]:
        """Per-model refactoring executors (the auditor reads their
        switched/aborted tokens and in-place spans)."""
        return {name: state.executor for name, state in self._models.items()}
